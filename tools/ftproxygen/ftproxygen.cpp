// ftproxygen — generates stub, skeleton and fault-tolerance proxy classes
// from an interface description.
//
// The paper hand-writes its proxies and remarks: "With the current
// implementation, the proxy class for each service class has to be
// implemented manually.  This could be easily automated by parsing the
// class definition.  For each method, code to call the parent class (the
// stub) method along with exception handling code and a call to the server
// object's checkpoint and restore functions would have to be generated."
// (§3).  This tool is that automation: it plays the role of an IDL compiler
// for this project's CORBA subset and emits, per interface,
//
//   * <Name>Skeleton  — servant base class with typed pure virtuals and a
//                       generated dispatch() (argument decoding, arity
//                       checks, user-exception declarations);
//   * <Name>Stub      — typed client-side class marshaling into tagged
//                       values;
//   * <Name>Proxy     — the paper's fault-tolerance proxy, derived from the
//                       stub, each method wrapped through ft::ProxyEngine
//                       (checkpoint after success, recover + retry on
//                       COMM_FAILURE/TRANSIENT/TIMEOUT).
//
// Input grammar (IDL-lite):
//
//   interface Calculator {
//     checkpointable;                       // opt-in to _get_state/_set_state
//     exception DivByZero;
//     double divide(in double a, in double b) raises (DivByZero);
//     long long accumulate(in long long n);
//     void reset();
//     sequence<double> history();
//   };
//
// Types: void, boolean, long, long long, unsigned long long, double,
// string, blob, sequence<double>, any.
//
// Usage: ftproxygen <input.idl> <output.hpp>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- model -------------------------------------------------------------------

enum class Type {
  void_,
  boolean,
  long_,           // 32-bit signed
  long_long,       // 64-bit signed
  unsigned_long_long,
  double_,
  string,
  blob,
  double_seq,
  any,
};

struct Parameter {
  Type type = Type::any;
  std::string name;
};

struct Operation {
  Type result = Type::void_;
  std::string name;
  std::vector<Parameter> parameters;
  std::vector<std::string> raises;
};

struct Interface {
  std::string name;
  bool checkpointable = false;
  std::vector<std::string> exceptions;
  std::vector<Operation> operations;
};

// --- lexer -------------------------------------------------------------------

struct Lexer {
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  /// Next token: identifier, punctuation character, or empty at EOF.
  std::string next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      return text_.substr(start, pos_ - start);
    }
    ++pos_;
    return std::string(1, c);
  }

  std::string peek() {
    const std::size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw std::runtime_error("line " + std::to_string(line) + ": " + message);
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 2, "//") == 0) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (text_.compare(pos_, 2, "/*") == 0) {
        const std::size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string text) : lexer_(std::move(text)) {}

  std::vector<Interface> parse() {
    std::vector<Interface> interfaces;
    while (!lexer_.peek().empty()) {
      expect("interface");
      interfaces.push_back(parse_interface());
    }
    if (interfaces.empty()) lexer_.fail("no interface found");
    return interfaces;
  }

 private:
  void expect(const std::string& token) {
    const std::string got = lexer_.next();
    if (got != token)
      lexer_.fail("expected '" + token + "', got '" + got + "'");
  }

  std::string identifier(const char* what) {
    const std::string token = lexer_.next();
    if (token.empty() ||
        !(std::isalpha(static_cast<unsigned char>(token[0])) || token[0] == '_'))
      lexer_.fail(std::string("expected ") + what + ", got '" + token + "'");
    return token;
  }

  Type parse_type() {
    std::string token = lexer_.next();
    if (token == "void") return Type::void_;
    if (token == "boolean") return Type::boolean;
    if (token == "double") return Type::double_;
    if (token == "string") return Type::string;
    if (token == "blob") return Type::blob;
    if (token == "any") return Type::any;
    if (token == "sequence") {
      expect("<");
      expect("double");
      expect(">");
      return Type::double_seq;
    }
    if (token == "unsigned") {
      expect("long");
      expect("long");
      return Type::unsigned_long_long;
    }
    if (token == "long") {
      if (lexer_.peek() == "long") {
        lexer_.next();
        return Type::long_long;
      }
      return Type::long_;
    }
    lexer_.fail("unknown type '" + token + "'");
  }

  Interface parse_interface() {
    Interface interface;
    interface.name = identifier("interface name");
    expect("{");
    while (lexer_.peek() != "}") {
      const std::string token = lexer_.peek();
      if (token.empty()) lexer_.fail("unterminated interface");
      if (token == "checkpointable") {
        lexer_.next();
        expect(";");
        interface.checkpointable = true;
      } else if (token == "exception") {
        lexer_.next();
        interface.exceptions.push_back(identifier("exception name"));
        expect(";");
      } else {
        interface.operations.push_back(parse_operation(interface));
      }
    }
    expect("}");
    expect(";");
    return interface;
  }

  Operation parse_operation(const Interface& interface) {
    Operation operation;
    operation.result = parse_type();
    operation.name = identifier("operation name");
    expect("(");
    while (lexer_.peek() != ")") {
      if (!operation.parameters.empty()) expect(",");
      expect("in");
      Parameter parameter;
      parameter.type = parse_type();
      if (parameter.type == Type::void_)
        lexer_.fail("void parameter in '" + operation.name + "'");
      parameter.name = identifier("parameter name");
      operation.parameters.push_back(std::move(parameter));
    }
    expect(")");
    if (lexer_.peek() == "raises") {
      lexer_.next();
      expect("(");
      while (lexer_.peek() != ")") {
        if (!operation.raises.empty()) expect(",");
        const std::string name = identifier("exception name");
        bool known = false;
        for (const std::string& declared : interface.exceptions)
          known = known || declared == name;
        if (!known)
          lexer_.fail("operation '" + operation.name +
                      "' raises undeclared exception '" + name + "'");
        operation.raises.push_back(name);
      }
      expect(")");
    }
    expect(";");
    return operation;
  }

  Lexer lexer_;
};

// --- emitter -----------------------------------------------------------------

std::string cpp_type(Type type) {
  switch (type) {
    case Type::void_: return "void";
    case Type::boolean: return "bool";
    case Type::long_: return "std::int32_t";
    case Type::long_long: return "std::int64_t";
    case Type::unsigned_long_long: return "std::uint64_t";
    case Type::double_: return "double";
    case Type::string: return "std::string";
    case Type::blob: return "corba::Blob";
    case Type::double_seq: return "std::vector<double>";
    case Type::any: return "corba::Value";
  }
  return "void";
}

std::string param_type(Type type) {
  switch (type) {
    case Type::boolean:
    case Type::long_:
    case Type::long_long:
    case Type::unsigned_long_long:
    case Type::double_:
      return cpp_type(type);
    default:
      return "const " + cpp_type(type) + "&";
  }
}

/// Expression converting `expr` (a corba::Value) to the typed argument.
std::string decode_expr(Type type, const std::string& expr) {
  switch (type) {
    case Type::boolean: return expr + ".as_bool()";
    case Type::long_: return expr + ".as_i32()";
    case Type::long_long: return expr + ".as_i64()";
    case Type::unsigned_long_long: return expr + ".as_u64()";
    case Type::double_: return expr + ".as_f64()";
    case Type::string: return expr + ".as_string()";
    case Type::blob: return expr + ".as_blob()";
    case Type::double_seq: return expr + ".as_f64_seq()";
    case Type::any: return expr;
    case Type::void_: break;
  }
  return expr;
}

/// Expression wrapping a typed value into a corba::Value.
std::string encode_expr(Type type, const std::string& expr) {
  if (type == Type::any) return expr;
  return "corba::Value(" + expr + ")";
}

void emit_interface(std::ostream& out, const Interface& interface) {
  const std::string& name = interface.name;
  const std::string repo_id = "IDL:corbaft/gen/" + name + ":1.0";

  out << "// ---- interface " << name << " ----\n\n";
  out << "inline constexpr std::string_view k" << name
      << "RepoId = \"" << repo_id << "\";\n\n";

  // Exceptions.
  for (const std::string& exception : interface.exceptions) {
    out << "struct " << name << "_" << exception
        << " : corba::UserException {\n"
        << "  explicit " << name << "_" << exception
        << "(std::string detail = {})\n"
        << "      : corba::UserException(std::string(static_repo_id()), "
           "std::move(detail)) {}\n"
        << "  static constexpr std::string_view static_repo_id() {\n"
        << "    return \"IDL:corbaft/gen/" << name << "/" << exception
        << ":1.0\";\n"
        << "  }\n};\n"
        << "inline const corba::RegisterUserException<" << name << "_"
        << exception << "> register_" << name << "_" << exception << "{};\n\n";
  }

  // Skeleton.
  out << "class " << name << "Skeleton : public corba::Servant";
  if (interface.checkpointable) out << ",\n    public ft::CheckpointableServant";
  out << " {\n public:\n";
  out << "  std::string_view repo_id() const noexcept override { return k"
      << name << "RepoId; }\n\n";
  for (const Operation& operation : interface.operations) {
    out << "  virtual " << cpp_type(operation.result) << " " << operation.name
        << "(";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) out << ", ";
      out << param_type(operation.parameters[i].type) << " "
          << operation.parameters[i].name;
    }
    out << ") = 0;\n";
  }
  out << "\n  corba::Value dispatch(std::string_view op,\n"
      << "                        const corba::ValueSeq& args) override {\n";
  if (interface.checkpointable)
    out << "    if (auto handled = try_dispatch_state(op, args)) return "
           "*handled;\n";
  for (const Operation& operation : interface.operations) {
    out << "    if (op == \"" << operation.name << "\") {\n"
        << "      check_arity(op, args, " << operation.parameters.size()
        << ");\n";
    std::string call = operation.name + "(";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) call += ", ";
      call += decode_expr(operation.parameters[i].type,
                          "args[" + std::to_string(i) + "]");
    }
    call += ")";
    if (operation.result == Type::void_) {
      out << "      " << call << ";\n      return corba::Value();\n";
    } else {
      out << "      return " << encode_expr(operation.result, call) << ";\n";
    }
    out << "    }\n";
  }
  out << "    throw corba::BAD_OPERATION(std::string(op));\n  }\n};\n\n";

  // Stub.
  out << "class " << name << "Stub : public corba::StubBase {\n public:\n"
      << "  " << name << "Stub() = default;\n"
      << "  explicit " << name
      << "Stub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}\n\n";
  for (const Operation& operation : interface.operations) {
    out << "  " << cpp_type(operation.result) << " " << operation.name << "(";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) out << ", ";
      out << param_type(operation.parameters[i].type) << " "
          << operation.parameters[i].name;
    }
    out << ") const {\n    ";
    std::string invoke = "call(\"" + operation.name + "\", {";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) invoke += ", ";
      invoke += encode_expr(operation.parameters[i].type,
                            operation.parameters[i].name);
    }
    invoke += "})";
    if (operation.result == Type::void_) {
      out << invoke << ";\n";
    } else {
      out << "return " << decode_expr(operation.result, invoke) << ";\n";
    }
    out << "  }\n";
  }
  out << "};\n\n";

  // Fault-tolerance proxy: "derived from the stub class and therefore
  // provides all of the methods of the stub class" (paper §3).
  out << "class " << name << "Proxy : public " << name << "Stub {\n public:\n"
      << "  explicit " << name << "Proxy(ft::ProxyConfig config)\n"
      << "      : " << name << "Stub(config.initial), "
         "engine_(std::move(config)) {\n"
      << "    engine_.on_rebind = [this](const corba::ObjectRef& ref) { "
         "rebind(ref); };\n"
      << "  }\n\n";
  for (const Operation& operation : interface.operations) {
    out << "  " << cpp_type(operation.result) << " " << operation.name << "(";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) out << ", ";
      out << param_type(operation.parameters[i].type) << " "
          << operation.parameters[i].name;
    }
    out << ") {\n    ";
    std::string invoke = "engine_.call(\"" + operation.name + "\", {";
    for (std::size_t i = 0; i < operation.parameters.size(); ++i) {
      if (i) invoke += ", ";
      invoke += encode_expr(operation.parameters[i].type,
                            operation.parameters[i].name);
    }
    invoke += "})";
    if (operation.result == Type::void_) {
      out << invoke << ";\n";
    } else {
      out << "return " << decode_expr(operation.result, invoke) << ";\n";
    }
    out << "  }\n";
  }
  out << "\n  ft::ProxyEngine& engine() noexcept { return engine_; }\n\n"
      << " private:\n  ft::ProxyEngine engine_;\n};\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: ftproxygen <input.idl> <output.hpp>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "ftproxygen: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::vector<Interface> interfaces;
  try {
    interfaces = Parser(buffer.str()).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ftproxygen: %s: %s\n", argv[1], e.what());
    return 1;
  }

  std::ofstream out(argv[2]);
  if (!out) {
    std::fprintf(stderr, "ftproxygen: cannot write %s\n", argv[2]);
    return 2;
  }
  out << "// Generated by ftproxygen from " << argv[1] << " — do not edit.\n"
      << "#pragma once\n\n"
      << "#include <cstdint>\n#include <string>\n#include <vector>\n\n"
      << "#include \"ft/checkpoint.hpp\"\n"
      << "#include \"ft/proxy.hpp\"\n"
      << "#include \"orb/object_adapter.hpp\"\n"
      << "#include \"orb/stub.hpp\"\n\n"
      << "namespace corbaft_gen {\n\n";
  for (const Interface& interface : interfaces) emit_interface(out, interface);
  out << "}  // namespace corbaft_gen\n";
  return 0;
}
