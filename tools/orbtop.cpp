// orbtop: top(1) for a corbaft cluster.
//
// Connects to the naming service (stringified IOR), enumerates the reserved
// `_obs/*` telemetry bindings every runtime maintains (see
// obs/telemetry.hpp) and renders a cluster-wide table: Winner rank and load
// per host, RPC totals and rates, latency quantiles, recoveries,
// checkpoints, quarantine state and dispatch queue depth — all collected
// in-band over the same GIOP-lite wire the application uses.
//
// Watch mode is push-first: it subscribes an EventConsumer through every
// node's telemetry servant and re-renders from the live event stream — zero
// polling RPCs after the subscription.  Nodes without an event channel (or
// --poll) fall back to the classic poll loop.
//
//   orbtop --ior <IOR:...>        naming service reference
//   orbtop --ior-file <path>      ... read from a file instead
//   orbtop --watch <seconds>      refresh continuously (enables RPC/s)
//   orbtop --json                 machine-readable snapshot(s); includes
//                                 "transport": "poll"|"push"
//   orbtop --poll                 force poll mode even when push works
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "naming/naming_stub.hpp"
#include "obs/orbtop.hpp"
#include "orb/orb.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--ior <IOR:...> | --ior-file <path>) "
               "[--watch <seconds>] [--json] [--poll]\n",
               argv0);
  return 2;
}

std::string read_ior_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read IOR file: " + path);
  std::string ior;
  in >> ior;  // first whitespace-delimited token; tolerates trailing newline
  return ior;
}

void render(const obs::ClusterSnapshot& snapshot,
            const obs::ClusterSnapshot* prev, bool json, bool watching) {
  if (json) {
    std::printf("%s\n", obs::render_json(snapshot).c_str());
  } else {
    if (watching) std::printf("\x1b[2J\x1b[H");  // clear, home
    std::fputs(obs::render_table(snapshot, prev).c_str(), stdout);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string ior;
  double watch = 0.0;
  bool json = false;
  bool force_poll = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ior" && i + 1 < argc) {
      ior = argv[++i];
    } else if (arg == "--ior-file" && i + 1 < argc) {
      try {
        ior = read_ior_file(argv[++i]);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "orbtop: %s\n", error.what());
        return 1;
      }
    } else if (arg == "--watch" && i + 1 < argc) {
      watch = std::atof(argv[++i]);
      if (watch <= 0) {
        std::fprintf(stderr, "orbtop: --watch needs a positive interval\n");
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--poll") {
      force_poll = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (ior.empty()) return usage(argv[0]);

  try {
    // Mostly a client, but push mode serves the EventConsumer callback
    // object on this endpoint.
    auto orb = corba::ORB::init({.endpoint_name = "orbtop", .enable_tcp = true});
    naming::NamingContextStub root(orb->string_to_object(ior));

    // Push applies to watch mode only: a single-shot run would tear the
    // subscription down before the first event could arrive.
    std::unique_ptr<obs::PushCollector> push;
    if (watch > 0 && !force_poll) {
      try {
        push = std::make_unique<obs::PushCollector>(orb, root);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "orbtop: push unavailable (%s); polling\n",
                     error.what());
      }
    }

    std::optional<obs::ClusterSnapshot> prev;
    for (;;) {
      const obs::ClusterSnapshot snapshot =
          push ? push->snapshot() : obs::collect_cluster(root);
      render(snapshot, prev ? &*prev : nullptr, json, watch > 0);
      if (watch <= 0) break;
      prev = snapshot;
      std::this_thread::sleep_for(std::chrono::duration<double>(watch));
    }
    push.reset();
    orb->shutdown();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "orbtop: %s\n", error.what());
    return 1;
  }
  return 0;
}
