#!/bin/sh
# Runs the JSON-emitting benches and validates the BENCH_*.json trajectory
# files they produce (schema in bench/bench_common.hpp).
#
# Usage:
#   tools/run_benches.sh [bench-binary ...]
#
# With no arguments the default build tree's binaries are used.  Set
# CORBAFT_BENCH_SMOKE=1 for the reduced smoke workload (the `bench-smoke`
# CMake target and the `bench_smoke` ctest do this).  JSON files are written
# into the current working directory.
set -eu

if [ "$#" -eq 0 ]; then
  root=$(cd "$(dirname "$0")/.." && pwd)
  set -- "$root/build/bench/table1_proxy_overhead" \
         "$root/build/bench/micro_checkpoint" \
         "$root/build/bench/micro_orb" \
         "$root/build/bench/micro_events" \
         "$root/build/bench/micro_ckptstore"
fi

for bin in "$@"; do
  if [ ! -x "$bin" ]; then
    echo "run_benches.sh: missing bench binary $bin (build it first)" >&2
    exit 1
  fi
  echo "== $bin"
  "$bin"
done

# Schema check on the trajectory files these benches emit (other benches
# write their own BENCH_*.json with older formats; those are not validated
# here).  Each file must name its bench, carry schema_version 1, contain at
# least one row, and embed the run's metrics snapshot (schema documented in
# src/obs/metrics.hpp: a "metrics" object whose own "metrics" array carries
# counter/gauge/histogram entries).
status=0
for json in BENCH_table1.json BENCH_checkpoint.json BENCH_multiplex.json \
            BENCH_session.json BENCH_reactor.json BENCH_events.json \
            BENCH_ckptstore.json; do
  if [ ! -e "$json" ]; then
    echo "run_benches.sh: expected $json was not produced" >&2
    status=1
    continue
  fi
  for needle in '"bench": ' '"schema_version": 1' '"rows": [' \
                '"metrics": {"schema_version": 1, "metrics": [' \
                '"kind": "counter"' '"kind": "histogram"' \
                '"bounds": [' '"buckets": ['; do
    if ! grep -qF "$needle" "$json"; then
      echo "run_benches.sh: $json lacks $needle" >&2
      status=1
    fi
  done
  if ! grep -qE '^  \{' "$json"; then
    echo "run_benches.sh: $json has no rows" >&2
    status=1
  fi
done

# The multiplex sweep also carries the flight-recorder overhead point: one
# single-client row with the recorder on and one with it forced off.
for needle in '"mode": "recorder_on"' '"mode": "recorder_off"'; do
  if [ -e BENCH_multiplex.json ] && ! grep -qF "$needle" BENCH_multiplex.json; then
    echo "run_benches.sh: BENCH_multiplex.json lacks $needle" >&2
    status=1
  fi
done

# The session sweep must carry the resume-vs-recovery comparison and the
# retransmit-buffer depth curve.
for needle in '"mode": "resume"' '"mode": "recovery"' \
              '"mode": "retransmit_buffer"'; do
  if [ -e BENCH_session.json ] && ! grep -qF "$needle" BENCH_session.json; then
    echo "run_benches.sh: BENCH_session.json lacks $needle" >&2
    status=1
  fi
done

# The connections sweep must compare both server receive modes.
for needle in '"mode": "reactor"' '"mode": "threaded"'; do
  if [ -e BENCH_reactor.json ] && ! grep -qF "$needle" BENCH_reactor.json; then
    echo "run_benches.sh: BENCH_reactor.json lacks $needle" >&2
    status=1
  fi
done

# The checkpoint-store sweep must carry the single-servant baseline, the
# sharded points, and all three fsync modes.
for needle in '"mode": "single"' '"mode": "sharded"' '"mode": "off"' \
              '"mode": "data"' '"mode": "full"' '"section": "shard_sweep"' \
              '"section": "fsync_modes"'; do
  if [ -e BENCH_ckptstore.json ] && ! grep -qF "$needle" BENCH_ckptstore.json; then
    echo "run_benches.sh: BENCH_ckptstore.json lacks $needle" >&2
    status=1
  fi
done

# The event-channel sweep must exercise both overflow policies.
for needle in '"mode": "drop_oldest"' '"mode": "coalesce_by_key"'; do
  if [ -e BENCH_events.json ] && ! grep -qF "$needle" BENCH_events.json; then
    echo "run_benches.sh: BENCH_events.json lacks $needle" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "bench JSON schema: ok"
exit "$status"
