file(REMOVE_RECURSE
  "CMakeFiles/ablation_replication.dir/bench/ablation_replication.cpp.o"
  "CMakeFiles/ablation_replication.dir/bench/ablation_replication.cpp.o.d"
  "bench/ablation_replication"
  "bench/ablation_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
