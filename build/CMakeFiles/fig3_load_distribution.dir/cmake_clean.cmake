file(REMOVE_RECURSE
  "CMakeFiles/fig3_load_distribution.dir/bench/fig3_load_distribution.cpp.o"
  "CMakeFiles/fig3_load_distribution.dir/bench/fig3_load_distribution.cpp.o.d"
  "bench/fig3_load_distribution"
  "bench/fig3_load_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_load_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
