# Empty dependencies file for fig3_load_distribution.
# This may be replaced when dependencies are built.
