file(REMOVE_RECURSE
  "CMakeFiles/micro_orb.dir/bench/micro_orb.cpp.o"
  "CMakeFiles/micro_orb.dir/bench/micro_orb.cpp.o.d"
  "bench/micro_orb"
  "bench/micro_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
