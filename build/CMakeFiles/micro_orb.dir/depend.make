# Empty dependencies file for micro_orb.
# This may be replaced when dependencies are built.
