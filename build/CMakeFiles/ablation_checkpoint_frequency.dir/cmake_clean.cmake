file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_frequency.dir/bench/ablation_checkpoint_frequency.cpp.o"
  "CMakeFiles/ablation_checkpoint_frequency.dir/bench/ablation_checkpoint_frequency.cpp.o.d"
  "bench/ablation_checkpoint_frequency"
  "bench/ablation_checkpoint_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
