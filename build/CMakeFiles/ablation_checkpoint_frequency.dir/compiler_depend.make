# Empty compiler generated dependencies file for ablation_checkpoint_frequency.
# This may be replaced when dependencies are built.
