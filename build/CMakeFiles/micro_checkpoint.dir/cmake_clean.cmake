file(REMOVE_RECURSE
  "CMakeFiles/micro_checkpoint.dir/bench/micro_checkpoint.cpp.o"
  "CMakeFiles/micro_checkpoint.dir/bench/micro_checkpoint.cpp.o.d"
  "bench/micro_checkpoint"
  "bench/micro_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
