file(REMOVE_RECURSE
  "CMakeFiles/ablation_wan_metacomputing.dir/bench/ablation_wan_metacomputing.cpp.o"
  "CMakeFiles/ablation_wan_metacomputing.dir/bench/ablation_wan_metacomputing.cpp.o.d"
  "bench/ablation_wan_metacomputing"
  "bench/ablation_wan_metacomputing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wan_metacomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
