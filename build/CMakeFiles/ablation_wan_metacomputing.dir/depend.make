# Empty dependencies file for ablation_wan_metacomputing.
# This may be replaced when dependencies are built.
