file(REMOVE_RECURSE
  "CMakeFiles/table1_proxy_overhead.dir/bench/table1_proxy_overhead.cpp.o"
  "CMakeFiles/table1_proxy_overhead.dir/bench/table1_proxy_overhead.cpp.o.d"
  "bench/table1_proxy_overhead"
  "bench/table1_proxy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_proxy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
