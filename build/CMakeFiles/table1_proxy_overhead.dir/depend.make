# Empty dependencies file for table1_proxy_overhead.
# This may be replaced when dependencies are built.
