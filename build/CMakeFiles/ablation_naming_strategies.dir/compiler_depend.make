# Empty compiler generated dependencies file for ablation_naming_strategies.
# This may be replaced when dependencies are built.
