file(REMOVE_RECURSE
  "CMakeFiles/ablation_naming_strategies.dir/bench/ablation_naming_strategies.cpp.o"
  "CMakeFiles/ablation_naming_strategies.dir/bench/ablation_naming_strategies.cpp.o.d"
  "bench/ablation_naming_strategies"
  "bench/ablation_naming_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_naming_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
