# Empty compiler generated dependencies file for ftproxygen_tests.
# This may be replaced when dependencies are built.
