file(REMOVE_RECURSE
  "CMakeFiles/ftproxygen_tests.dir/ftproxygen_test.cpp.o"
  "CMakeFiles/ftproxygen_tests.dir/ftproxygen_test.cpp.o.d"
  "ftproxygen_tests"
  "ftproxygen_tests.pdb"
  "ftproxygen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftproxygen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
