# Empty custom commands generated dependencies file for calculator_gen.
# This may be replaced when dependencies are built.
