file(REMOVE_RECURSE
  "CMakeFiles/calculator_gen"
  "calculator_gen.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/calculator_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
