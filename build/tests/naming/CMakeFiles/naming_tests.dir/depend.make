# Empty dependencies file for naming_tests.
# This may be replaced when dependencies are built.
