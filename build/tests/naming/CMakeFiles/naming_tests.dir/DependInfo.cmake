
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/naming/load_balancing_test.cpp" "tests/naming/CMakeFiles/naming_tests.dir/load_balancing_test.cpp.o" "gcc" "tests/naming/CMakeFiles/naming_tests.dir/load_balancing_test.cpp.o.d"
  "/root/repo/tests/naming/model_based_test.cpp" "tests/naming/CMakeFiles/naming_tests.dir/model_based_test.cpp.o" "gcc" "tests/naming/CMakeFiles/naming_tests.dir/model_based_test.cpp.o.d"
  "/root/repo/tests/naming/name_test.cpp" "tests/naming/CMakeFiles/naming_tests.dir/name_test.cpp.o" "gcc" "tests/naming/CMakeFiles/naming_tests.dir/name_test.cpp.o.d"
  "/root/repo/tests/naming/naming_context_test.cpp" "tests/naming/CMakeFiles/naming_tests.dir/naming_context_test.cpp.o" "gcc" "tests/naming/CMakeFiles/naming_tests.dir/naming_context_test.cpp.o.d"
  "/root/repo/tests/naming/persistence_test.cpp" "tests/naming/CMakeFiles/naming_tests.dir/persistence_test.cpp.o" "gcc" "tests/naming/CMakeFiles/naming_tests.dir/persistence_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/naming/CMakeFiles/corbaft_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
