file(REMOVE_RECURSE
  "CMakeFiles/naming_tests.dir/load_balancing_test.cpp.o"
  "CMakeFiles/naming_tests.dir/load_balancing_test.cpp.o.d"
  "CMakeFiles/naming_tests.dir/model_based_test.cpp.o"
  "CMakeFiles/naming_tests.dir/model_based_test.cpp.o.d"
  "CMakeFiles/naming_tests.dir/name_test.cpp.o"
  "CMakeFiles/naming_tests.dir/name_test.cpp.o.d"
  "CMakeFiles/naming_tests.dir/naming_context_test.cpp.o"
  "CMakeFiles/naming_tests.dir/naming_context_test.cpp.o.d"
  "CMakeFiles/naming_tests.dir/persistence_test.cpp.o"
  "CMakeFiles/naming_tests.dir/persistence_test.cpp.o.d"
  "naming_tests"
  "naming_tests.pdb"
  "naming_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
