file(REMOVE_RECURSE
  "CMakeFiles/winner_tests.dir/meta_manager_test.cpp.o"
  "CMakeFiles/winner_tests.dir/meta_manager_test.cpp.o.d"
  "CMakeFiles/winner_tests.dir/node_manager_test.cpp.o"
  "CMakeFiles/winner_tests.dir/node_manager_test.cpp.o.d"
  "CMakeFiles/winner_tests.dir/system_manager_test.cpp.o"
  "CMakeFiles/winner_tests.dir/system_manager_test.cpp.o.d"
  "winner_tests"
  "winner_tests.pdb"
  "winner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
