# Empty dependencies file for winner_tests.
# This may be replaced when dependencies are built.
