
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/winner/meta_manager_test.cpp" "tests/winner/CMakeFiles/winner_tests.dir/meta_manager_test.cpp.o" "gcc" "tests/winner/CMakeFiles/winner_tests.dir/meta_manager_test.cpp.o.d"
  "/root/repo/tests/winner/node_manager_test.cpp" "tests/winner/CMakeFiles/winner_tests.dir/node_manager_test.cpp.o" "gcc" "tests/winner/CMakeFiles/winner_tests.dir/node_manager_test.cpp.o.d"
  "/root/repo/tests/winner/system_manager_test.cpp" "tests/winner/CMakeFiles/winner_tests.dir/system_manager_test.cpp.o" "gcc" "tests/winner/CMakeFiles/winner_tests.dir/system_manager_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
