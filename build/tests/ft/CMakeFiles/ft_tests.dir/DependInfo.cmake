
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ft/checkpoint_store_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/checkpoint_store_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/checkpoint_store_test.cpp.o.d"
  "/root/repo/tests/ft/checkpoint_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/checkpoint_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/checkpoint_test.cpp.o.d"
  "/root/repo/tests/ft/fault_detector_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/fault_detector_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/fault_detector_test.cpp.o.d"
  "/root/repo/tests/ft/group_request_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/group_request_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/group_request_test.cpp.o.d"
  "/root/repo/tests/ft/migration_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/migration_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/migration_test.cpp.o.d"
  "/root/repo/tests/ft/proxy_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/proxy_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/proxy_test.cpp.o.d"
  "/root/repo/tests/ft/replication_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/replication_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/replication_test.cpp.o.d"
  "/root/repo/tests/ft/request_proxy_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/request_proxy_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/request_proxy_test.cpp.o.d"
  "/root/repo/tests/ft/service_factory_test.cpp" "tests/ft/CMakeFiles/ft_tests.dir/service_factory_test.cpp.o" "gcc" "tests/ft/CMakeFiles/ft_tests.dir/service_factory_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/corbaft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/corbaft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/corbaft_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
