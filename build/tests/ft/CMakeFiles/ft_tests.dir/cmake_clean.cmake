file(REMOVE_RECURSE
  "CMakeFiles/ft_tests.dir/checkpoint_store_test.cpp.o"
  "CMakeFiles/ft_tests.dir/checkpoint_store_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/checkpoint_test.cpp.o"
  "CMakeFiles/ft_tests.dir/checkpoint_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/fault_detector_test.cpp.o"
  "CMakeFiles/ft_tests.dir/fault_detector_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/group_request_test.cpp.o"
  "CMakeFiles/ft_tests.dir/group_request_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/migration_test.cpp.o"
  "CMakeFiles/ft_tests.dir/migration_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/proxy_test.cpp.o"
  "CMakeFiles/ft_tests.dir/proxy_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/replication_test.cpp.o"
  "CMakeFiles/ft_tests.dir/replication_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/request_proxy_test.cpp.o"
  "CMakeFiles/ft_tests.dir/request_proxy_test.cpp.o.d"
  "CMakeFiles/ft_tests.dir/service_factory_test.cpp.o"
  "CMakeFiles/ft_tests.dir/service_factory_test.cpp.o.d"
  "ft_tests"
  "ft_tests.pdb"
  "ft_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
