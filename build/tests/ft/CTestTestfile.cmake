# CMake generated Testfile for 
# Source directory: /root/repo/tests/ft
# Build directory: /root/repo/build/tests/ft
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ft/ft_tests[1]_include.cmake")
