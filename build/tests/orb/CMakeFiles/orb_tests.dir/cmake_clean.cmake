file(REMOVE_RECURSE
  "CMakeFiles/orb_tests.dir/cdr_test.cpp.o"
  "CMakeFiles/orb_tests.dir/cdr_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/dii_test.cpp.o"
  "CMakeFiles/orb_tests.dir/dii_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/exceptions_test.cpp.o"
  "CMakeFiles/orb_tests.dir/exceptions_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/ior_test.cpp.o"
  "CMakeFiles/orb_tests.dir/ior_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/log_test.cpp.o"
  "CMakeFiles/orb_tests.dir/log_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/message_test.cpp.o"
  "CMakeFiles/orb_tests.dir/message_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/object_adapter_test.cpp.o"
  "CMakeFiles/orb_tests.dir/object_adapter_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/tcp_transport_test.cpp.o"
  "CMakeFiles/orb_tests.dir/tcp_transport_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/value_test.cpp.o"
  "CMakeFiles/orb_tests.dir/value_test.cpp.o.d"
  "orb_tests"
  "orb_tests.pdb"
  "orb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
