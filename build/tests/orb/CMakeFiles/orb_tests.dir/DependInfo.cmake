
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/orb/cdr_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/cdr_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/cdr_test.cpp.o.d"
  "/root/repo/tests/orb/dii_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/dii_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/dii_test.cpp.o.d"
  "/root/repo/tests/orb/exceptions_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/exceptions_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/exceptions_test.cpp.o.d"
  "/root/repo/tests/orb/ior_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/ior_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/ior_test.cpp.o.d"
  "/root/repo/tests/orb/log_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/log_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/log_test.cpp.o.d"
  "/root/repo/tests/orb/message_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/message_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/message_test.cpp.o.d"
  "/root/repo/tests/orb/object_adapter_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/object_adapter_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/object_adapter_test.cpp.o.d"
  "/root/repo/tests/orb/orb_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/orb_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/orb_test.cpp.o.d"
  "/root/repo/tests/orb/tcp_transport_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/tcp_transport_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/tcp_transport_test.cpp.o.d"
  "/root/repo/tests/orb/value_test.cpp" "tests/orb/CMakeFiles/orb_tests.dir/value_test.cpp.o" "gcc" "tests/orb/CMakeFiles/orb_tests.dir/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
