# Empty dependencies file for orb_tests.
# This may be replaced when dependencies are built.
