file(REMOVE_RECURSE
  "CMakeFiles/opt_tests.dir/complex_box_test.cpp.o"
  "CMakeFiles/opt_tests.dir/complex_box_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/rosenbrock_test.cpp.o"
  "CMakeFiles/opt_tests.dir/rosenbrock_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/worker_test.cpp.o"
  "CMakeFiles/opt_tests.dir/worker_test.cpp.o.d"
  "opt_tests"
  "opt_tests.pdb"
  "opt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
