
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cluster_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/cluster_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/event_queue_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/host_property_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/host_property_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/host_property_test.cpp.o.d"
  "/root/repo/tests/sim/host_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/host_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/host_test.cpp.o.d"
  "/root/repo/tests/sim/sim_transport_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/sim_transport_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/sim_transport_test.cpp.o.d"
  "/root/repo/tests/sim/wan_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/wan_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/wan_test.cpp.o.d"
  "/root/repo/tests/sim/work_meter_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/work_meter_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/work_meter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
