file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/cluster_test.cpp.o"
  "CMakeFiles/sim_tests.dir/cluster_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/event_queue_test.cpp.o"
  "CMakeFiles/sim_tests.dir/event_queue_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/host_property_test.cpp.o"
  "CMakeFiles/sim_tests.dir/host_property_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/host_test.cpp.o"
  "CMakeFiles/sim_tests.dir/host_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim_transport_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim_transport_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/wan_test.cpp.o"
  "CMakeFiles/sim_tests.dir/wan_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/work_meter_test.cpp.o"
  "CMakeFiles/sim_tests.dir/work_meter_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
