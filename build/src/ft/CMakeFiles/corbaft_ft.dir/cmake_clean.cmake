file(REMOVE_RECURSE
  "CMakeFiles/corbaft_ft.dir/checkpoint.cpp.o"
  "CMakeFiles/corbaft_ft.dir/checkpoint.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/checkpoint_store.cpp.o"
  "CMakeFiles/corbaft_ft.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/fault_detector.cpp.o"
  "CMakeFiles/corbaft_ft.dir/fault_detector.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/migration.cpp.o"
  "CMakeFiles/corbaft_ft.dir/migration.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/proxy.cpp.o"
  "CMakeFiles/corbaft_ft.dir/proxy.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/replication.cpp.o"
  "CMakeFiles/corbaft_ft.dir/replication.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/request_proxy.cpp.o"
  "CMakeFiles/corbaft_ft.dir/request_proxy.cpp.o.d"
  "CMakeFiles/corbaft_ft.dir/service_factory.cpp.o"
  "CMakeFiles/corbaft_ft.dir/service_factory.cpp.o.d"
  "libcorbaft_ft.a"
  "libcorbaft_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
