file(REMOVE_RECURSE
  "libcorbaft_ft.a"
)
