
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/checkpoint.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/checkpoint.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/checkpoint.cpp.o.d"
  "/root/repo/src/ft/checkpoint_store.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/checkpoint_store.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/ft/fault_detector.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/fault_detector.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/fault_detector.cpp.o.d"
  "/root/repo/src/ft/migration.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/migration.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/migration.cpp.o.d"
  "/root/repo/src/ft/proxy.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/proxy.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/proxy.cpp.o.d"
  "/root/repo/src/ft/replication.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/replication.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/replication.cpp.o.d"
  "/root/repo/src/ft/request_proxy.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/request_proxy.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/request_proxy.cpp.o.d"
  "/root/repo/src/ft/service_factory.cpp" "src/ft/CMakeFiles/corbaft_ft.dir/service_factory.cpp.o" "gcc" "src/ft/CMakeFiles/corbaft_ft.dir/service_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/corbaft_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
