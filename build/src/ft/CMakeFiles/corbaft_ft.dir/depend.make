# Empty dependencies file for corbaft_ft.
# This may be replaced when dependencies are built.
