
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/winner/load_sensor.cpp" "src/winner/CMakeFiles/corbaft_winner.dir/load_sensor.cpp.o" "gcc" "src/winner/CMakeFiles/corbaft_winner.dir/load_sensor.cpp.o.d"
  "/root/repo/src/winner/meta_manager.cpp" "src/winner/CMakeFiles/corbaft_winner.dir/meta_manager.cpp.o" "gcc" "src/winner/CMakeFiles/corbaft_winner.dir/meta_manager.cpp.o.d"
  "/root/repo/src/winner/node_manager.cpp" "src/winner/CMakeFiles/corbaft_winner.dir/node_manager.cpp.o" "gcc" "src/winner/CMakeFiles/corbaft_winner.dir/node_manager.cpp.o.d"
  "/root/repo/src/winner/system_manager.cpp" "src/winner/CMakeFiles/corbaft_winner.dir/system_manager.cpp.o" "gcc" "src/winner/CMakeFiles/corbaft_winner.dir/system_manager.cpp.o.d"
  "/root/repo/src/winner/system_manager_corba.cpp" "src/winner/CMakeFiles/corbaft_winner.dir/system_manager_corba.cpp.o" "gcc" "src/winner/CMakeFiles/corbaft_winner.dir/system_manager_corba.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
