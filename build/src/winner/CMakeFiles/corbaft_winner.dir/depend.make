# Empty dependencies file for corbaft_winner.
# This may be replaced when dependencies are built.
