file(REMOVE_RECURSE
  "CMakeFiles/corbaft_winner.dir/load_sensor.cpp.o"
  "CMakeFiles/corbaft_winner.dir/load_sensor.cpp.o.d"
  "CMakeFiles/corbaft_winner.dir/meta_manager.cpp.o"
  "CMakeFiles/corbaft_winner.dir/meta_manager.cpp.o.d"
  "CMakeFiles/corbaft_winner.dir/node_manager.cpp.o"
  "CMakeFiles/corbaft_winner.dir/node_manager.cpp.o.d"
  "CMakeFiles/corbaft_winner.dir/system_manager.cpp.o"
  "CMakeFiles/corbaft_winner.dir/system_manager.cpp.o.d"
  "CMakeFiles/corbaft_winner.dir/system_manager_corba.cpp.o"
  "CMakeFiles/corbaft_winner.dir/system_manager_corba.cpp.o.d"
  "libcorbaft_winner.a"
  "libcorbaft_winner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_winner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
