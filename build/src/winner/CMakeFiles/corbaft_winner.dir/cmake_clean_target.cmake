file(REMOVE_RECURSE
  "libcorbaft_winner.a"
)
