file(REMOVE_RECURSE
  "libcorbaft_opt.a"
)
