
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/complex_box.cpp" "src/opt/CMakeFiles/corbaft_opt.dir/complex_box.cpp.o" "gcc" "src/opt/CMakeFiles/corbaft_opt.dir/complex_box.cpp.o.d"
  "/root/repo/src/opt/manager.cpp" "src/opt/CMakeFiles/corbaft_opt.dir/manager.cpp.o" "gcc" "src/opt/CMakeFiles/corbaft_opt.dir/manager.cpp.o.d"
  "/root/repo/src/opt/rosenbrock.cpp" "src/opt/CMakeFiles/corbaft_opt.dir/rosenbrock.cpp.o" "gcc" "src/opt/CMakeFiles/corbaft_opt.dir/rosenbrock.cpp.o.d"
  "/root/repo/src/opt/worker.cpp" "src/opt/CMakeFiles/corbaft_opt.dir/worker.cpp.o" "gcc" "src/opt/CMakeFiles/corbaft_opt.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/corbaft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/corbaft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/corbaft_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
