file(REMOVE_RECURSE
  "CMakeFiles/corbaft_opt.dir/complex_box.cpp.o"
  "CMakeFiles/corbaft_opt.dir/complex_box.cpp.o.d"
  "CMakeFiles/corbaft_opt.dir/manager.cpp.o"
  "CMakeFiles/corbaft_opt.dir/manager.cpp.o.d"
  "CMakeFiles/corbaft_opt.dir/rosenbrock.cpp.o"
  "CMakeFiles/corbaft_opt.dir/rosenbrock.cpp.o.d"
  "CMakeFiles/corbaft_opt.dir/worker.cpp.o"
  "CMakeFiles/corbaft_opt.dir/worker.cpp.o.d"
  "libcorbaft_opt.a"
  "libcorbaft_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
