# Empty dependencies file for corbaft_opt.
# This may be replaced when dependencies are built.
