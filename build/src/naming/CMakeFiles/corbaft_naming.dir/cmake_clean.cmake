file(REMOVE_RECURSE
  "CMakeFiles/corbaft_naming.dir/name.cpp.o"
  "CMakeFiles/corbaft_naming.dir/name.cpp.o.d"
  "CMakeFiles/corbaft_naming.dir/naming_context.cpp.o"
  "CMakeFiles/corbaft_naming.dir/naming_context.cpp.o.d"
  "CMakeFiles/corbaft_naming.dir/naming_stub.cpp.o"
  "CMakeFiles/corbaft_naming.dir/naming_stub.cpp.o.d"
  "libcorbaft_naming.a"
  "libcorbaft_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
