file(REMOVE_RECURSE
  "libcorbaft_naming.a"
)
