# Empty dependencies file for corbaft_naming.
# This may be replaced when dependencies are built.
