
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/naming/name.cpp" "src/naming/CMakeFiles/corbaft_naming.dir/name.cpp.o" "gcc" "src/naming/CMakeFiles/corbaft_naming.dir/name.cpp.o.d"
  "/root/repo/src/naming/naming_context.cpp" "src/naming/CMakeFiles/corbaft_naming.dir/naming_context.cpp.o" "gcc" "src/naming/CMakeFiles/corbaft_naming.dir/naming_context.cpp.o.d"
  "/root/repo/src/naming/naming_stub.cpp" "src/naming/CMakeFiles/corbaft_naming.dir/naming_stub.cpp.o" "gcc" "src/naming/CMakeFiles/corbaft_naming.dir/naming_stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
