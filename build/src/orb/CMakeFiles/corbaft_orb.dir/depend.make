# Empty dependencies file for corbaft_orb.
# This may be replaced when dependencies are built.
