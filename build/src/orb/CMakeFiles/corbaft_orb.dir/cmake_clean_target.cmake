file(REMOVE_RECURSE
  "libcorbaft_orb.a"
)
