
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/cdr.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/cdr.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/cdr.cpp.o.d"
  "/root/repo/src/orb/dii.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/dii.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/dii.cpp.o.d"
  "/root/repo/src/orb/exceptions.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/exceptions.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/exceptions.cpp.o.d"
  "/root/repo/src/orb/ior.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/ior.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/ior.cpp.o.d"
  "/root/repo/src/orb/log.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/log.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/log.cpp.o.d"
  "/root/repo/src/orb/message.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/message.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/message.cpp.o.d"
  "/root/repo/src/orb/object_adapter.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/object_adapter.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/object_adapter.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/orb.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/orb.cpp.o.d"
  "/root/repo/src/orb/tcp_transport.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/tcp_transport.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/tcp_transport.cpp.o.d"
  "/root/repo/src/orb/transport.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/transport.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/transport.cpp.o.d"
  "/root/repo/src/orb/value.cpp" "src/orb/CMakeFiles/corbaft_orb.dir/value.cpp.o" "gcc" "src/orb/CMakeFiles/corbaft_orb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
