file(REMOVE_RECURSE
  "CMakeFiles/corbaft_orb.dir/cdr.cpp.o"
  "CMakeFiles/corbaft_orb.dir/cdr.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/dii.cpp.o"
  "CMakeFiles/corbaft_orb.dir/dii.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/exceptions.cpp.o"
  "CMakeFiles/corbaft_orb.dir/exceptions.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/ior.cpp.o"
  "CMakeFiles/corbaft_orb.dir/ior.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/log.cpp.o"
  "CMakeFiles/corbaft_orb.dir/log.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/message.cpp.o"
  "CMakeFiles/corbaft_orb.dir/message.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/object_adapter.cpp.o"
  "CMakeFiles/corbaft_orb.dir/object_adapter.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/orb.cpp.o"
  "CMakeFiles/corbaft_orb.dir/orb.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/tcp_transport.cpp.o"
  "CMakeFiles/corbaft_orb.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/transport.cpp.o"
  "CMakeFiles/corbaft_orb.dir/transport.cpp.o.d"
  "CMakeFiles/corbaft_orb.dir/value.cpp.o"
  "CMakeFiles/corbaft_orb.dir/value.cpp.o.d"
  "libcorbaft_orb.a"
  "libcorbaft_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
