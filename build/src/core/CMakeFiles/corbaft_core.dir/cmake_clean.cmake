file(REMOVE_RECURSE
  "CMakeFiles/corbaft_core.dir/sim_runtime.cpp.o"
  "CMakeFiles/corbaft_core.dir/sim_runtime.cpp.o.d"
  "libcorbaft_core.a"
  "libcorbaft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
