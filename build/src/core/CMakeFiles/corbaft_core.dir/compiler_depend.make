# Empty compiler generated dependencies file for corbaft_core.
# This may be replaced when dependencies are built.
