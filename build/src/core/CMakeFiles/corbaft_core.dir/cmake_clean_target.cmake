file(REMOVE_RECURSE
  "libcorbaft_core.a"
)
