file(REMOVE_RECURSE
  "CMakeFiles/corbaft_sim.dir/cluster.cpp.o"
  "CMakeFiles/corbaft_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/corbaft_sim.dir/event_queue.cpp.o"
  "CMakeFiles/corbaft_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/corbaft_sim.dir/host.cpp.o"
  "CMakeFiles/corbaft_sim.dir/host.cpp.o.d"
  "CMakeFiles/corbaft_sim.dir/sim_transport.cpp.o"
  "CMakeFiles/corbaft_sim.dir/sim_transport.cpp.o.d"
  "CMakeFiles/corbaft_sim.dir/work_meter.cpp.o"
  "CMakeFiles/corbaft_sim.dir/work_meter.cpp.o.d"
  "libcorbaft_sim.a"
  "libcorbaft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corbaft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
