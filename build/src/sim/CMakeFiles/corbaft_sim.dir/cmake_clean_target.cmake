file(REMOVE_RECURSE
  "libcorbaft_sim.a"
)
