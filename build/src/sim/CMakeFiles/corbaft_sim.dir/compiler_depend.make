# Empty compiler generated dependencies file for corbaft_sim.
# This may be replaced when dependencies are built.
