
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/corbaft_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/corbaft_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/corbaft_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/corbaft_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/corbaft_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/corbaft_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/sim_transport.cpp" "src/sim/CMakeFiles/corbaft_sim.dir/sim_transport.cpp.o" "gcc" "src/sim/CMakeFiles/corbaft_sim.dir/sim_transport.cpp.o.d"
  "/root/repo/src/sim/work_meter.cpp" "src/sim/CMakeFiles/corbaft_sim.dir/work_meter.cpp.o" "gcc" "src/sim/CMakeFiles/corbaft_sim.dir/work_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
