src/sim/CMakeFiles/corbaft_sim.dir/work_meter.cpp.o: \
 /root/repo/src/sim/work_meter.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/work_meter.hpp
