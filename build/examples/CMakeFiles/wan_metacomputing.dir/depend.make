# Empty dependencies file for wan_metacomputing.
# This may be replaced when dependencies are built.
