file(REMOVE_RECURSE
  "CMakeFiles/wan_metacomputing.dir/wan_metacomputing.cpp.o"
  "CMakeFiles/wan_metacomputing.dir/wan_metacomputing.cpp.o.d"
  "wan_metacomputing"
  "wan_metacomputing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_metacomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
