file(REMOVE_RECURSE
  "CMakeFiles/rosenbrock_mdo.dir/rosenbrock_mdo.cpp.o"
  "CMakeFiles/rosenbrock_mdo.dir/rosenbrock_mdo.cpp.o.d"
  "rosenbrock_mdo"
  "rosenbrock_mdo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosenbrock_mdo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
