# Empty dependencies file for rosenbrock_mdo.
# This may be replaced when dependencies are built.
