
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tcp_cluster.cpp" "examples/CMakeFiles/tcp_cluster.dir/tcp_cluster.cpp.o" "gcc" "examples/CMakeFiles/tcp_cluster.dir/tcp_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/corbaft_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/corbaft_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/winner/CMakeFiles/corbaft_winner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/corbaft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/corbaft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corbaft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/corbaft_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
