# Empty compiler generated dependencies file for fault_tolerant_service.
# This may be replaced when dependencies are built.
