file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_service.dir/fault_tolerant_service.cpp.o"
  "CMakeFiles/fault_tolerant_service.dir/fault_tolerant_service.cpp.o.d"
  "fault_tolerant_service"
  "fault_tolerant_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
