# Empty compiler generated dependencies file for ftproxygen.
# This may be replaced when dependencies are built.
