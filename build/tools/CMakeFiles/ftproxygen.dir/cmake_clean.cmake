file(REMOVE_RECURSE
  "CMakeFiles/ftproxygen.dir/ftproxygen/ftproxygen.cpp.o"
  "CMakeFiles/ftproxygen.dir/ftproxygen/ftproxygen.cpp.o.d"
  "ftproxygen"
  "ftproxygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftproxygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
