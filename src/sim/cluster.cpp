#include "sim/cluster.hpp"

namespace sim {

Host& Cluster::add_host(const std::string& name, double speed,
                        int background_processes) {
  auto [it, inserted] = hosts_.emplace(
      name, std::make_unique<Host>(events_, name, speed, background_processes));
  if (!inserted) throw std::invalid_argument("duplicate host name: " + name);
  return *it->second;
}

bool Cluster::has_host(const std::string& name) const {
  return hosts_.count(name) != 0;
}

Host& Cluster::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw std::out_of_range("unknown host: " + name);
  return *it->second;
}

const Host& Cluster::host(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw std::out_of_range("unknown host: " + name);
  return *it->second;
}

std::vector<std::string> Cluster::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) names.push_back(name);
  return names;
}

void Cluster::map_endpoint(const std::string& endpoint,
                           const std::string& host_name) {
  if (!has_host(host_name)) throw std::out_of_range("unknown host: " + host_name);
  endpoint_to_host_[endpoint] = host_name;
}

Host* Cluster::host_for_endpoint(const std::string& endpoint) {
  auto it = endpoint_to_host_.find(endpoint);
  if (it == endpoint_to_host_.end()) return nullptr;
  return &host(it->second);
}

std::string Cluster::host_name_for_endpoint(const std::string& endpoint) const {
  auto it = endpoint_to_host_.find(endpoint);
  return it == endpoint_to_host_.end() ? std::string() : it->second;
}

void Cluster::set_background_load(const std::string& host_name, int processes) {
  host(host_name).set_background_processes(processes);
}

void Cluster::crash_host(const std::string& host_name) {
  host(host_name).crash();
}

void Cluster::crash_host_at(Time t, const std::string& host_name) {
  events_.schedule_at(t, [this, host_name] { host(host_name).crash(); });
}

void Cluster::restart_host(const std::string& host_name) {
  host(host_name).restart();
}

void Cluster::set_host_domain(const std::string& host_name,
                              const std::string& domain) {
  if (!has_host(host_name)) throw std::out_of_range("unknown host: " + host_name);
  host_domain_[host_name] = domain;
}

std::string Cluster::domain_of(const std::string& host_name) const {
  auto it = host_domain_.find(host_name);
  return it == host_domain_.end() ? std::string() : it->second;
}

double Cluster::transfer_time(const std::string& from_endpoint,
                              const std::string& to_endpoint,
                              std::size_t bytes) const {
  auto host_of = [&](const std::string& endpoint) -> std::string {
    auto it = endpoint_to_host_.find(endpoint);
    return it == endpoint_to_host_.end() ? std::string() : it->second;
  };
  const std::string from = host_of(from_endpoint);
  const std::string to = host_of(to_endpoint);
  if (!from.empty() && !to.empty() && domain_of(from) != domain_of(to))
    return network_.wan_transfer_time(bytes);
  return network_.transfer_time(bytes);
}

void Cluster::run_local_work(const std::string& host_name, double work) {
  bool done = false;
  bool failed = false;
  host(host_name).submit(
      work, [&done] { done = true; }, [&failed] { failed = true; });
  events_.run_while([&] { return !done && !failed; });
  if (failed)
    throw std::runtime_error("host " + host_name + " crashed during local work");
  if (!done)
    throw std::runtime_error("simulation deadlock waiting for local work on " +
                             host_name);
}

}  // namespace sim
