#include "sim/work_meter.hpp"

namespace sim {

namespace {
thread_local WorkScope* g_current_scope = nullptr;
}  // namespace

void WorkMeter::charge(double units) noexcept {
  if (g_current_scope != nullptr && units > 0) {
    g_current_scope->consumed_ += units;
  }
}

bool WorkMeter::active() noexcept { return g_current_scope != nullptr; }

WorkScope::WorkScope() noexcept : previous_(g_current_scope) {
  g_current_scope = this;
}

WorkScope::~WorkScope() { g_current_scope = previous_; }

}  // namespace sim
