// Deterministic fault injection for the simulated NOW.
//
// The recovery machinery of the paper (§3) is only exercised by the seed
// experiments through one failure mode: a clean host crash.  Real networks
// of workstations fail messier — messages are lost or duplicated, latency
// spikes, links and whole host groups partition and later heal, machines
// stall without dying.  FaultInjector adds exactly those modes to the
// simulator, fully deterministically: every decision is a function of a
// fixed seed and the (deterministic) order of messages in the simulation,
// so one seed always yields one event trace.
//
// SimTransport consults the injector once per message hop (request and
// reply directions separately) and translates each fate into the CORBA
// exception a real ORB would raise:
//
//   random drop, request hop  -> COMM_FAILURE / COMPLETED_NO
//   random drop, reply hop    -> COMM_FAILURE / COMPLETED_MAYBE
//   partition or link fault,
//     request hop             -> TRANSIENT / COMPLETED_NO (unreachable,
//                                may heal — worth retrying elsewhere)
//   partition or link fault,
//     reply hop               -> reply delivered after the heal time (TCP
//                                retransmit); the caller's request timeout
//                                turns the wait into TIMEOUT; a partition
//                                that never heals is COMM_FAILURE
//   latency spike             -> extra one-way delay (surfaces as TIMEOUT
//                                when it exceeds the request deadline)
//   host stall                -> servant dispatch deferred to the stall's
//                                end (a hung-but-alive machine)
//   duplication, request hop  -> the servant executes the request twice
//                                (at-least-once delivery; the second reply
//                                is discarded at the client)
//   connection reset          -> the TCP connection is severed but both
//                                hosts stay healthy.  With sessions off
//                                this behaves exactly like a drop (batched
//                                COMM_FAILURE); with resumable sessions on
//                                the transport reconnects, replays the lost
//                                frame and the call completes exactly-once
//                                after a deterministic resume penalty.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

namespace sim {

/// One scheduled partition: hosts inside `group` cannot exchange messages
/// with hosts outside it while the partition is active.  Traffic within the
/// group (and within the rest of the cluster) is unaffected.
struct Partition {
  double start = 0.0;
  /// Absolute heal time; a value <= start means the partition never heals.
  double heal = 0.0;
  std::vector<std::string> group;
};

/// One faulty link between a specific pair of hosts (order-insensitive).
struct LinkFault {
  std::string host_a;
  std::string host_b;
  double start = 0.0;
  double heal = 0.0;  ///< <= start means the link never recovers
};

/// One transient host stall: the machine is alive (pings that arrived
/// earlier still answer) but makes no progress; requests arriving during
/// the stall are served when it ends.
struct HostStall {
  std::string host;
  double start = 0.0;
  double duration = 0.0;
};

/// A complete fault schedule.  Probabilities are per message hop; scheduled
/// items (partitions, link faults, stalls) use virtual times relative to
/// the injector's origin (see FaultInjector::set_origin).
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_probability = 0.0;
  /// Connection reset without host failure (the "flaky network, healthy
  /// hosts" mode).  Drawn after drop, before duplicate, so enabling it
  /// leaves the other streams aligned when its probability is zero.
  double reset_probability = 0.0;
  double duplicate_probability = 0.0;
  double latency_spike_probability = 0.0;
  double latency_spike_s = 0.0;
  std::vector<Partition> partitions{};
  std::vector<LinkFault> link_faults{};
  std::vector<HostStall> stalls{};
};

/// The injector's verdict for one message hop.
struct MessageFate {
  enum class Action {
    deliver,  ///< pass through (extra_latency/duplicate may still apply)
    drop,     ///< lost; the connection is reported broken
    reset,    ///< connection severed, hosts healthy; resumable when sessions on
    blocked,  ///< partition/link fault; heal_at says when (if ever) it ends
  };
  Action action = Action::deliver;
  double extra_latency = 0.0;
  bool duplicate = false;
  /// For blocked: absolute virtual time the obstruction heals (no value:
  /// never).
  std::optional<double> heal_at;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Shifts all scheduled items (partitions, link faults, stalls) so their
  /// relative times count from `t0`.  Call once, after deployment settles,
  /// with the current virtual time.
  void set_origin(double t0) noexcept { origin_ = t0; }
  double origin() const noexcept { return origin_; }

  /// Decides the fate of one message hop at virtual time `now`.  `is_reply`
  /// selects the completion semantics documented above.  Deterministic:
  /// depends only on the seed and the call sequence.
  MessageFate fate(const std::string& from_host, const std::string& to_host,
                   double now, bool is_reply);

  /// True while `a` and `b` are separated by an active partition or link
  /// fault.  Hosts not named in any partition group count as "the rest".
  bool blocked(const std::string& a, const std::string& b, double now) const;

  /// Absolute time the obstruction between `a` and `b` heals; no value when
  /// unblocked or when it never heals.
  std::optional<double> heal_time(const std::string& a, const std::string& b,
                                  double now) const;

  /// End of the stall `host` is in at `now` (no value when not stalled).
  std::optional<double> stall_end(const std::string& host, double now) const;

  // --- telemetry ------------------------------------------------------------
  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t connection_resets() const noexcept { return resets_; }
  std::uint64_t duplicates() const noexcept { return duplicates_; }
  std::uint64_t latency_spikes() const noexcept { return spikes_; }
  std::uint64_t partition_blocks() const noexcept { return blocks_; }
  std::uint64_t stall_deferrals() const noexcept { return stall_deferrals_; }
  /// Called by SimTransport when it defers a dispatch into a stall's end.
  void note_stall_deferral() noexcept { ++stall_deferrals_; }

  /// Ordered log of every injected fault ("[t] drop request a->b", ...).
  /// Two runs with the same plan and message sequence produce identical
  /// traces — the determinism contract the chaos tests assert.
  const std::vector<std::string>& trace() const noexcept { return trace_; }

 private:
  void record(double now, const std::string& what);

  FaultPlan plan_;
  double origin_ = 0.0;
  std::mt19937_64 rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t spikes_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t stall_deferrals_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace sim
