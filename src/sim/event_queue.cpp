#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace sim {

void EventQueue::schedule_at(Time t, Callback cb) {
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  if (t < now_) t = now_;
  events_.push(Event{t, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_after(Time dt, Callback cb) {
  schedule_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // Move the event out before running it: the callback may schedule new
  // events or pump the queue recursively.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.time;
  ++executed_;
  event.callback();
  return true;
}

void EventQueue::run_until_idle() {
  while (step()) {
  }
}

void EventQueue::run_until(Time t) {
  while (!events_.empty() && events_.top().time <= t) step();
  if (t > now_) now_ = t;
}

bool EventQueue::run_while(const std::function<bool()>& more) {
  while (more()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace sim
