// Simulated workstation: a processor-sharing queue over virtual time.
//
// A circa-2000 Unix workstation timeshares all runnable processes, so a
// compute-bound task on a host with `k` other runnable processes progresses
// at speed/(k+1).  Host models exactly that: each submitted task has a work
// size (abstract work units); at any instant every resident task progresses
// at speed / (active_tasks + background_processes).  Background processes
// model the paper's artificially generated "background load" and never
// finish.  Crashing a host fails all resident tasks — the hook the
// fault-tolerance experiments use to trigger CORBA::COMM_FAILURE.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace sim {

class Host {
 public:
  /// `speed` is the host's performance index in work units per virtual
  /// second for a task running alone.
  Host(EventQueue& events, std::string name, double speed,
       int background_processes = 0);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const noexcept { return name_; }
  double speed() const noexcept { return speed_; }
  bool alive() const noexcept { return alive_; }

  int background_processes() const noexcept { return background_; }
  /// Changing the background load re-times all resident tasks.
  void set_background_processes(int n);

  std::size_t active_tasks() const noexcept { return tasks_.size(); }

  /// What a load sensor observes: runnable process count (resident tasks
  /// plus background processes), i.e. a UNIX run-queue length.
  double observed_load() const noexcept {
    return static_cast<double>(tasks_.size() + static_cast<std::size_t>(background_));
  }

  /// Submits `work` units.  `on_done` fires at the virtual completion time;
  /// `on_failed` fires if the host crashes first.  Zero work completes via
  /// an immediate event (still asynchronously, preserving event ordering).
  /// Submitting to a dead host invokes `on_failed` via an immediate event.
  void submit(double work, std::function<void()> on_done,
              std::function<void()> on_failed = {});

  /// Kills the host: every resident task fails, new submissions fail.
  void crash();

  /// Brings a crashed host back (fresh, with no resident tasks).
  void restart();

  /// Total work units completed on this host (telemetry).
  double completed_work() const noexcept { return completed_work_; }

 private:
  struct Task {
    std::uint64_t id;
    double remaining;
    std::function<void()> on_done;
    std::function<void()> on_failed;
  };

  double rate() const noexcept;
  /// Applies progress accrued since the last settle at the current rate.
  void settle();
  /// (Re)schedules the completion event for the earliest-finishing task.
  void reschedule();
  void on_completion_event(std::uint64_t epoch);

  EventQueue& events_;
  std::string name_;
  double speed_;
  int background_;
  bool alive_ = true;
  std::vector<Task> tasks_;
  Time last_settle_ = 0.0;
  std::uint64_t epoch_ = 0;     ///< invalidates stale completion events
  std::uint64_t next_task_id_ = 1;
  double completed_work_ = 0.0;
};

}  // namespace sim
