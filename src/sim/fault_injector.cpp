#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace sim {

namespace {

bool contains(const std::vector<std::string>& group, const std::string& host) {
  return std::find(group.begin(), group.end(), host) != group.end();
}

std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  auto check_probability = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
  };
  check_probability(plan_.drop_probability, "drop_probability");
  check_probability(plan_.reset_probability, "reset_probability");
  check_probability(plan_.duplicate_probability, "duplicate_probability");
  check_probability(plan_.latency_spike_probability,
                    "latency_spike_probability");
  if (plan_.latency_spike_s < 0)
    throw std::invalid_argument("latency_spike_s must be >= 0");
  for (const Partition& p : plan_.partitions)
    if (p.group.empty())
      throw std::invalid_argument("partition requires a host group");
  for (const HostStall& s : plan_.stalls)
    if (s.duration < 0)
      throw std::invalid_argument("stall duration must be >= 0");
}

void FaultInjector::record(double now, const std::string& what) {
  trace_.push_back("[" + format_time(now) + "] " + what);
}

bool FaultInjector::blocked(const std::string& a, const std::string& b,
                            double now) const {
  for (const Partition& p : plan_.partitions) {
    const double start = origin_ + p.start;
    const double heal = origin_ + p.heal;
    const bool active = now >= start && (p.heal <= p.start || now < heal);
    if (active && contains(p.group, a) != contains(p.group, b)) return true;
  }
  for (const LinkFault& l : plan_.link_faults) {
    const double start = origin_ + l.start;
    const double heal = origin_ + l.heal;
    const bool active = now >= start && (l.heal <= l.start || now < heal);
    const bool matches = (l.host_a == a && l.host_b == b) ||
                         (l.host_a == b && l.host_b == a);
    if (active && matches) return true;
  }
  return false;
}

std::optional<double> FaultInjector::heal_time(const std::string& a,
                                               const std::string& b,
                                               double now) const {
  // The obstruction between a and b ends when the *last* active blocking
  // fault heals; one never-healing fault means never.
  std::optional<double> latest;
  bool never = false;
  auto consider = [&](double start_rel, double heal_rel) {
    const double start = origin_ + start_rel;
    const double heal = origin_ + heal_rel;
    const bool active = now >= start && (heal_rel <= start_rel || now < heal);
    if (!active) return;
    if (heal_rel <= start_rel) {
      never = true;
      return;
    }
    if (!latest || heal > *latest) latest = heal;
  };
  for (const Partition& p : plan_.partitions)
    if (contains(p.group, a) != contains(p.group, b))
      consider(p.start, p.heal);
  for (const LinkFault& l : plan_.link_faults) {
    const bool matches = (l.host_a == a && l.host_b == b) ||
                         (l.host_a == b && l.host_b == a);
    if (matches) consider(l.start, l.heal);
  }
  if (never) return std::nullopt;
  return latest;
}

std::optional<double> FaultInjector::stall_end(const std::string& host,
                                               double now) const {
  std::optional<double> latest;
  for (const HostStall& s : plan_.stalls) {
    if (s.host != host) continue;
    const double start = origin_ + s.start;
    const double end = start + s.duration;
    if (now >= start && now < end && (!latest || end > *latest)) latest = end;
  }
  return latest;
}

MessageFate FaultInjector::fate(const std::string& from_host,
                                const std::string& to_host, double now,
                                bool is_reply) {
  MessageFate fate;
  const char* kind = is_reply ? "reply" : "request";
  const std::string hop = from_host + "->" + to_host;

  if (blocked(from_host, to_host, now)) {
    fate.action = MessageFate::Action::blocked;
    fate.heal_at = heal_time(from_host, to_host, now);
    ++blocks_;
    record(now, std::string("partition blocks ") + kind + " " + hop);
    return fate;
  }

  // Random decisions draw from the seeded stream in a fixed order (drop,
  // reset, duplicate, spike) so a plan toggling one probability leaves the
  // other draws aligned.
  auto draw = [&](double probability) {
    if (probability <= 0.0) return false;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
  };
  if (draw(plan_.drop_probability)) {
    fate.action = MessageFate::Action::drop;
    ++drops_;
    record(now, std::string("drop ") + kind + " " + hop);
    return fate;
  }
  if (draw(plan_.reset_probability)) {
    fate.action = MessageFate::Action::reset;
    ++resets_;
    record(now, std::string("reset ") + kind + " " + hop);
    return fate;
  }
  if (!is_reply && draw(plan_.duplicate_probability)) {
    fate.duplicate = true;
    ++duplicates_;
    record(now, std::string("duplicate ") + kind + " " + hop);
  }
  if (draw(plan_.latency_spike_probability)) {
    fate.extra_latency = plan_.latency_spike_s;
    ++spikes_;
    record(now, std::string("latency spike ") + kind + " " + hop);
  }
  return fate;
}

}  // namespace sim
