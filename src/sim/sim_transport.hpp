// Simulator transport: the ORB client transport that interposes the
// virtual cluster on every invocation.
//
// The invocation timeline of request -> reply becomes, in virtual time:
//
//   t0                 client sends (request transfer begins)
//   t0 + net(request)  request arrives; servant executes and reports work
//   ... host processor-shares the reported work with all resident tasks ...
//   t1                 work complete; reply transfer begins
//   t1 + net(reply)    reply available at the client
//
// Failure semantics mirror a real ORB: an unmapped or never-started
// endpoint yields COMM_FAILURE/completed_no after a connect delay; a host
// that crashes while the request is resident yields COMM_FAILURE/
// completed_maybe (the client cannot know whether the method ran) — exactly
// the exception the paper's proxy objects react to.
//
// SimPendingReply::get() pumps the event queue until its reply is due, so
// driver code written against the ordinary CORBA API (stubs, DII requests)
// runs unmodified under the simulator.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "orb/transport.hpp"
#include "sim/cluster.hpp"

namespace sim {

/// In-flight bookkeeping for one simulated client connection (one per
/// source/target endpoint pair), mirroring the real transport's multiplexed
/// connection: concurrent DII requests pipeline onto it and a dropped
/// message ("connection reset") fails *every* in-flight call on it, not just
/// the one whose message was lost.  Slots deregister themselves on
/// completion, so after a batch failure the connection is empty — the next
/// send starts fresh.  Keys are a local sequence (deterministic under the
/// virtual clock), not request ids, so duplicated deliveries stay keyed to
/// one entry.
struct SimConnection;

class SimTransport final : public corba::ClientTransport {
 public:
  /// `network` resolves endpoint names to object adapters (the same
  /// registry ordinary in-process ORBs use); `cluster` supplies hosts,
  /// virtual time and the network model.  `source_endpoint` identifies the
  /// sending node so cross-domain (WAN) messages are charged accordingly;
  /// empty means an external/local driver.  `request_timeout_s` bounds the
  /// virtual time a caller waits for a reply (0 = unbounded): expiry raises
  /// corba::TIMEOUT with COMPLETED_MAYBE, which is how hung or overloaded
  /// servers become recoverable failures.  `enable_sessions` mirrors the
  /// real transport's resumable sessions: a connection-reset fault then
  /// resumes (reconnect + frame replay, modelled as a deterministic latency
  /// penalty) instead of failing the batch.
  SimTransport(Cluster& cluster,
               std::shared_ptr<corba::InProcessNetwork> network,
               std::string source_endpoint = {},
               double request_timeout_s = 0,
               bool enable_sessions = false);

  std::unique_ptr<corba::PendingReply> send(
      const corba::IOR& target, corba::RequestMessage request) override;

 private:
  std::shared_ptr<SimConnection> connection_for(const std::string& endpoint);

  Cluster& cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::string source_endpoint_;
  double request_timeout_s_;
  bool enable_sessions_;
  /// One logical connection per target endpoint (ordered map: deterministic
  /// iteration under the simulator's determinism contract).
  std::map<std::string, std::shared_ptr<SimConnection>> connections_;
};

}  // namespace sim
