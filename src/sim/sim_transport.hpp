// Simulator transport: the ORB client transport that interposes the
// virtual cluster on every invocation.
//
// The invocation timeline of request -> reply becomes, in virtual time:
//
//   t0                 client sends (request transfer begins)
//   t0 + net(request)  request arrives; servant executes and reports work
//   ... host processor-shares the reported work with all resident tasks ...
//   t1                 work complete; reply transfer begins
//   t1 + net(reply)    reply available at the client
//
// Failure semantics mirror a real ORB: an unmapped or never-started
// endpoint yields COMM_FAILURE/completed_no after a connect delay; a host
// that crashes while the request is resident yields COMM_FAILURE/
// completed_maybe (the client cannot know whether the method ran) — exactly
// the exception the paper's proxy objects react to.
//
// SimPendingReply::get() pumps the event queue until its reply is due, so
// driver code written against the ordinary CORBA API (stubs, DII requests)
// runs unmodified under the simulator.
#pragma once

#include <memory>
#include <string>

#include "orb/transport.hpp"
#include "sim/cluster.hpp"

namespace sim {

class SimTransport final : public corba::ClientTransport {
 public:
  /// `network` resolves endpoint names to object adapters (the same
  /// registry ordinary in-process ORBs use); `cluster` supplies hosts,
  /// virtual time and the network model.  `source_endpoint` identifies the
  /// sending node so cross-domain (WAN) messages are charged accordingly;
  /// empty means an external/local driver.  `request_timeout_s` bounds the
  /// virtual time a caller waits for a reply (0 = unbounded): expiry raises
  /// corba::TIMEOUT with COMPLETED_MAYBE, which is how hung or overloaded
  /// servers become recoverable failures.
  SimTransport(Cluster& cluster,
               std::shared_ptr<corba::InProcessNetwork> network,
               std::string source_endpoint = {},
               double request_timeout_s = 0);

  std::unique_ptr<corba::PendingReply> send(
      const corba::IOR& target, corba::RequestMessage request) override;

 private:
  Cluster& cluster_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::string source_endpoint_;
  double request_timeout_s_;
};

}  // namespace sim
