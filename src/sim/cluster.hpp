// Simulated network of workstations.
//
// Substitutes the paper's 10-workstation Unix NOW (DESIGN.md §2): a set of
// processor-sharing Hosts sharing one virtual clock, a simple latency +
// bandwidth network model, a mapping from ORB endpoint names to hosts, and
// failure/background-load injection used by the experiments.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fault_injector.hpp"
#include "sim/host.hpp"

namespace sim {

/// Latency + bandwidth model of the network connecting the workstations.
/// LAN defaults approximate a switched 100 Mbit/s Ethernet of the paper's
/// era; the WAN figures model the inter-site links of the paper's §5
/// "CORBA based distributed/parallel meta-computing over the WWW" outlook
/// and apply between hosts assigned to different domains.
struct NetworkModel {
  double latency_s = 5e-4;               ///< intra-domain one-way latency
  double bandwidth_bytes_per_s = 1.0e7;  ///< intra-domain payload bandwidth
  double wan_latency_s = 3e-2;           ///< inter-domain one-way latency
  double wan_bandwidth_bytes_per_s = 1.0e6;  ///< inter-domain bandwidth

  /// One-way intra-domain transfer time of a message of `bytes` bytes.
  double transfer_time(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
  /// One-way inter-domain transfer time.
  double wan_transfer_time(std::size_t bytes) const noexcept {
    return wan_latency_s +
           static_cast<double>(bytes) / wan_bandwidth_bytes_per_s;
  }
};

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  EventQueue& events() noexcept { return events_; }
  const EventQueue& events() const noexcept { return events_; }
  NetworkModel& network() noexcept { return network_; }
  const NetworkModel& network() const noexcept { return network_; }

  /// Adds a workstation.  Throws on duplicate names.
  Host& add_host(const std::string& name, double speed,
                 int background_processes = 0);

  bool has_host(const std::string& name) const;
  /// Throws std::out_of_range for unknown hosts.
  Host& host(const std::string& name);
  const Host& host(const std::string& name) const;
  std::vector<std::string> host_names() const;
  std::size_t size() const noexcept { return hosts_.size(); }

  // --- endpoint mapping -----------------------------------------------------
  /// Declares that ORB endpoint `endpoint` runs on host `host_name`; the
  /// simulator transport charges that host for servant execution.
  void map_endpoint(const std::string& endpoint, const std::string& host_name);
  /// Returns the host for an endpoint, or nullptr when unmapped.
  Host* host_for_endpoint(const std::string& endpoint);
  /// Host name of an endpoint ("" when unmapped — e.g. external drivers).
  std::string host_name_for_endpoint(const std::string& endpoint) const;

  // --- fault injection --------------------------------------------------------
  /// Installs (or, with null, removes) the message-level fault injector the
  /// simulator transport consults.  Arming it mid-run is the usual pattern:
  /// deploy cleanly, then inject faults against the steady state.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    fault_injector_ = std::move(injector);
  }
  const std::shared_ptr<FaultInjector>& fault_injector() const noexcept {
    return fault_injector_;
  }

  // --- domains (WAN meta-computing) -----------------------------------------
  /// Assigns a host to a network domain (site).  Hosts without a domain
  /// assignment share one implicit domain.
  void set_host_domain(const std::string& host_name, const std::string& domain);
  /// Domain of a host ("" when unassigned).
  std::string domain_of(const std::string& host_name) const;

  /// One-way transfer time between two endpoints' hosts: the LAN model
  /// within one domain, the WAN model across domains.  Unknown endpoints
  /// (e.g. external drivers) count as local.
  double transfer_time(const std::string& from_endpoint,
                       const std::string& to_endpoint, std::size_t bytes) const;

  // --- experiment knobs -------------------------------------------------------
  /// Injects `processes` compute-bound background processes on a host.
  void set_background_load(const std::string& host_name, int processes);

  /// Crashes a host immediately / at an absolute virtual time.
  void crash_host(const std::string& host_name);
  void crash_host_at(Time t, const std::string& host_name);
  void restart_host(const std::string& host_name);

  /// Runs `work` units on `host_name` from driver code and pumps virtual
  /// time until it completes (models the manager process's own computation).
  /// Throws corba-agnostic std::runtime_error if the host dies first.
  void run_local_work(const std::string& host_name, double work);

 private:
  EventQueue events_;
  NetworkModel network_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, std::string> endpoint_to_host_;
  std::map<std::string, std::string> host_domain_;
  std::shared_ptr<FaultInjector> fault_injector_;
};

}  // namespace sim
