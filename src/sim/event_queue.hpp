// Virtual-time discrete-event queue.
//
// All headline experiments run in virtual time: one EventQueue per simulated
// cluster orders callbacks by timestamp and advances the clock only when an
// event fires.  The queue is deliberately reentrant — a running event may
// schedule new events and may even pump the queue recursively (this is how a
// synchronous CORBA call made from inside a servant completes in virtual
// time); time stays monotonic because pop happens before the callback runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

namespace sim {

/// Virtual time in seconds.
using Time = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// Schedules `cb` at absolute time `t`; clamped to now() if in the past.
  /// Events with equal timestamps fire in scheduling order.
  void schedule_at(Time t, Callback cb);

  /// Schedules `cb` `dt` seconds from now (dt clamped to >= 0).
  void schedule_after(Time dt, Callback cb);

  /// Timestamp of the earliest pending event (nothing when empty).
  std::optional<Time> next_time() const {
    if (events_.empty()) return std::nullopt;
    return events_.top().time;
  }

  /// Runs the earliest event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty.
  void run_until_idle();

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void run_until(Time t);

  /// Pumps events while `more()` returns true.  Returns true when the
  /// condition became false, false when the queue drained first.
  bool run_while(const std::function<bool()>& more);

  /// Total number of events executed (telemetry for the micro benchmark).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sim
