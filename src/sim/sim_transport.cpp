#include "sim/sim_transport.hpp"

#include <functional>
#include <optional>
#include <vector>

#include "obs/event_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/exceptions.hpp"
#include "orb/session.hpp"
#include "sim/work_meter.hpp"

namespace sim {

/// Shared completion slot between the transport events and the client-side
/// PendingReply handle.  First completion wins: a duplicated request's
/// second reply (or a late reply racing a failure) is discarded, exactly
/// like a client that already tore down the connection state.
struct ReplySlot {
  bool done = false;
  std::optional<corba::ReplyMessage> reply;
  std::exception_ptr error;
  /// Deregistration hook, fired exactly once on the first completion
  /// (erases this slot from its SimConnection's in-flight table).
  std::function<void()> on_settle;

  void complete(corba::ReplyMessage r) {
    if (done) return;
    reply = std::move(r);
    settle();
  }
  void fail(std::exception_ptr e) {
    if (done) return;
    error = std::move(e);
    settle();
  }

 private:
  void settle() {
    done = true;
    if (on_settle) {
      std::function<void()> hook = std::move(on_settle);
      on_settle = nullptr;
      hook();
    }
  }
};

/// See sim_transport.hpp.  Slots are keyed by a local sequence number so the
/// in-flight table iterates deterministically.
struct SimConnection {
  std::map<std::uint64_t, std::shared_ptr<ReplySlot>> inflight;
  std::uint64_t next_seq = 1;
};

namespace {

struct SimMuxMetrics {
  obs::Counter& pipelined = obs::MetricsRegistry::global().counter(
      "transport.sim.pipelined_total");
  obs::Counter& batch_failed = obs::MetricsRegistry::global().counter(
      "transport.sim.batched_failures_total");
  obs::Gauge& inflight =
      obs::MetricsRegistry::global().gauge("transport.sim.inflight");
};

SimMuxMetrics& sim_mux_metrics() {
  static SimMuxMetrics metrics;
  return metrics;
}

/// Registers a slot as in flight on `connection`; the slot deregisters
/// itself on its first completion, whatever completes it.
void track_slot(const std::shared_ptr<SimConnection>& connection,
                const std::shared_ptr<ReplySlot>& slot) {
  if (!connection->inflight.empty()) sim_mux_metrics().pipelined.inc();
  const std::uint64_t seq = connection->next_seq++;
  connection->inflight.emplace(seq, slot);
  sim_mux_metrics().inflight.add(1);
  slot->on_settle = [weak = std::weak_ptr<SimConnection>(connection), seq] {
    sim_mux_metrics().inflight.add(-1);
    if (auto connection = weak.lock()) connection->inflight.erase(seq);
  };
}

/// Connection-level failure: fails every call still in flight on the
/// connection with `error` (COMPLETED_MAYBE — their requests were on the
/// wire).  The triggering call must be failed with its own, more specific
/// error *before* calling this.  Mirrors the real transport's fail_all.
void fail_connection(const std::shared_ptr<SimConnection>& connection,
                     const std::exception_ptr& error) {
  if (connection->inflight.empty()) return;
  std::vector<std::shared_ptr<ReplySlot>> victims;
  victims.reserve(connection->inflight.size());
  for (const auto& [seq, slot] : connection->inflight)
    victims.push_back(slot);
  sim_mux_metrics().batch_failed.inc(victims.size());
  obs::flight_event(obs::FlightEvent::conn_close, "sim", victims.size());
  for (const auto& slot : victims) slot->fail(error);
  // Mirror the real transport: a batch failing together flushes the flight
  // recorder to any installed sink (deterministic under the virtual clock).
  if (victims.size() > 1) obs::flight_auto_dump("sim batched COMM_FAILURE");
}

class SimPendingReply final : public corba::PendingReply {
 public:
  /// `deadline` < 0 disables the request timeout.
  SimPendingReply(EventQueue& events, std::shared_ptr<ReplySlot> slot,
                  double deadline)
      : events_(events), slot_(std::move(slot)), deadline_(deadline) {}

  bool ready() override {
    return slot_->done || (deadline_ >= 0 && events_.now() >= deadline_);
  }

  /// Arms a "transport.roundtrip" span: the parent context is captured at
  /// send time (the pending handle may be collected under a different
  /// ambient span) and the span closes when get() observes completion.
  void arm_trace(std::string detail, double send_time,
                 obs::TraceContext parent) {
    traced_ = true;
    trace_detail_ = std::move(detail);
    send_time_ = send_time;
    trace_parent_ = parent;
  }

  corba::ReplyMessage get() override {
    // Pump virtual time until the reply (or its failure) is due, bounded by
    // the request deadline when one is set.
    if (deadline_ >= 0) {
      // Pump only events at or before the deadline: the virtual clock must
      // stop exactly at expiry, not at the next scheduled event beyond it.
      while (!slot_->done) {
        const std::optional<Time> next = events_.next_time();
        if (!next || *next > deadline_) break;
        events_.step();
      }
      if (!slot_->done) {
        events_.run_until(deadline_);
        finish_trace("timeout");
        // Abandon the call: settle the slot so it leaves the connection's
        // in-flight table (its late reply, if any, is then discarded —
        // first completion wins).  The connection itself stays usable.
        slot_->fail(std::make_exception_ptr(corba::TIMEOUT(
            "no reply within the request timeout",
            corba::minor_code::unspecified,
            corba::CompletionStatus::completed_maybe)));
        std::rethrow_exception(slot_->error);
      }
    } else {
      events_.run_while([this] { return !slot_->done; });
    }
    if (!slot_->done)
      throw corba::INTERNAL(
          "simulation deadlock: pending reply can never complete",
          corba::minor_code::unspecified,
          corba::CompletionStatus::completed_maybe);
    // The pump stops on the event that completed the slot, so now() is the
    // (virtual) completion time of the round trip.
    finish_trace(slot_->error ? "error" : "ok");
    if (slot_->error) std::rethrow_exception(slot_->error);
    return std::move(*slot_->reply);
  }

 private:
  void finish_trace(std::string_view outcome) {
    if (!traced_) return;
    traced_ = false;
    obs::record_span("transport.roundtrip",
                     trace_detail_ + " " + std::string(outcome), send_time_,
                     events_.now(), trace_parent_);
  }

  EventQueue& events_;
  std::shared_ptr<ReplySlot> slot_;
  double deadline_;
  bool traced_ = false;
  std::string trace_detail_;
  double send_time_ = 0.0;
  obs::TraceContext trace_parent_;
};

std::exception_ptr comm_failure(const std::string& detail, std::uint32_t minor,
                                corba::CompletionStatus completed) {
  return std::make_exception_ptr(corba::COMM_FAILURE(detail, minor, completed));
}

/// Everything the in-flight message events need, copyable so deferred
/// callbacks (stall retries, duplicate deliveries) never dangle on the
/// transport object.  The Cluster outlives its event queue, so the pointer
/// stays valid for every scheduled callback.
struct HopContext {
  Cluster* cluster;
  std::shared_ptr<corba::InProcessNetwork> network;
  std::string source_endpoint;
  /// The client connection this call is pipelined on; connection-level
  /// faults (drops = connection reset) fail every call in flight on it.
  std::shared_ptr<SimConnection> connection;
  /// Resumable sessions enabled: a reset fault resumes instead of failing.
  bool sessions = false;
};

/// Deterministic cost of one session resume: the reconnect round trip plus
/// the hello/accept handshake plus the replayed frame's transfer, modelled
/// as three extra one-way latencies on top of the normal transfer time.
double resume_penalty(const Cluster& cluster) {
  return 3.0 * cluster.network().latency_s;
}

void send_reply(const HopContext& ctx, std::shared_ptr<ReplySlot> slot,
                const std::string& server_host,
                const std::string& server_endpoint, corba::ReplyMessage reply) {
  EventQueue& events = ctx.cluster->events();
  double transfer = ctx.cluster->transfer_time(
      server_endpoint, ctx.source_endpoint, reply.encoded_size_estimate());
  if (FaultInjector* faults = ctx.cluster->fault_injector().get()) {
    const std::string client_host =
        ctx.cluster->host_name_for_endpoint(ctx.source_endpoint);
    const MessageFate fate =
        faults->fate(server_host, client_host, events.now(), /*is_reply=*/true);
    switch (fate.action) {
      case MessageFate::Action::drop:
        // The method ran; its reply is gone — the canonical COMPLETED_MAYBE.
        // The reset tears down the whole connection, so every other call
        // pipelined on it fails with it.
        events.schedule_after(
            transfer, [slot, server_host, connection = ctx.connection] {
              slot->fail(comm_failure(
                  "reply from " + server_host + " lost (connection reset)",
                  corba::minor_code::connection_lost,
                  corba::CompletionStatus::completed_maybe));
              fail_connection(
                  connection,
                  comm_failure("connection to " + server_host +
                                   " reset while this call was in flight",
                               corba::minor_code::connection_lost,
                               corba::CompletionStatus::completed_maybe));
            });
        return;
      case MessageFate::Action::reset:
        if (!ctx.sessions) {
          // Sessions off: a reset is indistinguishable from a lost reply —
          // the whole connection fails in a batch, exactly like drop.
          events.schedule_after(
              transfer, [slot, server_host, connection = ctx.connection] {
                slot->fail(comm_failure(
                    "reply from " + server_host + " lost (connection reset)",
                    corba::minor_code::connection_lost,
                    corba::CompletionStatus::completed_maybe));
                fail_connection(
                    connection,
                    comm_failure("connection to " + server_host +
                                     " reset while this call was in flight",
                                 corba::minor_code::connection_lost,
                                 corba::CompletionStatus::completed_maybe));
              });
          return;
        }
        // Resumable session: the client reconnects with its session id and
        // the server replays the unacknowledged reply frame — the call
        // completes exactly-once, just later by the resume penalty.  No
        // other call on the connection is disturbed.
        {
          corba::SessionMetrics& session = corba::session_metrics();
          session.resumes.inc();
          session.replayed_replies.inc();
          obs::flight_event(obs::FlightEvent::session_resume, server_host, 0,
                            1);
          if (obs::events_wanted()) {
            obs::publish_event(obs::Topic::session_state,
                               /*host=*/server_host, /*key=*/server_host,
                               {obs::str_field("state", "resumed"),
                                obs::int_field("frames", 1)});
          }
        }
        transfer += resume_penalty(*ctx.cluster);
        break;
      case MessageFate::Action::blocked:
        if (!fate.heal_at) {
          events.schedule_after(transfer, [slot, server_host] {
            slot->fail(comm_failure(
                "reply from " + server_host + " cut off by a partition",
                corba::minor_code::connection_lost,
                corba::CompletionStatus::completed_maybe));
          });
          return;
        }
        // TCP holds the reply and retransmits once the partition heals.
        transfer += *fate.heal_at - events.now();
        break;
      case MessageFate::Action::deliver:
        break;
    }
    transfer += fate.extra_latency;
  }
  events.schedule_after(transfer, [slot, reply = std::move(reply)]() mutable {
    slot->complete(corba::roundtrip_through_cdr(reply));
  });
}

void dispatch_request(HopContext ctx, std::shared_ptr<ReplySlot> slot,
                      std::string endpoint, std::string host_name,
                      corba::RequestMessage request) {
  Host& host = ctx.cluster->host(host_name);
  if (!host.alive()) {
    slot->fail(comm_failure("host " + host_name + " is down",
                            corba::minor_code::host_down,
                            corba::CompletionStatus::completed_no));
    return;
  }
  // A stalled host is alive but makes no progress: the request sits in its
  // socket buffer until the stall ends (the caller's request timeout, if
  // any, turns the wait into corba::TIMEOUT).
  if (FaultInjector* faults = ctx.cluster->fault_injector().get()) {
    if (const std::optional<double> until =
            faults->stall_end(host_name, ctx.cluster->events().now())) {
      faults->note_stall_deferral();
      ctx.cluster->events().schedule_at(
          *until, [ctx, slot = std::move(slot), endpoint = std::move(endpoint),
                   host_name = std::move(host_name),
                   request = std::move(request)]() mutable {
            dispatch_request(std::move(ctx), std::move(slot),
                             std::move(endpoint), std::move(host_name),
                             std::move(request));
          });
      return;
    }
  }
  std::shared_ptr<corba::ObjectAdapter> adapter = ctx.network->find(endpoint);
  if (!adapter) {
    // Host is up but no server process bound to the endpoint (e.g. the ORB
    // shut down): connection refused.
    slot->fail(comm_failure("no server at endpoint '" + endpoint + "'",
                            corba::minor_code::connect_failed,
                            corba::CompletionStatus::completed_no));
    return;
  }
  // Execute the servant, collecting the work it reports; round-trip
  // through CDR so marshaling is exercised exactly as on a wire.
  corba::ReplyMessage reply;
  double work = 0.0;
  const bool response_expected = request.response_expected;
  try {
    corba::RequestMessage wire = corba::roundtrip_through_cdr(request);
    WorkScope scope;
    reply = adapter->dispatch(wire);
    work = scope.consumed();
  } catch (...) {
    slot->fail(std::current_exception());
    return;
  }
  // Busy the host for the reported work; the reply leaves afterwards.
  host.submit(
      work,
      [ctx = std::move(ctx), slot, endpoint, host_name,
       reply = std::move(reply), response_expected]() mutable {
        if (!response_expected) {
          slot->complete(corba::ReplyMessage::make_result(0, {}));
          return;
        }
        send_reply(ctx, std::move(slot), host_name, endpoint,
                   std::move(reply));
      },
      [slot, host_name] {
        slot->fail(
            comm_failure("host " + host_name + " crashed during the call",
                         corba::minor_code::server_crashed,
                         corba::CompletionStatus::completed_maybe));
      });
}

}  // namespace

std::shared_ptr<SimConnection> SimTransport::connection_for(
    const std::string& endpoint) {
  auto [it, inserted] = connections_.try_emplace(endpoint);
  if (inserted) it->second = std::make_shared<SimConnection>();
  return it->second;
}

SimTransport::SimTransport(Cluster& cluster,
                           std::shared_ptr<corba::InProcessNetwork> network,
                           std::string source_endpoint,
                           double request_timeout_s, bool enable_sessions)
    : cluster_(cluster),
      network_(std::move(network)),
      source_endpoint_(std::move(source_endpoint)),
      request_timeout_s_(request_timeout_s),
      enable_sessions_(enable_sessions) {
  if (!network_) throw corba::BAD_PARAM("SimTransport requires a network");
  if (request_timeout_s < 0) throw corba::BAD_PARAM("negative request timeout");
}

std::unique_ptr<corba::PendingReply> SimTransport::send(
    const corba::IOR& target, corba::RequestMessage request) {
  auto slot = std::make_shared<ReplySlot>();
  EventQueue& events = cluster_.events();
  const double deadline =
      request_timeout_s_ > 0 ? events.now() + request_timeout_s_ : -1.0;
  // Captured up front: the final schedule_after() moves `request` away
  // before the pending handle is constructed.
  const std::string trace_detail =
      obs::tracing_enabled() ? request.operation + " -> " + target.host
                             : std::string();
  auto pending = [&] {
    auto reply = std::make_unique<SimPendingReply>(events, slot, deadline);
    if (obs::tracing_enabled())
      reply->arm_trace(trace_detail, events.now(), obs::current_trace());
    return reply;
  };

  Host* host = cluster_.host_for_endpoint(target.host);
  if (host == nullptr) {
    // Endpoint never registered with the cluster: immediate addressing
    // failure, nothing was sent.
    slot->fail(comm_failure("endpoint '" + target.host + "' not in cluster",
                            corba::minor_code::endpoint_unknown,
                            corba::CompletionStatus::completed_no));
    return pending();
  }

  double request_transfer = cluster_.transfer_time(
      source_endpoint_, target.host, request.encoded_size_estimate());
  const std::string endpoint = target.host;
  const std::string host_name = host->name();
  std::shared_ptr<SimConnection> connection = connection_for(endpoint);
  HopContext ctx{&cluster_, network_, source_endpoint_, connection,
                 enable_sessions_};

  bool duplicate = false;
  if (FaultInjector* faults = cluster_.fault_injector().get()) {
    const std::string source_host =
        cluster_.host_name_for_endpoint(source_endpoint_);
    const MessageFate fate =
        faults->fate(source_host, host_name, events.now(), /*is_reply=*/false);
    switch (fate.action) {
      case MessageFate::Action::blocked:
        // Unreachable peer: the connect attempt fails at the sender after
        // the one-way latency.  TRANSIENT (not COMM_FAILURE): the path may
        // heal, and nothing of the request ever left this side.
        events.schedule_after(cluster_.network().latency_s, [slot, host_name] {
          slot->fail(std::make_exception_ptr(corba::TRANSIENT(
              "host " + host_name + " unreachable (network partition)",
              corba::minor_code::connect_failed,
              corba::CompletionStatus::completed_no)));
        });
        return pending();
      case MessageFate::Action::drop:
        // Connection reset: this request never reached the peer
        // (COMPLETED_NO), but the reset also kills every *other* call
        // pipelined on the connection — those were sent (COMPLETED_MAYBE).
        track_slot(connection, slot);
        events.schedule_after(request_transfer, [slot, host_name, connection] {
          slot->fail(comm_failure(
              "request to " + host_name + " lost (connection reset)",
              corba::minor_code::connection_lost,
              corba::CompletionStatus::completed_no));
          fail_connection(
              connection,
              comm_failure("connection to " + host_name +
                               " reset while this call was in flight",
                           corba::minor_code::connection_lost,
                           corba::CompletionStatus::completed_maybe));
        });
        return pending();
      case MessageFate::Action::reset:
        if (!enable_sessions_) {
          // Sessions off: indistinguishable from a drop — this request is
          // lost (COMPLETED_NO) and the reset batch-fails the connection.
          track_slot(connection, slot);
          events.schedule_after(
              request_transfer, [slot, host_name, connection] {
                slot->fail(comm_failure(
                    "request to " + host_name + " lost (connection reset)",
                    corba::minor_code::connection_lost,
                    corba::CompletionStatus::completed_no));
                fail_connection(
                    connection,
                    comm_failure("connection to " + host_name +
                                     " reset while this call was in flight",
                                 corba::minor_code::connection_lost,
                                 corba::CompletionStatus::completed_maybe));
              });
          return pending();
        }
        // Resumable session: the reset severs the connection with the
        // request frame unacknowledged; the client reconnects with its
        // session id and retransmits it, so the servant sees the call
        // exactly once after the resume penalty.  Pipelined neighbours are
        // untouched.
        {
          corba::SessionMetrics& session = corba::session_metrics();
          session.resumes.inc();
          session.retransmitted.inc();
          obs::flight_event(obs::FlightEvent::session_resume, host_name, 0, 1);
          if (obs::events_wanted()) {
            obs::publish_event(obs::Topic::session_state, /*host=*/host_name,
                               /*key=*/host_name,
                               {obs::str_field("state", "resumed"),
                                obs::int_field("frames", 1)});
          }
        }
        request_transfer += resume_penalty(cluster_);
        break;
      case MessageFate::Action::deliver:
        break;
    }
    request_transfer += fate.extra_latency;
    duplicate = fate.duplicate;
  }

  // The request is on the connection from here on: it participates in
  // pipelining and shares the connection's fate.
  track_slot(connection, slot);

  // Request arrives at the server after the transfer delay.  A duplicated
  // request arrives (and executes) twice; the slot keeps the first reply.
  if (duplicate) {
    events.schedule_after(request_transfer,
                          [ctx, slot, endpoint, host_name, request] {
                            dispatch_request(ctx, slot, endpoint, host_name,
                                             request);
                          });
  }
  events.schedule_after(
      request_transfer,
      [ctx = std::move(ctx), slot, endpoint, host_name,
       request = std::move(request)]() mutable {
        dispatch_request(std::move(ctx), std::move(slot), std::move(endpoint),
                         std::move(host_name), std::move(request));
      });

  return pending();
}

}  // namespace sim
