#include "sim/sim_transport.hpp"

#include <optional>

#include "orb/exceptions.hpp"
#include "sim/work_meter.hpp"

namespace sim {

namespace {

/// Shared completion slot between the transport events and the client-side
/// PendingReply handle.
struct ReplySlot {
  bool done = false;
  std::optional<corba::ReplyMessage> reply;
  std::exception_ptr error;

  void complete(corba::ReplyMessage r) {
    reply = std::move(r);
    done = true;
  }
  void fail(std::exception_ptr e) {
    error = std::move(e);
    done = true;
  }
};

class SimPendingReply final : public corba::PendingReply {
 public:
  /// `deadline` < 0 disables the request timeout.
  SimPendingReply(EventQueue& events, std::shared_ptr<ReplySlot> slot,
                  double deadline)
      : events_(events), slot_(std::move(slot)), deadline_(deadline) {}

  bool ready() override {
    return slot_->done ||
           (deadline_ >= 0 && events_.now() >= deadline_);
  }

  corba::ReplyMessage get() override {
    // Pump virtual time until the reply (or its failure) is due, bounded by
    // the request deadline when one is set.
    if (deadline_ >= 0) {
      // Pump only events at or before the deadline: the virtual clock must
      // stop exactly at expiry, not at the next scheduled event beyond it.
      while (!slot_->done) {
        const std::optional<Time> next = events_.next_time();
        if (!next || *next > deadline_) break;
        events_.step();
      }
      if (!slot_->done) {
        events_.run_until(deadline_);
        throw corba::TIMEOUT("no reply within the request timeout",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_maybe);
      }
    } else {
      events_.run_while([this] { return !slot_->done; });
    }
    if (!slot_->done)
      throw corba::INTERNAL(
          "simulation deadlock: pending reply can never complete",
          corba::minor_code::unspecified,
          corba::CompletionStatus::completed_maybe);
    if (slot_->error) std::rethrow_exception(slot_->error);
    return std::move(*slot_->reply);
  }

 private:
  EventQueue& events_;
  std::shared_ptr<ReplySlot> slot_;
  double deadline_;
};

std::exception_ptr comm_failure(const std::string& detail, std::uint32_t minor,
                                corba::CompletionStatus completed) {
  return std::make_exception_ptr(corba::COMM_FAILURE(detail, minor, completed));
}

}  // namespace

SimTransport::SimTransport(Cluster& cluster,
                           std::shared_ptr<corba::InProcessNetwork> network,
                           std::string source_endpoint,
                           double request_timeout_s)
    : cluster_(cluster),
      network_(std::move(network)),
      source_endpoint_(std::move(source_endpoint)),
      request_timeout_s_(request_timeout_s) {
  if (!network_) throw corba::BAD_PARAM("SimTransport requires a network");
  if (request_timeout_s < 0)
    throw corba::BAD_PARAM("negative request timeout");
}

std::unique_ptr<corba::PendingReply> SimTransport::send(
    const corba::IOR& target, corba::RequestMessage request) {
  auto slot = std::make_shared<ReplySlot>();
  EventQueue& events = cluster_.events();
  const double deadline =
      request_timeout_s_ > 0 ? events.now() + request_timeout_s_ : -1.0;

  Host* host = cluster_.host_for_endpoint(target.host);
  if (host == nullptr) {
    // Endpoint never registered with the cluster: immediate addressing
    // failure, nothing was sent.
    slot->fail(comm_failure("endpoint '" + target.host + "' not in cluster",
                            corba::minor_code::endpoint_unknown,
                            corba::CompletionStatus::completed_no));
    return std::make_unique<SimPendingReply>(events, slot, deadline);
  }

  const double request_transfer = cluster_.transfer_time(
      source_endpoint_, target.host, request.encoded_size_estimate());
  const std::string endpoint = target.host;
  const std::string host_name = host->name();

  // Request arrives at the server after the transfer delay.
  events.schedule_after(
      request_transfer,
      [this, slot, endpoint, host_name, request = std::move(request)] {
        Host& host = cluster_.host(host_name);
        if (!host.alive()) {
          slot->fail(comm_failure("host " + host_name + " is down",
                                  corba::minor_code::host_down,
                                  corba::CompletionStatus::completed_no));
          return;
        }
        std::shared_ptr<corba::ObjectAdapter> adapter = network_->find(endpoint);
        if (!adapter) {
          // Host is up but no server process bound to the endpoint (e.g.
          // the ORB shut down): connection refused.
          slot->fail(comm_failure("no server at endpoint '" + endpoint + "'",
                                  corba::minor_code::connect_failed,
                                  corba::CompletionStatus::completed_no));
          return;
        }
        // Execute the servant, collecting the work it reports; round-trip
        // through CDR so marshaling is exercised exactly as on a wire.
        corba::ReplyMessage reply;
        double work = 0.0;
        const bool response_expected = request.response_expected;
        try {
          corba::RequestMessage wire = corba::roundtrip_through_cdr(request);
          WorkScope scope;
          reply = adapter->dispatch(wire);
          work = scope.consumed();
        } catch (...) {
          slot->fail(std::current_exception());
          return;
        }
        const double reply_transfer = cluster_.transfer_time(
            endpoint, source_endpoint_, reply.encoded_size_estimate());
        // Busy the host for the reported work; the reply leaves afterwards.
        host.submit(
            work,
            [this, slot, reply = std::move(reply), reply_transfer,
             response_expected]() mutable {
              if (!response_expected) {
                slot->complete(corba::ReplyMessage::make_result(0, {}));
                return;
              }
              cluster_.events().schedule_after(
                  reply_transfer, [slot, reply = std::move(reply)]() mutable {
                    slot->complete(corba::roundtrip_through_cdr(reply));
                  });
            },
            [slot, host_name] {
              slot->fail(comm_failure(
                  "host " + host_name + " crashed during the call",
                  corba::minor_code::server_crashed,
                  corba::CompletionStatus::completed_maybe));
            });
      });

  return std::make_unique<SimPendingReply>(events, slot, deadline);
}

}  // namespace sim
