#include "sim/host.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sim {

namespace {
// Remaining work at or below this is considered finished.  Settling computes
// progress = dt * rate with dt = min_remaining / rate, so the residue is a
// few ulps of the task size; for task sizes up to ~1e9 work units that is
// well below 1e-6.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

Host::Host(EventQueue& events, std::string name, double speed,
           int background_processes)
    : events_(events),
      name_(std::move(name)),
      speed_(speed),
      background_(background_processes) {
  if (!(speed > 0)) throw std::invalid_argument("host speed must be positive");
  if (background_processes < 0)
    throw std::invalid_argument("background process count must be >= 0");
}

double Host::rate() const noexcept {
  const std::size_t sharers = tasks_.size() + static_cast<std::size_t>(background_);
  if (sharers == 0) return speed_;
  return speed_ / static_cast<double>(sharers);
}

void Host::settle() {
  const Time now = events_.now();
  if (now > last_settle_ && !tasks_.empty()) {
    const double progress = (now - last_settle_) * rate();
    for (Task& task : tasks_) task.remaining -= progress;
  }
  last_settle_ = now;
}

void Host::reschedule() {
  ++epoch_;
  if (tasks_.empty() || !alive_) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Task& task : tasks_)
    min_remaining = std::min(min_remaining, task.remaining);
  const double dt = std::max(0.0, min_remaining) / rate();
  const std::uint64_t epoch = epoch_;
  events_.schedule_after(dt, [this, epoch] { on_completion_event(epoch); });
}

void Host::on_completion_event(std::uint64_t epoch) {
  if (epoch != epoch_ || !alive_) return;  // superseded by a later change
  settle();
  std::vector<std::function<void()>> finished;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->remaining <= kWorkEpsilon) {
      finished.push_back(std::move(it->on_done));
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  // Completion callbacks run after the host state is consistent: they may
  // submit follow-up work or pump the event queue.
  for (auto& cb : finished) {
    if (cb) cb();
  }
}

void Host::submit(double work, std::function<void()> on_done,
                  std::function<void()> on_failed) {
  if (work < 0) throw std::invalid_argument("negative work");
  if (!alive_) {
    if (on_failed) events_.schedule_after(0, std::move(on_failed));
    return;
  }
  settle();
  completed_work_ += work;  // counted on acceptance; crash telemetry is rare
  tasks_.push_back(Task{next_task_id_++, work, std::move(on_done),
                        std::move(on_failed)});
  reschedule();
}

void Host::set_background_processes(int n) {
  if (n < 0) throw std::invalid_argument("background process count must be >= 0");
  settle();
  background_ = n;
  reschedule();
}

void Host::crash() {
  if (!alive_) return;
  settle();
  alive_ = false;
  ++epoch_;  // cancel any scheduled completion
  std::vector<std::function<void()>> failures;
  for (Task& task : tasks_) {
    completed_work_ -= task.remaining;  // undo optimistic accounting
    if (task.on_failed) failures.push_back(std::move(task.on_failed));
  }
  tasks_.clear();
  for (auto& cb : failures) cb();
}

void Host::restart() {
  if (alive_) return;
  alive_ = true;
  last_settle_ = events_.now();
  ++epoch_;
}

}  // namespace sim
