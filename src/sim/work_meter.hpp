// Work metering: how servants report compute cost to the simulator.
//
// Application code calls WorkMeter::charge(units) while it computes (e.g.
// the Complex Box worker charges per objective evaluation).  When the call
// was dispatched by the simulator transport, an active WorkScope collects
// the units and the target host is then busied for consumed/rate virtual
// seconds.  Outside the simulator (real TCP deployments) there is no active
// scope and charge() is a no-op — application code is identical in both
// modes.
#pragma once

namespace sim {

class WorkMeter {
 public:
  /// Adds `units` of abstract work to the innermost active scope, if any.
  static void charge(double units) noexcept;

  /// True while some scope is collecting (i.e. running under the simulator).
  static bool active() noexcept;
};

/// RAII collector for the work charged during a servant dispatch.  Scopes
/// nest: each scope collects only charges made while it is innermost, so a
/// nested dispatch on another host is billed to that host alone.
class WorkScope {
 public:
  WorkScope() noexcept;
  ~WorkScope();
  WorkScope(const WorkScope&) = delete;
  WorkScope& operator=(const WorkScope&) = delete;

  double consumed() const noexcept { return consumed_; }

 private:
  friend class WorkMeter;
  double consumed_ = 0.0;
  WorkScope* previous_;
};

}  // namespace sim
