#include "core/sim_runtime.hpp"

#include "winner/placement.hpp"

#include "obs/event_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace rt {

SimRuntime::SimRuntime(sim::Cluster& cluster, RuntimeOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  worker_hosts_ = cluster_.host_names();
  if (worker_hosts_.empty())
    throw corba::BAD_PARAM("SimRuntime requires a non-empty cluster");

  // Observability runs on virtual time while this runtime lives: spans and
  // timeline events are stamped from the cluster's event queue, and span ids
  // restart from the run's seed — two same-seed runs therefore produce
  // byte-identical trace and timeline dumps.
  obs_clock_token_ =
      obs::set_clock([&events = cluster_.events()] { return events.now(); });
  obs::set_trace_seed(options_.seed);
  // The always-on flight recorder is part of the same determinism contract:
  // starting every run from an empty ring (and the sim being single-driver)
  // makes same-seed chaos runs render byte-identical flight dumps.
  obs::FlightRecorder::global().clear();
  // The push telemetry plane rides the same contract: the runtime owns the
  // process-global event channel for its lifetime and binds it to the
  // virtual clock — deliveries are scheduled events, so a same-seed run
  // renders a byte-identical event stream.  Sequence numbers restart from
  // zero with the run (reset()).
  obs::EventChannel::global().reset();
  obs::EventChannel::global().bind(
      {.defer = [&events = cluster_.events()](double delay,
                                              std::function<void()> fn) {
        events.schedule_after(delay, std::move(fn));
      }});
  if (options_.metrics_epoch > 0) {
    metrics_publisher_ = std::make_unique<obs::MetricsDeltaPublisher>(
        obs::MetricsDeltaPublisher::Options{
            // Empty host: under the in-process simulator the metric
            // substrate is process-wide, and consumers (orbtop push mode)
            // apply host-less deltas to every row.
            .host = "", .epoch = options_.metrics_epoch});
    metrics_publisher_->start_deferred(
        [&events = cluster_.events()](double delay, std::function<void()> fn) {
          events.schedule_after(delay, std::move(fn));
        });
  }

  network_ = std::make_shared<corba::InProcessNetwork>();

  // Dedicated infrastructure workstation: hosts naming, Winner and the
  // checkpoint store, but never competes for application placement (it is
  // not registered with the system manager).
  cluster_.add_host(names::kInfraHost, options_.infra_speed);
  // Each ORB gets its own simulator transport carrying its endpoint as the
  // message source, so cross-domain (WAN) traffic is charged correctly.
  auto make_orb = [&](const std::string& endpoint) {
    cluster_.map_endpoint(endpoint, endpoint == "client" ? names::kInfraHost
                                                         : endpoint);
    auto orb = corba::ORB::init(
        {.endpoint_name = endpoint,
         .network = network_,
         .client_transport_override = std::make_shared<sim::SimTransport>(
             cluster_, network_, endpoint, options_.request_timeout,
             options_.enable_sessions),
         .adapter_id = ++next_adapter_id_});
    return orb;
  };
  const bool hierarchical = !options_.host_domains.empty();
  if (hierarchical) {
    if (options_.home_domain.empty())
      throw corba::BAD_PARAM("host_domains requires a home_domain");
    for (const auto& [host, domain] : options_.host_domains)
      cluster_.set_host_domain(host, domain);
    cluster_.set_host_domain(names::kInfraHost, options_.home_domain);
  }

  infra_orb_ = make_orb(names::kInfraHost);
  client_orb_ = make_orb("client");

  // Winner: one central system manager, or (hierarchical mode) one per site
  // federated by a MetaSystemManager with the WAN placement penalty.
  const winner::SystemManagerOptions manager_options{
      .stale_after = options_.winner_stale_after,
      .clock = [this] { return cluster_.events().now(); },
      .demote_stale_hosts = options_.demote_stale_hosts};
  if (hierarchical) {
    auto meta = std::make_shared<winner::MetaSystemManager>(
        winner::MetaManagerOptions{.home_domain = options_.home_domain,
                                   .remote_penalty =
                                       options_.wan_remote_penalty});
    for (const auto& [host, domain] : options_.host_domains) {
      if (site_managers_.count(domain)) continue;
      auto site = std::make_shared<winner::SystemManager>(manager_options);
      site_managers_[domain] = site;
      meta->add_domain(domain, site);
      site_manager_refs_[domain] = infra_orb_->activate(
          std::make_shared<winner::SystemManagerServant>(site),
          "SystemManager-" + domain);
    }
    load_info_ = meta;
    winner_ref_ = site_manager_refs_.at(options_.home_domain);
  } else {
    winner_impl_ = std::make_shared<winner::SystemManager>(manager_options);
    load_info_ = winner_impl_;
    winner_ref_ = infra_orb_->activate(
        std::make_shared<winner::SystemManagerServant>(winner_impl_),
        "SystemManager");
  }

  if (options_.enable_quarantine)
    quarantine_ =
        std::make_shared<ft::OfferQuarantine>(options_.quarantine_options);

  // Load-distributing naming service wired to Winner (Fig. 1).
  naming::NamingContextOptions naming_options;
  naming_options.default_strategy = options_.naming_strategy;
  naming_options.winner = load_info_;
  naming_options.random_seed = options_.seed;
  if (quarantine_)
    naming_options.offer_filter = [q = quarantine_, cluster = &cluster_](
                                      const naming::Name& name,
                                      const naming::Offer& offer) {
      return !q->quarantined(name.to_string(), offer.host,
                             cluster->events().now());
    };
  auto [naming_servant, naming_ref] =
      naming::NamingContextServant::create_root(infra_orb_, naming_options);
  naming_servant_ = naming_servant;
  naming_ref_ = naming_ref;

  // Checkpoint storage service (the paper's unoptimized prototype).
  checkpoint_backend_ =
      std::make_shared<ft::MemoryCheckpointStore>(options_.checkpoint_cost);
  store_ref_ = infra_orb_->activate(
      std::make_shared<ft::CheckpointStoreServant>(checkpoint_backend_),
      "CheckpointStore");

  registry_ = std::make_shared<ft::ServantFactoryRegistry>();

  // Per-workstation server process: ORB + node manager + service factory.
  naming::NamingContextStub root(infra_orb_->make_ref(naming_ref_.ior()));
  root.bind_new_context(naming::Name::parse(names::kFactoriesContext));
  for (const std::string& host : worker_hosts_) {
    Node node;
    node.host = host;
    node.orb = make_orb(host);
    // Register with the (site) system manager; node managers report to
    // their own site's manager, as a WAN deployment would.
    corba::ObjectRef site_ref = winner_ref_;
    if (hierarchical) {
      const std::string domain = cluster_.domain_of(host);
      auto meta =
          std::static_pointer_cast<winner::MetaSystemManager>(load_info_);
      meta->register_host(domain + "/" + host, cluster_.host(host).speed());
      site_ref = site_manager_refs_.at(domain);
    } else {
      winner_impl_->register_host(host, cluster_.host(host).speed());
    }
    auto manager_stub = std::make_shared<winner::SystemManagerStub>(
        node.orb->make_ref(site_ref.ior()));
    node.node_manager = std::make_unique<winner::NodeManager>(
        host, std::make_shared<winner::SimHostSensor>(cluster_.host(host)),
        manager_stub, options_.report_period);
    if (options_.start_node_managers)
      node.node_manager->start_simulated(cluster_.events());
    node.factory_ref = node.orb->activate(
        std::make_shared<ft::ServiceFactoryServant>(node.orb, host, registry_),
        "Factory");
    root.bind(naming::Name::parse(names::kFactoriesContext).append(host),
              node.factory_ref);

    // In-band introspection: every node's telemetry object, reachable under
    // the reserved `_obs/<host>` path even while the host is quarantined.
    obs::TelemetryOptions telemetry;
    telemetry.host = host;
    std::shared_ptr<winner::SystemManager> site_manager =
        hierarchical ? site_managers_.at(cluster_.domain_of(host))
                     : winner_impl_;
    telemetry.report_age = [this, site_manager, host]() -> double {
      try {
        return cluster_.events().now() -
               site_manager->last_sample(host).timestamp;
      } catch (const std::out_of_range&) {
        return -1.0;  // never reported yet
      }
    };
    telemetry.load_index = [this, host]() -> double {
      try {
        return load_info_->host_index(host);
      } catch (...) {
        return -1.0;
      }
    };
    if (quarantine_)
      telemetry.quarantined = [this]() -> std::uint64_t {
        return quarantine_->active(cluster_.events().now());
      };
    telemetry.dispatch_queue_depth = [orb = node.orb]() -> std::uint64_t {
      const corba::DispatchPool* pool = orb->adapter().dispatch_pool();
      return pool ? pool->depth() : 0;
    };
    obs::install_telemetry(node.orb, root, std::move(telemetry));
    nodes_.push_back(std::move(node));
  }

  // Sharded checkpoint store: shard primaries on the least-loaded worker
  // hosts (distinct per replica set), each asynchronously replicating every
  // acknowledged write to its followers.  The central servant above stays
  // up regardless; with shards deployed, checkpoint_store() routes to them.
  if (options_.checkpoint_shards > 0) {
    const std::size_t replicas =
        std::max<std::size_t>(1, options_.checkpoint_replicas);
    const winner::PlacementPlan plan = winner::plan_shard_placements(
        *load_info_, worker_hosts_, options_.checkpoint_shards, replicas);
    for (std::size_t shard = 0; shard < plan.shard_hosts.size(); ++shard) {
      const std::vector<std::string>& hosts = plan.shard_hosts[shard];
      std::vector<corba::ObjectRef> refs(hosts.size());
      // Followers first — the primary's forwarder needs their references.
      for (std::size_t r = 1; r < hosts.size(); ++r) {
        refs[r] = node_orb(hosts[r])->activate(
            std::make_shared<ft::CheckpointStoreServant>(
                std::make_shared<ft::MemoryCheckpointStore>(
                    options_.checkpoint_cost)),
            "CheckpointShard-" + std::to_string(shard) + "-r" +
                std::to_string(r));
      }
      ft::ReplicatingStore::Options replication;
      for (std::size_t r = 1; r < hosts.size(); ++r) {
        // Follower stubs minted from the *primary's* ORB: forwards travel
        // primary host -> follower host over the virtual network.
        replication.followers.push_back(
            std::make_shared<ft::CheckpointStoreStub>(
                node_orb(hosts[0])->make_ref(refs[r].ior())));
      }
      replication.defer = [this](std::function<void()> fn) {
        cluster_.events().schedule_after(0.0, std::move(fn));
      };
      replication.shard_label = "shard-" + std::to_string(shard);
      replication.host = hosts[0];
      replication.shard_id = shard;
      auto primary = std::make_shared<ft::ReplicatingStore>(
          std::make_shared<ft::MemoryCheckpointStore>(
              options_.checkpoint_cost),
          std::move(replication));
      refs[0] = node_orb(hosts[0])->activate(
          std::make_shared<ft::CheckpointStoreServant>(primary),
          "CheckpointShard-" + std::to_string(shard));
      shard_primaries_.push_back(std::move(primary));
      shard_refs_.push_back(std::move(refs));
      shard_hosts_.push_back(hosts);
    }
  }

  // Make the services discoverable the CORBA way.
  for (const auto& orb : {infra_orb_, client_orb_}) {
    orb->register_initial_reference("NameService",
                                    orb->make_ref(naming_ref_.ior()));
    orb->register_initial_reference("WinnerSystemManager",
                                    orb->make_ref(winner_ref_.ior()));
    orb->register_initial_reference("CheckpointStore",
                                    orb->make_ref(store_ref_.ior()));
  }
}

SimRuntime::~SimRuntime() {
  stop_node_managers();
  // Release the channel before the virtual clock: queued-but-undelivered
  // events die with the run, and a later runtime (or a TCP deployment in
  // the same process) starts from a fresh bind.
  obs::EventChannel::global().reset();
  obs::clear_clock(obs_clock_token_);
}

void SimRuntime::stop_node_managers() {
  // The metrics publisher is a periodic producer like the node managers:
  // stop it too, so draining the event queue terminates.
  if (metrics_publisher_) metrics_publisher_->stop();
  for (Node& node : nodes_)
    if (node.node_manager) node.node_manager->stop();
}

std::shared_ptr<corba::ORB> SimRuntime::node_orb(const std::string& host) const {
  for (const Node& node : nodes_)
    if (node.host == host) return node.orb;
  throw corba::BAD_PARAM("no node for host '" + host + "'");
}

naming::NamingContextStub SimRuntime::naming() const {
  return naming::NamingContextStub(client_orb_->make_ref(naming_ref_.ior()));
}

winner::SystemManagerStub SimRuntime::winner_stub() const {
  return winner::SystemManagerStub(client_orb_->make_ref(winner_ref_.ior()));
}

std::shared_ptr<ft::CheckpointStoreClient> SimRuntime::checkpoint_store() const {
  if (shard_refs_.empty()) {
    return std::make_shared<ft::CheckpointStoreStub>(
        client_orb_->make_ref(store_ref_.ior()));
  }
  // Every call builds a fresh sharded client: each proxy/worker fails over
  // independently, exactly as separate client processes would.
  std::vector<ft::ShardedCheckpointStore::ShardReplicas> shards;
  shards.reserve(shard_refs_.size());
  for (std::size_t shard = 0; shard < shard_refs_.size(); ++shard) {
    ft::ShardedCheckpointStore::ShardReplicas set;
    set.replicas.reserve(shard_refs_[shard].size());
    for (const corba::ObjectRef& ref : shard_refs_[shard])
      set.replicas.push_back(std::make_shared<ft::CheckpointStoreStub>(
          client_orb_->make_ref(ref.ior())));
    set.hosts = shard_hosts_[shard];
    shards.push_back(std::move(set));
  }
  return std::make_shared<ft::ShardedCheckpointStore>(std::move(shards));
}

std::size_t SimRuntime::shard_for_key(const std::string& key) const {
  if (shard_refs_.empty()) return 0;
  // Same ring parameters as the clients checkpoint_store() builds.
  return ft::HashRing(shard_refs_.size(),
                      ft::ShardedCheckpointStore::Options{}.virtual_nodes)
      .shard_for(key);
}

corba::ObjectRef SimRuntime::deploy(const std::string& host,
                                    std::shared_ptr<corba::Servant> servant,
                                    const naming::Name& name) {
  const corba::ObjectRef ref = node_orb(host)->activate(std::move(servant));
  naming().bind_offer(name, ref, host);
  return client_orb_->make_ref(ref.ior());
}

void SimRuntime::deploy_everywhere(const naming::Name& name,
                                   const std::string& service_type) {
  for (const std::string& host : worker_hosts_)
    deploy(host, registry_->create(service_type), name);
}

corba::ObjectRef SimRuntime::resolve(const naming::Name& name) const {
  return naming().resolve(name);
}

ft::ServiceFactoryStub SimRuntime::factory_on(const std::string& host) const {
  naming::Name name = naming::Name::parse(names::kFactoriesContext);
  name.append(host);
  return ft::ServiceFactoryStub(naming().resolve(name));
}

ft::ServiceFactoryStub SimRuntime::best_factory() const {
  const std::string host = load_info_->best_host(worker_hosts_);
  load_info_->notify_placement(host);
  return factory_on(host);
}

std::shared_ptr<winner::SystemManager> SimRuntime::site_manager(
    const std::string& domain) const {
  auto it = site_managers_.find(domain);
  if (it == site_managers_.end())
    throw corba::BAD_PARAM("unknown site: " + domain);
  return it->second;
}

ft::ProxyConfig SimRuntime::make_proxy_config(const naming::Name& name,
                                              const std::string& service_type,
                                              const std::string& checkpoint_key,
                                              ft::RecoveryPolicy policy,
                                              corba::ObjectRef initial) const {
  ft::ProxyConfig config;
  config.initial = initial.is_nil() ? resolve(name) : std::move(initial);
  config.naming = std::make_shared<naming::NamingContextStub>(naming());
  config.service_name = name;
  config.store = checkpoint_store();
  config.checkpoint_key = checkpoint_key;
  config.service_type = service_type;
  config.policy = policy;
  config.locate_factory = [this] { return best_factory(); };
  // Virtual-time clock and sleep: a backoff wait advances the simulation
  // instead of blocking the (single) driver thread.
  config.clock = [this]() -> double { return cluster_.events().now(); };
  config.sleep = [this](double dt) {
    cluster_.events().run_until(cluster_.events().now() + dt);
  };
  // Async checkpoint shipping becomes a deferred event on the virtual
  // clock, so delta_async runs keep deterministic traces.
  config.defer = [this](std::function<void()> fn) {
    cluster_.events().schedule_after(0.0, std::move(fn));
  };
  config.quarantine = quarantine_;
  return config;
}

}  // namespace rt
