// SimRuntime: the paper's full deployment on a simulated NOW, in one object.
//
// Given a cluster of simulated workstations, SimRuntime stands up exactly
// the architecture of the paper's Fig. 1:
//
//   * one ORB ("server process") per workstation, all sharing one virtual
//     network and the simulator transport;
//   * a Winner node manager per workstation, periodically reporting load to
//     the central system manager (oneway CORBA messages);
//   * the central infrastructure — naming service (with the load
//     distribution extension), Winner system manager, checkpoint storage
//     service and per-host service factories — activated on an extra
//     "infra" workstation that is *not* registered with Winner, so the
//     infrastructure never competes with application placement;
//   * a client ORB for the driving application (the optimization manager).
//
// It also wires fault tolerance: make_proxy_config() produces a ready
// ProxyConfig whose factory locator asks Winner for the best host and uses
// that host's ServiceFactory — the recovery path of §3.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ft/checkpoint_store.hpp"
#include "ft/proxy.hpp"
#include "ft/sharded_store.hpp"
#include "ft/store_replication.hpp"
#include "ft/quarantine.hpp"
#include "ft/service_factory.hpp"
#include "naming/naming_context.hpp"
#include "naming/naming_stub.hpp"
#include "obs/publisher.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_transport.hpp"
#include "winner/meta_manager.hpp"
#include "winner/node_manager.hpp"
#include "winner/system_manager.hpp"
#include "winner/system_manager_corba.hpp"

namespace rt {

struct RuntimeOptions {
  /// Strategy of the naming service's default resolve(): `winner` gives the
  /// paper's load-distributing service, `round_robin` the plain baseline.
  naming::ResolveStrategy naming_strategy = naming::ResolveStrategy::winner;

  /// Seed for the naming service's `random` strategy.
  std::uint64_t seed = 1;

  /// Winner node-manager reporting period (virtual seconds).
  double report_period = 1.0;

  /// Winner staleness horizon; 0 disables.  Setting it (e.g. 2.5 * period)
  /// makes crashed workstations drop out of placement decisions.
  double winner_stale_after = 0.0;

  /// Simulated cost of the checkpoint storage service (Table 1's
  /// "not optimized for speed in any way" prototype).
  ft::MemoryCheckpointStore::CostModel checkpoint_cost{};

  /// Speed of the extra infrastructure workstation.
  double infra_speed = 100.0;

  /// Start node managers (disable for microtests that want a silent queue).
  bool start_node_managers = true;

  /// Per-request reply deadline in virtual seconds (0 = unbounded).  Expiry
  /// raises corba::TIMEOUT, which the fault-tolerance proxies treat as a
  /// failure — the only way a *hung* (not crashed) server becomes
  /// recoverable.
  double request_timeout = 0;

  /// Resumable transport sessions: a connection-reset fault then reconnects
  /// and replays the lost frame (exactly-once completion, deterministic
  /// resume penalty) instead of batch-failing the connection and waking the
  /// fault-tolerance proxies.  Mirrors TcpClientOptions::enable_sessions.
  bool enable_sessions = false;

  // --- recovery hardening -----------------------------------------------------
  /// Stand up a shared OfferQuarantine and wire it into naming resolution
  /// and every make_proxy_config(); repeatedly failing instances are then
  /// skipped by resolves until they prove healthy again.
  bool enable_quarantine = true;
  ft::QuarantineOptions quarantine_options{};

  /// Degrade gracefully when every host's load report goes stale (e.g. the
  /// system manager is partitioned from the reporters): demote stale hosts
  /// behind fresh ones instead of refusing placement.  Only observable with
  /// winner_stale_after > 0.
  bool demote_stale_hosts = true;

  // --- wide-area (meta-computing) deployments -------------------------------
  /// Assigns workstations to network domains (sites).  Empty = one site.
  /// With domains set, each site runs its own Winner system manager and the
  /// naming service consults a hierarchical MetaSystemManager; inter-domain
  /// messages pay the cluster's WAN network model.
  std::map<std::string, std::string> host_domains;
  /// Home site for hierarchical placement (required with host_domains; the
  /// infrastructure and the client live there).
  std::string home_domain;
  /// Load-index penalty for placing work outside the home domain.
  double wan_remote_penalty = 1.0;

  // --- sharded checkpoint store ----------------------------------------------
  /// When > 0, the checkpoint store is sharded: this many store servants are
  /// placed on the least-loaded worker hosts (winner::plan_shard_placements)
  /// and checkpoint_store() consistent-hashes keys across them.  0 keeps the
  /// paper's layout — one servant on the infra host — with zero behavioral
  /// drift for the Table 1 experiments.
  std::size_t checkpoint_shards = 0;
  /// Copies per shard including the primary (with checkpoint_shards > 0).
  /// Followers land on hosts distinct from their primary and receive
  /// asynchronous forwards of every acknowledged write; clients fail over
  /// to the freshest follower when the primary's host crashes.
  std::size_t checkpoint_replicas = 1;

  // --- push telemetry ---------------------------------------------------------
  /// When > 0, run a virtual-clock MetricsDeltaPublisher at this epoch
  /// (virtual seconds): every epoch the runtime publishes changed metrics on
  /// the `metrics.delta` topic of the process-global event channel.  The
  /// channel itself is always bound (deferred, virtual-clock delivery), so
  /// subscribers see flight/session/load/timeline events regardless; this
  /// option only controls the periodic metrics producer.  Default off: the
  /// paper's Table 1 runs carry no telemetry traffic.
  double metrics_epoch = 0.0;
};

/// Well-known names used by the runtime's naming layout.
namespace names {
inline const std::string kFactoriesContext = "Factories";
inline const std::string kInfraHost = "infra";
}  // namespace names

class SimRuntime {
 public:
  /// `cluster` must already contain the application workstations; the
  /// runtime adds the infra host, one ORB + node manager + factory per
  /// workstation and the central services.
  SimRuntime(sim::Cluster& cluster, RuntimeOptions options = {});
  ~SimRuntime();

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  sim::Cluster& cluster() noexcept { return cluster_; }
  sim::EventQueue& events() noexcept { return cluster_.events(); }
  const RuntimeOptions& options() const noexcept { return options_; }

  /// The driving application's ORB.
  const std::shared_ptr<corba::ORB>& client_orb() const noexcept {
    return client_orb_;
  }
  /// Per-workstation server ORB.
  std::shared_ptr<corba::ORB> node_orb(const std::string& host) const;
  /// Application workstations (excludes the infra host).
  const std::vector<std::string>& worker_hosts() const noexcept {
    return worker_hosts_;
  }

  // --- central services, as the client sees them ---------------------------
  naming::NamingContextStub naming() const;
  winner::SystemManagerStub winner_stub() const;
  std::shared_ptr<ft::CheckpointStoreClient> checkpoint_store() const;

  /// Direct access to the system manager implementation (tests, benches).
  /// Single-site deployments only; null in hierarchical mode.
  const std::shared_ptr<winner::SystemManager>& winner_impl() const noexcept {
    return winner_impl_;
  }
  /// The load information service the naming layer consults: the system
  /// manager (single site) or the meta manager (hierarchical).
  const std::shared_ptr<winner::LoadInformationService>& load_info()
      const noexcept {
    return load_info_;
  }
  /// Per-site system manager (hierarchical mode; throws for unknown sites).
  std::shared_ptr<winner::SystemManager> site_manager(
      const std::string& domain) const;
  /// Direct access to the in-memory checkpoint backend (telemetry).
  /// The central (unsharded) store; still live with sharding on, but
  /// checkpoint traffic goes to the shards then.
  const std::shared_ptr<ft::MemoryCheckpointStore>& checkpoint_backend()
      const noexcept {
    return checkpoint_backend_;
  }

  // --- sharded checkpoint store (checkpoint_shards > 0) ---------------------
  std::size_t checkpoint_shard_count() const noexcept {
    return shard_refs_.size();
  }
  /// shard_hosts()[s][r] = host of shard s, replica r (0 = primary).
  const std::vector<std::vector<std::string>>& shard_hosts() const noexcept {
    return shard_hosts_;
  }
  /// Shard a key routes to (the ring every checkpoint_store() client uses).
  std::size_t shard_for_key(const std::string& key) const;
  /// The primary's replicating wrapper (tests: flush, lag, catch-up counts).
  const std::shared_ptr<ft::ReplicatingStore>& shard_primary(
      std::size_t shard) const {
    return shard_primaries_.at(shard);
  }
  const std::shared_ptr<ft::ServantFactoryRegistry>& registry() const noexcept {
    return registry_;
  }
  /// Shared circuit breaker (null when enable_quarantine is off).
  const std::shared_ptr<ft::OfferQuarantine>& quarantine() const noexcept {
    return quarantine_;
  }

  // --- deployment -----------------------------------------------------------
  /// Activates a servant on `host`'s ORB and registers it as an offer under
  /// `name`.  Returns the new instance's reference (client ORB binding).
  corba::ObjectRef deploy(const std::string& host,
                          std::shared_ptr<corba::Servant> servant,
                          const naming::Name& name);

  /// Deploys one instance of `service_type` (from the registry) on every
  /// worker host, as offers under `name` — the service pool the experiments
  /// resolve from.
  void deploy_everywhere(const naming::Name& name,
                         const std::string& service_type);

  /// Resolve through the naming service (default strategy).
  corba::ObjectRef resolve(const naming::Name& name) const;

  /// Factory of a specific host.
  ft::ServiceFactoryStub factory_on(const std::string& host) const;

  /// Factory on the host Winner currently ranks best.
  ft::ServiceFactoryStub best_factory() const;

  // --- fault tolerance -------------------------------------------------------
  /// Ready-made proxy configuration for a service deployed under `name`:
  /// naming + checkpoint store + winner-driven factory locator.  When
  /// `initial` is nil the target is resolved through the naming service.
  ft::ProxyConfig make_proxy_config(const naming::Name& name,
                                    const std::string& service_type,
                                    const std::string& checkpoint_key,
                                    ft::RecoveryPolicy policy = {},
                                    corba::ObjectRef initial = {}) const;

  /// Stops node managers (e.g. before draining the event queue).
  void stop_node_managers();

 private:
  struct Node {
    std::string host;
    std::shared_ptr<corba::ORB> orb;
    std::unique_ptr<winner::NodeManager> node_manager;
    corba::ObjectRef factory_ref;
  };

  sim::Cluster& cluster_;
  RuntimeOptions options_;
  std::shared_ptr<corba::InProcessNetwork> network_;
  std::shared_ptr<corba::ORB> infra_orb_;
  std::shared_ptr<corba::ORB> client_orb_;
  std::shared_ptr<winner::SystemManager> winner_impl_;
  std::shared_ptr<winner::LoadInformationService> load_info_;
  std::map<std::string, std::shared_ptr<winner::SystemManager>> site_managers_;
  std::map<std::string, corba::ObjectRef> site_manager_refs_;
  std::shared_ptr<ft::MemoryCheckpointStore> checkpoint_backend_;
  std::vector<std::vector<corba::ObjectRef>> shard_refs_;
  std::vector<std::vector<std::string>> shard_hosts_;
  std::vector<std::shared_ptr<ft::ReplicatingStore>> shard_primaries_;
  std::shared_ptr<ft::ServantFactoryRegistry> registry_;
  std::shared_ptr<ft::OfferQuarantine> quarantine_;
  std::shared_ptr<naming::NamingContextServant> naming_servant_;
  corba::ObjectRef naming_ref_;
  corba::ObjectRef winner_ref_;
  corba::ObjectRef store_ref_;
  std::vector<std::string> worker_hosts_;
  std::vector<Node> nodes_;
  /// Deterministic per-runtime adapter ids: repeated runs in one process
  /// mint identical object keys (byte-identical messages and timings).
  std::uint64_t next_adapter_id_ = 0;
  /// Token of the virtual observability clock this runtime installed; the
  /// destructor only clears its own installation.
  std::uint64_t obs_clock_token_ = 0;
  /// Virtual-clock metrics producer (metrics_epoch > 0); stopped before the
  /// event queue is torn down.
  std::unique_ptr<obs::MetricsDeltaPublisher> metrics_publisher_;
};

}  // namespace rt
