// The Complex Box algorithm (M.J. Box, 1965).
//
// A direct-search method for bound-constrained minimization: maintain a
// "complex" of K >= n+1 points (classically K = 2n); repeatedly replace the
// worst point by its over-reflection (factor alpha ~ 1.3) through the
// centroid of the others, contracting toward the centroid while the
// reflected point stays worst, clamping to the box throughout.  The paper
// runs "multiple instances of a sequential implementation of the Complex
// Box algorithm" as workers, with the iteration count as the stopping
// criterion (§4, Table 1) — so iterations and function evaluations, not
// wall time, parameterize the work here.
//
// BoxState makes the optimizer resumable and serializable: it is exactly
// what a worker checkpoints, so a restarted service continues from the last
// complex instead of starting over.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include "orb/value.hpp"

namespace opt {

using Objective = std::function<double(std::span<const double>)>;

struct BoxOptions {
  int max_iterations = 1000;
  /// Over-reflection factor (Box recommends 1.3).
  double alpha = 1.3;
  /// Stop when f(worst) - f(best) falls below this; 0 disables (pure
  /// iteration-count stopping, as in the paper).
  double tolerance = 0.0;
  /// Complex size; 0 selects the classic 2n (at least n+1).
  int complex_size = 0;
  std::uint64_t seed = 1;
  /// Contractions toward the centroid before giving up on a reflection.
  /// Kept small so the evaluation cost per iteration stays roughly
  /// constant across the active and converged phases of the search (the
  /// iteration count is the paper's unit of per-call work).
  int max_contractions = 6;

  /// When the complex collapses (worst - best below this, relative to
  /// |best|), re-seed all points but the best in a shrunken box around the
  /// best point, so descent along narrow valleys (Rosenbrock!) continues
  /// instead of stalling.  0 disables the restart.
  double collapse_threshold = 1e-10;
  /// Half-width of the restart box, as a fraction of the bound range;
  /// halves on every consecutive restart.
  double restart_radius = 0.05;
  /// Collapse restarts allowed per run.  Each restart re-values the whole
  /// complex (~2n evaluations); the cap keeps evaluation cost roughly
  /// linear in the iteration budget once the search has converged.
  int max_restarts = 25;
};

struct BoxResult {
  std::vector<double> best;
  double best_value = 0.0;
  int iterations = 0;           ///< iterations performed in this call
  std::int64_t evaluations = 0; ///< objective evaluations in this call
  bool converged = false;       ///< tolerance reached (never with tol = 0)
};

/// Resumable optimizer state: the complex, its values, and counters.
class BoxState {
 public:
  bool initialized() const noexcept { return !points.empty(); }

  /// Serialization for checkpointing (versioned, CDR-based).  deserialize
  /// takes a view so restore paths can parse directly out of a larger
  /// message buffer without cutting out a Blob first.
  corba::Blob serialize() const;
  static BoxState deserialize(std::span<const std::byte> blob);

  friend bool operator==(const BoxState&, const BoxState&) = default;

  std::vector<std::vector<double>> points;
  std::vector<double> values;
  std::int64_t total_evaluations = 0;
  int total_iterations = 0;
  std::uint64_t rng_state = 0;  ///< replacement seed for the next run
};

/// Runs (or resumes) the Complex Box algorithm for options.max_iterations
/// iterations.  When `state` is supplied and initialized, the complex is
/// resumed from it; on return it holds the updated complex.  Throws
/// std::invalid_argument for inconsistent bounds/options.
BoxResult complex_box(const Objective& objective,
                      std::span<const double> lower,
                      std::span<const double> upper, const BoxOptions& options,
                      BoxState* state = nullptr);

}  // namespace opt
