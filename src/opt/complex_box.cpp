#include "opt/complex_box.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "orb/cdr.hpp"

namespace opt {

namespace {

std::size_t worst_index(const std::vector<double>& values) {
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

std::size_t best_index(const std::vector<double>& values) {
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

}  // namespace

corba::Blob BoxState::serialize() const {
  corba::CdrOutputStream out;
  out.write_u32(1);  // format version
  out.write_u32(static_cast<std::uint32_t>(points.size()));
  for (const auto& point : points) out.write_f64_seq(point);
  out.write_f64_seq(values);
  out.write_i64(total_evaluations);
  out.write_i32(total_iterations);
  out.write_u64(rng_state);
  return out.take_buffer();
}

BoxState BoxState::deserialize(std::span<const std::byte> blob) {
  corba::CdrInputStream in(blob);
  const std::uint32_t version = in.read_u32();
  if (version != 1)
    throw corba::MARSHAL("unsupported BoxState version " +
                         std::to_string(version));
  BoxState state;
  const std::uint32_t count = in.read_u32();
  state.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    state.points.push_back(in.read_f64_seq());
  state.values = in.read_f64_seq();
  state.total_evaluations = in.read_i64();
  state.total_iterations = in.read_i32();
  state.rng_state = in.read_u64();
  if (state.values.size() != state.points.size())
    throw corba::MARSHAL("corrupt BoxState: point/value count mismatch");
  return state;
}

BoxResult complex_box(const Objective& objective,
                      std::span<const double> lower,
                      std::span<const double> upper, const BoxOptions& options,
                      BoxState* state) {
  const std::size_t n = lower.size();
  if (n == 0) throw std::invalid_argument("empty search space");
  if (upper.size() != n)
    throw std::invalid_argument("bound dimension mismatch");
  for (std::size_t i = 0; i < n; ++i)
    if (!(lower[i] < upper[i]))
      throw std::invalid_argument("lower bound must be below upper bound");
  if (options.alpha <= 1.0)
    throw std::invalid_argument("reflection factor must exceed 1");
  if (options.max_iterations < 0)
    throw std::invalid_argument("negative iteration budget");

  const std::size_t complex_size =
      options.complex_size > 0
          ? static_cast<std::size_t>(options.complex_size)
          : std::max(n + 1, 2 * n);
  if (complex_size < n + 1)
    throw std::invalid_argument("complex size must be at least n+1");

  BoxResult result;
  std::mt19937_64 rng((state && state->initialized() && state->rng_state != 0)
                          ? state->rng_state
                          : options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<std::vector<double>> points;
  std::vector<double> values;

  auto clamp = [&](std::vector<double>& x) {
    for (std::size_t i = 0; i < n; ++i)
      x[i] = std::clamp(x[i], lower[i], upper[i]);
  };
  auto evaluate = [&](std::span<const double> x) {
    ++result.evaluations;
    return objective(x);
  };

  if (state && state->initialized()) {
    if (state->points.front().size() != n)
      throw std::invalid_argument("resumed state has wrong dimension");
    points = state->points;
    values = state->values;
  } else {
    points.reserve(complex_size);
    for (std::size_t p = 0; p < complex_size; ++p) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i)
        x[i] = lower[i] + uniform(rng) * (upper[i] - lower[i]);
      values.push_back(evaluate(x));
      points.push_back(std::move(x));
    }
  }

  std::vector<double> centroid(n);
  double restart_radius = options.restart_radius;
  int restarts = 0;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    const std::size_t worst = worst_index(values);
    const std::size_t best = best_index(values);
    if (options.tolerance > 0 &&
        values[worst] - values[best] <= options.tolerance) {
      result.converged = true;
      break;
    }
    ++result.iterations;

    // Collapse restart: when the complex has degenerated onto one point,
    // re-seed everything but the best inside a small box around it so the
    // search can keep crawling down a narrow valley.
    if (options.collapse_threshold > 0 && restarts < options.max_restarts &&
        values[worst] - values[best] <=
            options.collapse_threshold * (1.0 + std::abs(values[best]))) {
      ++restarts;
      for (std::size_t p = 0; p < points.size(); ++p) {
        if (p == best) continue;
        for (std::size_t i = 0; i < n; ++i) {
          const double radius = restart_radius * (upper[i] - lower[i]);
          points[p][i] = points[best][i] + (2.0 * uniform(rng) - 1.0) * radius;
        }
        clamp(points[p]);
        values[p] = evaluate(points[p]);
      }
      restart_radius = std::max(restart_radius * 0.5, 1e-9);
      continue;
    }

    // Centroid of all points except the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (p == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += points[p][i];
    }
    const double scale = 1.0 / static_cast<double>(points.size() - 1);
    for (double& c : centroid) c *= scale;

    // Over-reflection of the worst point through the centroid.
    std::vector<double> candidate(n);
    for (std::size_t i = 0; i < n; ++i)
      candidate[i] =
          centroid[i] + options.alpha * (centroid[i] - points[worst][i]);
    clamp(candidate);
    double candidate_value = evaluate(candidate);

    // While still the worst, contract toward the centroid.
    int contractions = 0;
    while (candidate_value > values[worst] &&
           contractions < options.max_contractions) {
      for (std::size_t i = 0; i < n; ++i)
        candidate[i] = 0.5 * (candidate[i] + centroid[i]);
      candidate_value = evaluate(candidate);
      ++contractions;
    }
    if (candidate_value > values[worst]) {
      // Guin's modification: the centroid of a curved valley can be worse
      // than every complex point, so pull the candidate toward the best
      // point instead — continuity guarantees an improvement eventually.
      const std::size_t best_now = best_index(values);
      int pulls = 0;
      while (candidate_value > values[worst] &&
             pulls < options.max_contractions) {
        for (std::size_t i = 0; i < n; ++i)
          candidate[i] = 0.5 * (candidate[i] + points[best_now][i]);
        candidate_value = evaluate(candidate);
        ++pulls;
      }
      if (candidate_value > values[worst]) {
        // Numerical corner (flat region): land on the best point itself.
        candidate = points[best_now];
        candidate_value = values[best_now];
      }
    }
    points[worst] = std::move(candidate);
    values[worst] = candidate_value;
  }

  const std::size_t best = best_index(values);
  result.best = points[best];
  result.best_value = values[best];

  if (state) {
    state->points = std::move(points);
    state->values = std::move(values);
    state->total_evaluations += result.evaluations;
    state->total_iterations += result.iterations;
    state->rng_state = rng();
  }
  return result;
}

}  // namespace opt
