// The optimization worker service: stub, skeleton/servant, and the
// hand-written fault-tolerance proxy of the paper's Fig. 2.
//
//   interface OptWorker {           // checkpointable
//     SolveOutcome solve(in long block, in DoubleSeq coupling,
//                        in long iterations);
//     long long total_evaluations();
//     long long calls();
//   };
//
// A worker owns one (or more) blocks of the decomposed Rosenbrock problem.
// Each solve() call runs the Complex Box algorithm on the block objective
// for the requested number of iterations at the given coupling values.  The
// worker keeps the final complex per block as *internal state*: the next
// solve warm-starts from it (points are re-evaluated because the coupling,
// and hence the objective, moved).  That state is what get_state/set_state
// checkpoint — a recovered worker resumes from the last complex instead of
// from scratch, which is precisely the statefulness that motivates the
// paper's checkpointing design.
#pragma once

#include <map>
#include <mutex>

#include "ft/checkpoint.hpp"
#include "ft/proxy.hpp"
#include "opt/complex_box.hpp"
#include "opt/rosenbrock.hpp"
#include "orb/stub.hpp"

namespace opt {

inline constexpr std::string_view kOptWorkerRepoId =
    "IDL:corbaft/opt/OptWorker:1.0";
inline constexpr std::string_view kOptWorkerServiceType = "OptWorker";

/// Problem definition and simulation cost model shared by all workers.
struct WorkerProblem {
  int dimension = 30;
  int blocks = 3;
  double lower = -5.0;
  double upper = 5.0;
  std::uint64_t seed = 1;

  /// Simulated work units charged per objective evaluation and block
  /// dimension (the cost of one block-objective computation).
  double work_per_eval_per_dim = 10.0;
  /// Simulated work units per serialized state byte charged by
  /// get_state/set_state (state marshaling cost on the worker host).
  double work_per_state_byte = 0.0;
};

struct SolveOutcome {
  double best_value = 0.0;
  std::int64_t evaluations = 0;
};

class OptWorkerServant final : public corba::Servant,
                               public ft::CheckpointableServant {
 public:
  explicit OptWorkerServant(WorkerProblem problem);

  std::string_view repo_id() const noexcept override { return kOptWorkerRepoId; }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

  // Typed operations (also callable directly in-process).
  SolveOutcome solve(int block, std::span<const double> coupling,
                     int iterations);
  std::int64_t total_evaluations() const;
  std::int64_t calls() const;

  // CheckpointableServant
  corba::Blob get_state() override;
  void set_state(const corba::Blob& state) override;

 private:
  WorkerProblem problem_;
  Decomposition decomposition_;
  mutable std::mutex mu_;
  std::map<int, BoxState> block_states_;
  /// Per-call coupling snapshot, reused across solve() calls (guarded by
  /// mu_) so the hot path stops allocating per invocation.
  std::vector<double> coupling_scratch_;
  std::int64_t calls_ = 0;
};

class OptWorkerStub : public corba::StubBase {
 public:
  OptWorkerStub() = default;
  explicit OptWorkerStub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}

  SolveOutcome solve(int block, std::span<const double> coupling,
                     int iterations) const;
  std::int64_t total_evaluations() const;
  std::int64_t calls() const;
};

/// Hand-written fault-tolerance proxy, "derived from the stub class and
/// therefore [providing] all of the methods of the stub class" (§3).  Its
/// methods shadow the stub's with engine-wrapped equivalents; after a
/// recovery the engine re-targets the inherited stub, so even unshadowed
/// stub methods keep working against the replacement instance.
class OptWorkerProxy : public OptWorkerStub {
 public:
  explicit OptWorkerProxy(ft::ProxyConfig config);

  SolveOutcome solve(int block, std::span<const double> coupling,
                     int iterations);
  std::int64_t total_evaluations();

  ft::ProxyEngine& engine() noexcept { return engine_; }

 private:
  ft::ProxyEngine engine_;
};

/// Decodes the wire representation of SolveOutcome (shared with the
/// manager's request proxies).
SolveOutcome decode_solve_outcome(const corba::Value& value);

}  // namespace opt
