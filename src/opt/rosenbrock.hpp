// The Rosenbrock benchmark function and its block decomposition.
//
// The paper evaluates on "a decomposed formulation of the Rosenbrock
// function": the n-dimensional chained Rosenbrock
//
//   f(x) = sum_{i=0}^{n-2} [ 100 (x_{i+1} - x_i^2)^2 + (1 - x_i)^2 ]
//
// split into k contiguous variable blocks solved by workers, with the k-1
// block-boundary variables owned by the manager ("several (sub-)problems
// with a smaller dimension ... combined for the solution of the original
// problem in a manager", §4).  For n=30, k=3 this yields worker dimensions
// 10, 9, 9 and a 2-dimensional manager problem — the paper's exact setup.
//
// The decomposition is exact: every Rosenbrock term is assigned to exactly
// one block (terms straddling a boundary go to the block that owns the
// non-boundary end), so the sum of block objectives, at consistent coupling
// values, equals f.
#pragma once

#include <span>
#include <vector>

namespace opt {

/// The chained Rosenbrock function; requires x.size() >= 2.
double rosenbrock(std::span<const double> x);

/// One worker's share of the decomposition.
struct Block {
  int index = 0;
  /// Global index of the first owned variable and how many are owned
  /// (ownership is contiguous).
  int first_variable = 0;
  int dimension = 0;
  /// Global indices of the manager-owned boundary variables this block
  /// couples to; -1 when the block sits at the edge.
  int left_coupling = -1;
  int right_coupling = -1;
};

class Decomposition {
 public:
  /// Splits an n-dimensional problem into k blocks (k >= 1, n >= 3k: every
  /// block keeps at least two variables plus boundaries).  Block sizes
  /// differ by at most one, largest first — (10, 9, 9) for n=30, k=3.
  static Decomposition make(int n, int k);

  int dimension() const noexcept { return n_; }
  int block_count() const noexcept { return static_cast<int>(blocks_.size()); }
  const Block& block(int index) const { return blocks_.at(static_cast<std::size_t>(index)); }
  const std::vector<Block>& blocks() const noexcept { return blocks_; }

  /// Global indices of the manager-owned coupling variables (size k-1).
  const std::vector<int>& coupling_indices() const noexcept {
    return coupling_indices_;
  }
  int coupling_dimension() const noexcept {
    return static_cast<int>(coupling_indices_.size());
  }

  /// Objective of one block: the Rosenbrock terms assigned to it, with the
  /// block's own variables `block_x` and the manager's `coupling` values
  /// (full coupling vector, indexed by position) substituted.
  double block_objective(const Block& block, std::span<const double> block_x,
                         std::span<const double> coupling) const;

  /// Assembles a full n-dimensional point from per-block solutions and
  /// coupling values (for verification and reporting).
  std::vector<double> assemble(
      const std::vector<std::vector<double>>& block_solutions,
      std::span<const double> coupling) const;

 private:
  int n_ = 0;
  std::vector<Block> blocks_;
  std::vector<int> coupling_indices_;
};

}  // namespace opt
