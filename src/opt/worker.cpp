#include "opt/worker.hpp"

#include "sim/work_meter.hpp"

namespace opt {

namespace {

/// splitmix64 — derives independent per-call seeds.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1) + 0x85ebca6bull * (c + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

OptWorkerServant::OptWorkerServant(WorkerProblem problem)
    : problem_(problem),
      decomposition_(Decomposition::make(problem.dimension, problem.blocks)) {}

SolveOutcome OptWorkerServant::solve(int block_index,
                                     std::span<const double> coupling,
                                     int iterations) {
  if (block_index < 0 || block_index >= decomposition_.block_count())
    throw corba::BAD_PARAM("block index out of range");
  if (iterations <= 0) throw corba::BAD_PARAM("iterations must be positive");
  if (static_cast<int>(coupling.size()) != decomposition_.coupling_dimension())
    throw corba::BAD_PARAM("coupling vector has wrong dimension");

  std::lock_guard lock(mu_);
  const Block& block = decomposition_.block(block_index);
  const std::size_t dim = static_cast<std::size_t>(block.dimension);
  const double eval_work =
      problem_.work_per_eval_per_dim * static_cast<double>(block.dimension);

  coupling_scratch_.assign(coupling.begin(), coupling.end());
  std::int64_t extra_evaluations = 0;
  const Objective objective = [&](std::span<const double> x) {
    sim::WorkMeter::charge(eval_work);
    return decomposition_.block_objective(block, x, coupling_scratch_);
  };

  BoxState& state = block_states_[block_index];
  if (state.initialized()) {
    // Warm start: the coupling values (and hence the objective) moved since
    // the complex was stored, so every retained point must be re-valued.
    for (std::size_t p = 0; p < state.points.size(); ++p) {
      state.values[p] = objective(state.points[p]);
      ++extra_evaluations;
    }
  }

  BoxOptions options;
  options.max_iterations = iterations;
  options.seed = mix_seed(problem_.seed, static_cast<std::uint64_t>(block_index),
                          static_cast<std::uint64_t>(calls_));
  const std::vector<double> lower(dim, problem_.lower);
  const std::vector<double> upper(dim, problem_.upper);
  const BoxResult result = complex_box(objective, lower, upper, options, &state);

  ++calls_;
  return SolveOutcome{result.best_value, result.evaluations + extra_evaluations};
}

std::int64_t OptWorkerServant::total_evaluations() const {
  std::lock_guard lock(mu_);
  std::int64_t total = 0;
  for (const auto& [block, state] : block_states_)
    total += state.total_evaluations;
  return total;
}

std::int64_t OptWorkerServant::calls() const {
  std::lock_guard lock(mu_);
  return calls_;
}

corba::Blob OptWorkerServant::get_state() {
  std::lock_guard lock(mu_);
  corba::CdrOutputStream out;
  out.write_u32(1);  // format version
  out.write_i64(calls_);
  out.write_u32(static_cast<std::uint32_t>(block_states_.size()));
  for (const auto& [block, state] : block_states_) {
    out.write_i32(block);
    const corba::Blob blob = state.serialize();
    out.write_blob(std::span<const std::byte>(blob));
  }
  corba::Blob blob = out.take_buffer();
  sim::WorkMeter::charge(problem_.work_per_state_byte *
                         static_cast<double>(blob.size()));
  return blob;
}

void OptWorkerServant::set_state(const corba::Blob& blob) {
  corba::CdrInputStream in(blob);
  const std::uint32_t version = in.read_u32();
  if (version != 1)
    throw corba::MARSHAL("unsupported worker state version " +
                         std::to_string(version));
  const std::int64_t calls = in.read_i64();
  const std::uint32_t count = in.read_u32();
  std::map<int, BoxState> states;
  for (std::uint32_t i = 0; i < count; ++i) {
    const int block = in.read_i32();
    // View read: each BoxState parses straight out of the message buffer
    // instead of being copied into an intermediate Blob first.
    states[block] = BoxState::deserialize(in.read_blob_view());
  }
  std::lock_guard lock(mu_);
  calls_ = calls;
  block_states_ = std::move(states);
  sim::WorkMeter::charge(problem_.work_per_state_byte *
                         static_cast<double>(blob.size()));
}

corba::Value OptWorkerServant::dispatch(std::string_view op,
                                        const corba::ValueSeq& args) {
  if (auto handled = try_dispatch_state(op, args)) return *handled;
  if (op == "solve") {
    check_arity(op, args, 3);
    const SolveOutcome outcome = solve(args[0].as_i32(), args[1].as_f64_seq(),
                                       args[2].as_i32());
    return corba::Value(corba::ValueSeq{corba::Value(outcome.best_value),
                                        corba::Value(outcome.evaluations)});
  }
  if (op == "total_evaluations") {
    check_arity(op, args, 0);
    return corba::Value(total_evaluations());
  }
  if (op == "calls") {
    check_arity(op, args, 0);
    return corba::Value(calls());
  }
  throw corba::BAD_OPERATION(std::string(op));
}

SolveOutcome decode_solve_outcome(const corba::Value& value) {
  const corba::ValueSeq& fields = value.as_sequence();
  return SolveOutcome{fields.at(0).as_f64(), fields.at(1).as_i64()};
}

SolveOutcome OptWorkerStub::solve(int block, std::span<const double> coupling,
                                  int iterations) const {
  return decode_solve_outcome(
      call("solve", {corba::Value(block), corba::Value::from_span(coupling),
                     corba::Value(iterations)}));
}

std::int64_t OptWorkerStub::total_evaluations() const {
  return call("total_evaluations", {}).as_i64();
}

std::int64_t OptWorkerStub::calls() const { return call("calls", {}).as_i64(); }

OptWorkerProxy::OptWorkerProxy(ft::ProxyConfig config)
    : OptWorkerStub(config.initial), engine_(std::move(config)) {
  engine_.on_rebind = [this](const corba::ObjectRef& ref) { rebind(ref); };
}

SolveOutcome OptWorkerProxy::solve(int block, std::span<const double> coupling,
                                   int iterations) {
  return decode_solve_outcome(engine_.call(
      "solve", {corba::Value(block), corba::Value::from_span(coupling),
                corba::Value(iterations)}));
}

std::int64_t OptWorkerProxy::total_evaluations() {
  return engine_.call("total_evaluations", {}).as_i64();
}

}  // namespace opt
