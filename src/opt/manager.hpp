// The optimization manager: the bilevel decomposed-Rosenbrock solver that
// drives the paper's experiments.
//
// The manager owns the k-1 coupling variables and minimizes over them with
// its own Complex Box instance ("a 2 dimensional manager problem" for the
// 30/3 scenario).  Every evaluation of the manager objective is one
// *parallel round*: deferred-synchronous solve() requests to all k workers
// (plain DII requests, or fault-tolerant request proxies when FT is on),
// summed after the slowest worker replies.  Worker placement happens once,
// up front, through k naming-service resolves — the step whose quality the
// Fig. 3 experiment measures.
#pragma once

#include <memory>

#include "core/sim_runtime.hpp"
#include "ft/request_proxy.hpp"
#include "opt/worker.hpp"

namespace opt {

struct SolverConfig {
  int dimension = 30;
  int workers = 3;
  int worker_iterations = 1000;
  /// Outer Complex Box iterations over the coupling variables.
  int manager_iterations = 20;
  std::uint64_t seed = 1;
  double lower = -5.0;
  double upper = 5.0;

  /// Workstation the manager process itself runs on (its per-round
  /// coordination work is charged there).  Empty = first worker host.
  std::string manager_host;
  double manager_work_per_round = 1000.0;

  /// Simulation cost model forwarded to the workers.
  double work_per_eval_per_dim = 10.0;
  double work_per_state_byte = 0.0;

  /// Fault tolerance: wrap every worker in a checkpointing proxy.
  bool use_ft = false;
  ft::RecoveryPolicy ft_policy{};

  WorkerProblem worker_problem() const;
};

struct SolverResult {
  double best_value = 0.0;
  std::vector<double> best_coupling;
  int rounds = 0;                 ///< parallel worker rounds executed
  std::int64_t worker_calls = 0;  ///< total solve() invocations
  double virtual_seconds = 0.0;   ///< virtual runtime of run()
  std::uint64_t recoveries = 0;   ///< fault recoveries performed (FT mode)
  std::uint64_t checkpoints = 0;  ///< checkpoints written (FT mode)
  std::uint64_t retries = 0;      ///< call retries after backoff (FT mode)
  /// Checkpoint transactions abandoned after their retries (each one is a
  /// potentially widened state-loss window).
  std::uint64_t checkpoint_failures = 0;
  /// Retries refused because the per-call deadline budget could not fit.
  std::uint64_t deadline_exhaustions = 0;
  double backoff_waited_s = 0.0;  ///< total virtual time spent backing off
};

class DecomposedSolver {
 public:
  /// The naming-service name the worker offers are bound under.
  static naming::Name service_name();

  DecomposedSolver(rt::SimRuntime& runtime, SolverConfig config);

  /// Registers the worker service type, deploys one instance per
  /// workstation and resolves (places) the k workers for this run.
  void deploy();

  /// Runs the bilevel optimization; requires deploy() first.
  SolverResult run();

  /// Host names the k workers were placed on (after deploy()).
  const std::vector<std::string>& placements() const noexcept {
    return placements_;
  }

 private:
  double evaluate_coupling(std::span<const double> coupling);
  std::string host_of(const corba::ObjectRef& ref) const;

  rt::SimRuntime& runtime_;
  SolverConfig config_;
  Decomposition decomposition_;
  std::vector<corba::ObjectRef> worker_refs_;
  std::vector<std::unique_ptr<ft::ProxyEngine>> engines_;
  std::vector<std::string> placements_;
  SolverResult stats_;
  bool deployed_ = false;
};

}  // namespace opt
