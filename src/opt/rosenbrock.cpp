#include "opt/rosenbrock.hpp"

#include <stdexcept>

namespace opt {

namespace {

/// One chained-Rosenbrock term over the pair (a, b).
inline double term(double a, double b) {
  const double q = b - a * a;
  const double p = 1.0 - a;
  return 100.0 * q * q + p * p;
}

}  // namespace

double rosenbrock(std::span<const double> x) {
  if (x.size() < 2)
    throw std::invalid_argument("rosenbrock requires dimension >= 2");
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) sum += term(x[i], x[i + 1]);
  return sum;
}

Decomposition Decomposition::make(int n, int k) {
  if (k < 1) throw std::invalid_argument("need at least one block");
  if (n < 3 * k - 1)
    throw std::invalid_argument(
        "dimension too small: every block needs >= 2 variables plus "
        "boundaries (n >= 3k-1)");
  Decomposition d;
  d.n_ = n;
  const int owned = n - (k - 1);
  const int base = owned / k;
  const int remainder = owned % k;
  int next = 0;
  for (int j = 0; j < k; ++j) {
    Block block;
    block.index = j;
    block.first_variable = next;
    block.dimension = base + (j < remainder ? 1 : 0);
    block.left_coupling = (j > 0) ? next - 1 : -1;
    next += block.dimension;
    block.right_coupling = (j < k - 1) ? next : -1;
    if (j < k - 1) {
      d.coupling_indices_.push_back(next);
      ++next;  // skip the manager-owned boundary variable
    }
    d.blocks_.push_back(block);
  }
  return d;
}

double Decomposition::block_objective(const Block& block,
                                      std::span<const double> block_x,
                                      std::span<const double> coupling) const {
  if (static_cast<int>(block_x.size()) != block.dimension)
    throw std::invalid_argument("block solution has wrong dimension");
  if (static_cast<int>(coupling.size()) != coupling_dimension())
    throw std::invalid_argument("coupling vector has wrong dimension");
  // Extended local vector: [left boundary] block_x [right boundary]; the
  // terms over its consecutive pairs are exactly this block's share.
  double sum = 0.0;
  double previous;
  std::size_t start = 0;
  if (block.left_coupling >= 0) {
    previous = coupling[static_cast<std::size_t>(block.index - 1)];
  } else {
    previous = block_x[0];
    start = 1;
  }
  for (std::size_t i = start; i < block_x.size(); ++i) {
    sum += term(previous, block_x[i]);
    previous = block_x[i];
  }
  if (block.right_coupling >= 0)
    sum += term(previous, coupling[static_cast<std::size_t>(block.index)]);
  return sum;
}

std::vector<double> Decomposition::assemble(
    const std::vector<std::vector<double>>& block_solutions,
    std::span<const double> coupling) const {
  if (static_cast<int>(block_solutions.size()) != block_count())
    throw std::invalid_argument("wrong number of block solutions");
  if (static_cast<int>(coupling.size()) != coupling_dimension())
    throw std::invalid_argument("coupling vector has wrong dimension");
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  for (const Block& block : blocks_) {
    const auto& solution = block_solutions[static_cast<std::size_t>(block.index)];
    if (static_cast<int>(solution.size()) != block.dimension)
      throw std::invalid_argument("block solution has wrong dimension");
    for (int i = 0; i < block.dimension; ++i)
      x[static_cast<std::size_t>(block.first_variable + i)] =
          solution[static_cast<std::size_t>(i)];
  }
  for (std::size_t j = 0; j < coupling_indices_.size(); ++j)
    x[static_cast<std::size_t>(coupling_indices_[j])] = coupling[j];
  return x;
}

}  // namespace opt
