#include "opt/manager.hpp"

#include "orb/dii.hpp"

namespace opt {

WorkerProblem SolverConfig::worker_problem() const {
  WorkerProblem problem;
  problem.dimension = dimension;
  problem.blocks = workers;
  problem.lower = lower;
  problem.upper = upper;
  problem.seed = seed;
  problem.work_per_eval_per_dim = work_per_eval_per_dim;
  problem.work_per_state_byte = work_per_state_byte;
  return problem;
}

naming::Name DecomposedSolver::service_name() {
  return naming::Name::parse("Workers/OptWorker");
}

DecomposedSolver::DecomposedSolver(rt::SimRuntime& runtime, SolverConfig config)
    : runtime_(runtime),
      config_(std::move(config)),
      decomposition_(Decomposition::make(config_.dimension, config_.workers)) {
  if (config_.workers < 2)
    throw corba::BAD_PARAM("decomposed solver needs at least two workers");
  if (config_.manager_host.empty())
    config_.manager_host = runtime_.worker_hosts().front();
}

std::string DecomposedSolver::host_of(const corba::ObjectRef& ref) const {
  for (const naming::Offer& offer : runtime_.naming().list_offers(service_name()))
    if (offer.ref.ior() == ref.ior()) return offer.host;
  return "?";
}

void DecomposedSolver::deploy() {
  const WorkerProblem problem = config_.worker_problem();
  runtime_.registry()->register_type(
      std::string(kOptWorkerServiceType),
      [problem] { return std::make_shared<OptWorkerServant>(problem); });

  naming::NamingContextStub root = runtime_.naming();
  try {
    root.bind_new_context(naming::Name::parse("Workers"));
  } catch (const naming::AlreadyBound&) {
    // A previous solver on this runtime already created the context.
  }
  const naming::Name name = service_name();
  if ([&] {
        try {
          root.list_offers(name);
          return false;  // offers already deployed on this runtime
        } catch (const naming::NotFound&) {
          return true;
        }
      }()) {
    runtime_.deploy_everywhere(name, std::string(kOptWorkerServiceType));
  }

  // Placement: one resolve per worker role.  With the Winner naming service
  // this spreads over the least-loaded machines; with the plain strategies
  // it is load-blind — the difference Fig. 3 measures.
  for (int j = 0; j < config_.workers; ++j) {
    corba::ObjectRef ref = runtime_.resolve(name);
    placements_.push_back(host_of(ref));
    if (config_.use_ft) {
      ft::ProxyConfig proxy_config = runtime_.make_proxy_config(
          name, std::string(kOptWorkerServiceType),
          "worker" + std::to_string(j), config_.ft_policy, ref);
      engines_.push_back(std::make_unique<ft::ProxyEngine>(std::move(proxy_config)));
    }
    worker_refs_.push_back(std::move(ref));
  }
  deployed_ = true;
}

double DecomposedSolver::evaluate_coupling(std::span<const double> coupling) {
  ++stats_.rounds;
  const corba::Value coupling_value = corba::Value::from_span(coupling);

  double total = 0.0;
  if (config_.use_ft) {
    // Fault-tolerant deferred-synchronous round via request proxies.
    std::vector<ft::RequestProxy> requests;
    requests.reserve(engines_.size());
    for (std::size_t j = 0; j < engines_.size(); ++j) {
      requests.emplace_back(*engines_[j], "solve");
      requests.back()
          .add_argument(corba::Value(static_cast<std::int64_t>(j)))
          .add_argument(coupling_value)
          .add_argument(corba::Value(config_.worker_iterations));
      requests.back().send_deferred();
    }
    for (ft::RequestProxy& request : requests) {
      request.get_response();
      total += decode_solve_outcome(request.return_value()).best_value;
      ++stats_.worker_calls;
    }
  } else {
    // Plain deferred-synchronous round: any failure aborts the computation,
    // which is exactly the fragility the paper's §1 motivates against.
    std::vector<corba::Request> requests;
    requests.reserve(worker_refs_.size());
    for (std::size_t j = 0; j < worker_refs_.size(); ++j) {
      requests.emplace_back(worker_refs_[j], "solve");
      requests.back()
          .add_argument(corba::Value(static_cast<std::int64_t>(j)))
          .add_argument(coupling_value)
          .add_argument(corba::Value(config_.worker_iterations));
      requests.back().send_deferred();
    }
    for (corba::Request& request : requests) {
      request.get_response();
      total += decode_solve_outcome(request.return_value()).best_value;
      ++stats_.worker_calls;
    }
  }

  // The manager's own coordination work, on its workstation.
  runtime_.cluster().run_local_work(config_.manager_host,
                                    config_.manager_work_per_round);
  return total;
}

SolverResult DecomposedSolver::run() {
  if (!deployed_)
    throw corba::BAD_INV_ORDER("DecomposedSolver::deploy() must run first");
  stats_ = SolverResult{};
  const double t0 = runtime_.events().now();

  const std::size_t coupling_dim =
      static_cast<std::size_t>(decomposition_.coupling_dimension());
  const std::vector<double> lower(coupling_dim, config_.lower);
  const std::vector<double> upper(coupling_dim, config_.upper);
  BoxOptions options;
  options.max_iterations = config_.manager_iterations;
  options.seed = config_.seed;
  const BoxResult result = complex_box(
      [this](std::span<const double> c) { return evaluate_coupling(c); },
      lower, upper, options);

  stats_.best_value = result.best_value;
  stats_.best_coupling = result.best;
  stats_.virtual_seconds = runtime_.events().now() - t0;
  for (const auto& engine : engines_) {
    stats_.recoveries += engine->recoveries();
    stats_.checkpoints += engine->checkpoints_taken();
    stats_.retries += engine->retries();
    stats_.checkpoint_failures += engine->checkpoint_failures();
    stats_.deadline_exhaustions += engine->deadline_exhaustions();
    stats_.backoff_waited_s += engine->backoff_waited_s();
  }
  return stats_;
}

}  // namespace opt
