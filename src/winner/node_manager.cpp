#include "winner/node_manager.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"

namespace winner {

namespace {

obs::Counter& node_reports_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("winner.node_reports_total");
  return counter;
}

}  // namespace

NodeManager::NodeManager(std::string host_name,
                         std::shared_ptr<LoadSensor> sensor,
                         std::shared_ptr<LoadInformationService> manager,
                         double period)
    : host_name_(std::move(host_name)),
      sensor_(std::move(sensor)),
      manager_(std::move(manager)),
      period_(period) {
  if (!sensor_) throw corba::BAD_PARAM("node manager requires a sensor");
  if (!manager_) throw corba::BAD_PARAM("node manager requires a system manager");
  if (!(period_ > 0)) throw corba::BAD_PARAM("report period must be positive");
}

NodeManager::~NodeManager() { stop(); }

void NodeManager::tick(double now) noexcept {
  try {
    const double load = sensor_->sample();
    manager_->report_load(host_name_, LoadSample{load, now});
    reports_sent_.fetch_add(1, std::memory_order_relaxed);
    node_reports_counter().inc();
  } catch (...) {
    // Missed report: the system manager's staleness handling compensates.
  }
}

void NodeManager::simulated_tick(sim::EventQueue& events) {
  if (!running_.load(std::memory_order_relaxed)) return;
  tick(events.now());
  events.schedule_after(period_, [this, &events] { simulated_tick(events); });
}

void NodeManager::start_simulated(sim::EventQueue& events) {
  if (running_.exchange(true)) return;
  events.schedule_after(0, [this, &events] { simulated_tick(events); });
}

void NodeManager::start_threaded() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    const auto interval = std::chrono::duration<double>(period_);
    while (running_.load(std::memory_order_relaxed)) {
      tick(std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count());
      // Sleep in small slices so stop() is responsive.
      auto remaining = interval;
      while (running_.load(std::memory_order_relaxed) &&
             remaining.count() > 0) {
        const auto slice =
            std::min(remaining, std::chrono::duration<double>(0.05));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  });
}

void NodeManager::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

}  // namespace winner
