// Hierarchical (wide-area) Winner: the paper's §5 future work (c) —
// "extending the Winner load measurement and process placement features
// for wide-area networks to enable CORBA based distributed/parallel
// meta-computing over the WWW".
//
// Each site (domain) keeps running its own system manager, fed by its
// local node managers exactly as before.  The MetaSystemManager federates
// them behind the same LoadInformationService interface, so the
// load-distributing naming service works unchanged.  Placement accounts
// for WAN cost: hosts outside the home domain carry a configurable index
// penalty (the load-equivalent of shipping requests across the wide-area
// link), so work spills to a remote site only when the local one is
// overloaded enough to justify it.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "winner/load_info.hpp"

namespace winner {

struct MetaManagerOptions {
  /// Domain whose hosts are reachable at LAN cost.
  std::string home_domain;
  /// Penalty added to hosts in other domains, in runnable-process units
  /// (scaled by each host's speed like the load itself): the equivalent
  /// load the WAN round-trips cost a caller.
  double remote_penalty = 1.0;
};

class MetaSystemManager final : public LoadInformationService {
 public:
  explicit MetaSystemManager(MetaManagerOptions options);

  /// Attaches a site's system manager.  Throws BAD_PARAM on duplicates.
  void add_domain(const std::string& domain,
                  std::shared_ptr<LoadInformationService> manager);
  std::vector<std::string> domains() const;

  /// Domain a host belongs to ("" when unknown).
  std::string domain_of(const std::string& host) const;

  // --- LoadInformationService -----------------------------------------------
  /// Hosts register with their domain manager through the meta manager by
  /// qualified name "domain/host", or directly at their site.
  void register_host(const std::string& name, double speed_index) override;
  void report_load(const std::string& name, const LoadSample& sample) override;
  std::string best_host(std::span<const std::string> candidates) override;
  std::vector<std::string> rank_hosts(
      std::span<const std::string> candidates) override;
  void notify_placement(const std::string& host) override;
  double host_index(const std::string& name) override;
  double host_speed(const std::string& name) override;
  std::vector<std::string> known_hosts() override;

 private:
  struct Located {
    std::string domain;
    LoadInformationService* manager = nullptr;
  };
  /// Finds the domain manager responsible for `host` (by asking each site
  /// for its known hosts; results are cached).
  Located locate(const std::string& host);
  double penalty_for(const std::string& domain) const {
    return domain == options_.home_domain ? 0.0 : options_.remote_penalty;
  }

  MetaManagerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<LoadInformationService>> domains_;
  std::map<std::string, std::string> host_domain_cache_;
};

}  // namespace winner
