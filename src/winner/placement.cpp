#include "winner/placement.hpp"

#include <algorithm>

namespace winner {

PlacementPlan plan_shard_placements(LoadInformationService& service,
                                    std::span<const std::string> hosts,
                                    std::size_t shards, std::size_t replicas) {
  PlacementPlan plan;
  if (shards == 0 || replicas == 0 || hosts.empty()) return plan;
  plan.shard_hosts.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    // Re-rank per shard: notify_placement below shifts the next ranking
    // away from hosts this plan already loaded.
    std::vector<std::string> ranked;
    try {
      ranked = service.rank_hosts(hosts);
    } catch (const std::exception&) {
      // No usable ranking (no reports yet, every host stale) — candidate
      // order is the deterministic fallback.
    }
    // Ranking may exclude candidates (staleness); append them so a replica
    // set still spans distinct hosts whenever enough hosts exist at all.
    for (const std::string& host : hosts) {
      if (std::find(ranked.begin(), ranked.end(), host) == ranked.end())
        ranked.push_back(host);
    }
    std::vector<std::string> replica_hosts;
    replica_hosts.reserve(replicas);
    for (std::size_t replica = 0; replica < replicas; ++replica) {
      const std::string& pick = ranked[replica % ranked.size()];
      replica_hosts.push_back(pick);
      try {
        service.notify_placement(pick);
      } catch (const std::exception&) {
        // Feedback is best-effort; the plan itself stands.
      }
    }
    plan.shard_hosts.push_back(std::move(replica_hosts));
  }
  return plan;
}

}  // namespace winner
