// CORBA skeleton and stub for the Winner system manager, making it a
// regular object service: node managers report through the ORB (oneway) and
// any naming service or tool can query rankings remotely, exactly as in the
// paper's Fig. 1 deployment.
#pragma once

#include <memory>

#include "orb/object_adapter.hpp"
#include "orb/stub.hpp"
#include "winner/load_info.hpp"

namespace winner {

/// Server-side adapter exposing a LoadInformationService implementation.
class SystemManagerServant final : public corba::Servant {
 public:
  explicit SystemManagerServant(std::shared_ptr<LoadInformationService> impl);

  std::string_view repo_id() const noexcept override {
    return kSystemManagerRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

 private:
  std::shared_ptr<LoadInformationService> impl_;
};

/// Client-side stub implementing the same interface over the wire.
class SystemManagerStub final : public corba::StubBase,
                                public LoadInformationService {
 public:
  SystemManagerStub() = default;
  explicit SystemManagerStub(corba::ObjectRef ref)
      : StubBase(std::move(ref)) {}

  void register_host(const std::string& name, double speed_index) override;
  /// Delivered as a CORBA oneway: best-effort, non-blocking.
  void report_load(const std::string& name, const LoadSample& sample) override;
  std::string best_host(std::span<const std::string> candidates) override;
  std::vector<std::string> rank_hosts(
      std::span<const std::string> candidates) override;
  void notify_placement(const std::string& host) override;
  double host_index(const std::string& name) override;
  double host_speed(const std::string& name) override;
  std::vector<std::string> known_hosts() override;
};

}  // namespace winner
