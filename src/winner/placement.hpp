// Shard placement through the Winner load service.
//
// The sharded checkpoint store (ft/sharded_store.hpp) wants its shard
// primaries spread across the least-loaded workstations and every replica
// of a shard on a *distinct* host — a shard whose primary and follower
// share a machine loses both copies to one crash.  plan_shard_placements
// asks the LoadInformationService to rank the candidate hosts, deals
// replica sets round-robin off that ranking, and reports each pick back
// via notify_placement so subsequent ranking (including the next shard's)
// sees the load the store processes are about to add — the same
// feedback loop the Winner uses for ordinary object placement.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "winner/load_info.hpp"

namespace winner {

struct PlacementPlan {
  /// shard_hosts[s][r] = host of shard s, replica r (r == 0 is the primary).
  std::vector<std::vector<std::string>> shard_hosts;
};

/// Plans `shards` replica sets of `replicas` hosts each over `hosts`.
/// Hosts within one shard are distinct whenever `hosts.size() >= replicas`
/// (with fewer hosts the set wraps — degraded but functional).  Ranking
/// failures (e.g. no load reports yet) fall back to the candidate order, so
/// the plan is always total and, for a fixed ranking, deterministic.
PlacementPlan plan_shard_placements(LoadInformationService& service,
                                    std::span<const std::string> hosts,
                                    std::size_t shards, std::size_t replicas);

}  // namespace winner
