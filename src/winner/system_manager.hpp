// The Winner system manager: central host table and ranking logic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "winner/load_info.hpp"

namespace winner {

/// Tuning knobs for the ranking policy.
struct SystemManagerOptions {
  /// Reports older than this (on the injected clock) disqualify a host from
  /// selection; 0 disables staleness checking.  Staleness doubles as cheap
  /// failure detection: a dead workstation stops reporting and drops out of
  /// the candidate set.
  double stale_after = 0.0;

  /// Clock used to timestamp placements and judge staleness.  Defaults to a
  /// monotonic real-time clock; the simulated runtime injects virtual time.
  std::function<double()> clock;

  /// Graceful degradation when every candidate's report is stale (e.g. the
  /// manager is partitioned from the load reporters): instead of throwing
  /// NoHostAvailable, stale hosts that once reported are *demoted* — ranked
  /// after all fresh hosts, ordered by their last known index — and
  /// selection proceeds on the best guess available.  Fresh reports after
  /// the partition heals reinstate normal ranking automatically.  Off by
  /// default: a lone stale host usually IS dead, and failing fast is
  /// right; the runtime turns this on where partitions are survivable.
  bool demote_stale_hosts = false;
};

/// Central Winner component.  Thread-safe.
///
/// Selection index of a host = (reported load_avg + placements made since
/// that report) / speed_index — i.e. the expected run-queue competition per
/// unit of machine speed.  Placements are tracked because a freshly placed
/// process is not yet visible in periodic load reports; a report with a
/// newer timestamp clears the placements it already observed.
class SystemManager final : public LoadInformationService {
 public:
  explicit SystemManager(SystemManagerOptions options = {});

  void register_host(const std::string& name, double speed_index) override;
  void report_load(const std::string& name, const LoadSample& sample) override;
  std::string best_host(std::span<const std::string> candidates) override;
  std::vector<std::string> rank_hosts(
      std::span<const std::string> candidates) override;
  void notify_placement(const std::string& host) override;
  double host_index(const std::string& name) override;
  double host_speed(const std::string& name) override;
  std::vector<std::string> known_hosts() override;
  /// Ranking-input version (see LoadInformationService).  Bumped by
  /// register_host/report_load/notify_placement; additionally detects hosts
  /// silently crossing the staleness boundary (a clock-driven ranking
  /// change no mutator announces) by fingerprinting per-host freshness.
  std::uint64_t load_epoch() override;

  /// Last reported sample (diagnostics; throws std::out_of_range).
  LoadSample last_sample(const std::string& name) const;

  /// Times a demoted (stale) host had to be selected because no fresh one
  /// was available — a measure of how long selections ran on stale data.
  std::uint64_t stale_selections() const;

 private:
  struct HostEntry {
    double speed_index = 1.0;
    LoadSample last;
    bool reported = false;
    /// Timestamps of placements not yet reflected in a report.
    std::vector<double> pending_placements;
  };

  double index_locked(const HostEntry& entry) const;
  bool fresh_locked(const HostEntry& entry) const;
  /// Fresh hosts ranked by index; with demote_stale_hosts, stale-but-known
  /// hosts follow after every fresh one.  `used_stale` (optional) reports
  /// whether the front of the ranking is a demoted host.
  std::vector<std::pair<double, std::string>> ranked_locked(
      std::span<const std::string> candidates, bool* used_stale) const;

  SystemManagerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, HostEntry> hosts_;
  mutable std::uint64_t stale_selections_ = 0;
  /// Ranking-input version; starts at 1 so 0 can mean "not tracked".
  std::uint64_t epoch_ = 1;
  /// Per-host freshness bits (hosts_ iteration order) as of the last
  /// load_epoch() call; a drift means time alone changed the ranking.
  std::vector<bool> freshness_fp_;
};

}  // namespace winner
