// Winner resource-management interfaces.
//
// Winner (Arndt/Freisleben/Kielmann/Thilo, PDCS'98) provides load
// distribution for a NOW: one *node manager* per workstation periodically
// measures load and reports to a central *system manager* that knows, at any
// time, which machine currently offers the best performance.  This header
// defines the client-visible interface of the system manager; the naming
// service consumes it to make load-aware resolve decisions (Fig. 1 of the
// paper).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "orb/exceptions.hpp"
#include "orb/message.hpp"

namespace winner {

inline constexpr std::string_view kSystemManagerRepoId =
    "IDL:corbaft/winner/SystemManager:1.0";

/// Raised by best_host when no candidate is registered and fresh.
struct NoHostAvailable : corba::UserException {
  explicit NoHostAvailable(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/winner/NoHostAvailable:1.0";
  }
};

/// One load measurement, as produced by a node manager.
struct LoadSample {
  /// Run-queue length (Unix load average style): number of runnable
  /// processes competing for the CPU.
  double load_avg = 0.0;
  /// When the sample was taken, on the reporting clock.
  double timestamp = 0.0;
};

/// Client API of the Winner system manager.  Implemented by the in-process
/// SystemManager and, transparently, by SystemManagerStub for remote use.
class LoadInformationService {
 public:
  virtual ~LoadInformationService() = default;

  /// Announces a workstation with its relative performance index
  /// (work units per second at full speed).
  virtual void register_host(const std::string& name, double speed_index) = 0;

  /// Periodic report from a node manager (delivered oneway when remote).
  virtual void report_load(const std::string& name, const LoadSample& sample) = 0;

  /// The host expected to complete new work soonest.  When `candidates` is
  /// empty all registered hosts compete.  Raises NoHostAvailable when no
  /// candidate is registered and fresh.
  virtual std::string best_host(std::span<const std::string> candidates) = 0;

  /// All eligible candidates ordered best first.
  virtual std::vector<std::string> rank_hosts(
      std::span<const std::string> candidates) = 0;

  /// Tells the manager a process has just been placed on `host` so that
  /// subsequent decisions account for load not yet visible in reports.
  virtual void notify_placement(const std::string& host) = 0;

  /// Current selection index of a host (lower is better).
  virtual double host_index(const std::string& name) = 0;

  /// Registered performance index of a host (work units per second).
  virtual double host_speed(const std::string& name) = 0;

  /// Names of all registered hosts.
  virtual std::vector<std::string> known_hosts() = 0;

  /// Monotonic version counter over the manager's ranking inputs: as long
  /// as two calls return the same non-zero value, rank_hosts() over the
  /// same candidates returns the same ordering in between.  Returning 0
  /// means epochs are not tracked (remote stubs, simple implementations)
  /// and callers must not cache ranking results.  Non-pure with a
  /// not-tracked default so the wire protocol and existing implementations
  /// are unaffected.
  virtual std::uint64_t load_epoch() { return 0; }
};

}  // namespace winner
