#include "winner/system_manager.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>

#include "obs/event_channel.hpp"
#include "obs/metrics.hpp"

namespace winner {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WinnerMetrics {
  obs::Counter& load_reports =
      obs::MetricsRegistry::global().counter("winner.load_reports_total");
  obs::Counter& demoted_selections = obs::MetricsRegistry::global().counter(
      "winner.demoted_selections_total");
  /// Age of the most outdated load report among reporting hosts, refreshed
  /// at each selection — the load-report freshness signal.
  obs::Gauge& report_age_max =
      obs::MetricsRegistry::global().gauge("winner.report_age_max_s");
};

WinnerMetrics& winner_metrics() {
  static WinnerMetrics metrics;
  return metrics;
}

}  // namespace

SystemManager::SystemManager(SystemManagerOptions options)
    : options_(std::move(options)) {
  if (!options_.clock) options_.clock = steady_seconds;
}

void SystemManager::register_host(const std::string& name, double speed_index) {
  if (name.empty()) throw corba::BAD_PARAM("empty host name");
  if (!(speed_index > 0)) throw corba::BAD_PARAM("speed index must be positive");
  std::lock_guard lock(mu_);
  HostEntry& entry = hosts_[name];  // re-registration updates the speed
  entry.speed_index = speed_index;
  ++epoch_;
}

void SystemManager::report_load(const std::string& name,
                                const LoadSample& sample) {
  double index = 0.0;
  {
    std::lock_guard lock(mu_);
    auto it = hosts_.find(name);
    if (it == hosts_.end()) return;  // reports from unknown hosts are dropped
    HostEntry& entry = it->second;
    entry.last = sample;
    entry.reported = true;
    winner_metrics().load_reports.inc();
    // Placements made before the sample was taken are now visible in the
    // measured load; only newer ones still need compensation.
    std::erase_if(entry.pending_placements, [&](double placed_at) {
      return placed_at <= sample.timestamp;
    });
    ++epoch_;
    index = index_locked(entry);
  }
  // Outside the lock: a slow channel consumer must never serialize the
  // selection path.  Coalesce-by-key (key = host) keeps only the newest
  // report for a backlogged subscriber, matching the manager's own state.
  if (obs::events_wanted()) {
    obs::publish_event(obs::Topic::load_report, /*host=*/name, /*key=*/name,
                       {obs::num_field("index", index),
                        obs::num_field("load_avg", sample.load_avg),
                        obs::num_field("timestamp", sample.timestamp)});
  }
}

double SystemManager::index_locked(const HostEntry& entry) const {
  const double effective_load =
      entry.last.load_avg + static_cast<double>(entry.pending_placements.size());
  return effective_load / entry.speed_index;
}

bool SystemManager::fresh_locked(const HostEntry& entry) const {
  if (!entry.reported) return false;
  if (options_.stale_after <= 0) return true;
  return options_.clock() - entry.last.timestamp <= options_.stale_after;
}

std::vector<std::pair<double, std::string>> SystemManager::ranked_locked(
    std::span<const std::string> candidates, bool* used_stale) const {
  std::vector<std::pair<double, std::string>> ranked;
  std::vector<std::pair<double, std::string>> demoted;
  auto consider = [&](const std::string& name, const HostEntry& entry) {
    if (fresh_locked(entry))
      ranked.emplace_back(index_locked(entry), name);
    else if (options_.demote_stale_hosts && entry.reported)
      demoted.emplace_back(index_locked(entry), name);
  };
  if (candidates.empty()) {
    for (const auto& [name, entry] : hosts_) consider(name, entry);
  } else {
    for (const std::string& name : candidates) {
      auto it = hosts_.find(name);
      if (it != hosts_.end()) consider(name, it->second);
    }
  }
  auto by_index = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::stable_sort(ranked.begin(), ranked.end(), by_index);
  std::stable_sort(demoted.begin(), demoted.end(), by_index);
  if (used_stale) *used_stale = ranked.empty() && !demoted.empty();
  ranked.insert(ranked.end(), std::make_move_iterator(demoted.begin()),
                std::make_move_iterator(demoted.end()));
  return ranked;
}

std::string SystemManager::best_host(std::span<const std::string> candidates) {
  std::lock_guard lock(mu_);
  bool used_stale = false;
  auto ranked = ranked_locked(candidates, &used_stale);
  double max_age = 0.0;
  const double at = options_.clock();
  for (const auto& [name, entry] : hosts_)
    if (entry.reported)
      max_age = std::max(max_age, at - entry.last.timestamp);
  winner_metrics().report_age_max.set(max_age);
  if (ranked.empty())
    throw NoHostAvailable("no registered, fresh host among " +
                          std::to_string(candidates.size()) + " candidates");
  if (used_stale) {
    ++stale_selections_;
    winner_metrics().demoted_selections.inc();
  }
  return ranked.front().second;
}

std::vector<std::string> SystemManager::rank_hosts(
    std::span<const std::string> candidates) {
  std::lock_guard lock(mu_);
  auto ranked = ranked_locked(candidates, nullptr);
  std::vector<std::string> names;
  names.reserve(ranked.size());
  for (auto& [index, name] : ranked) names.push_back(std::move(name));
  return names;
}

void SystemManager::notify_placement(const std::string& host) {
  std::lock_guard lock(mu_);
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return;
  it->second.pending_placements.push_back(options_.clock());
  ++epoch_;
}

double SystemManager::host_index(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw corba::BAD_PARAM("unknown host: " + name);
  return index_locked(it->second);
}

double SystemManager::host_speed(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw corba::BAD_PARAM("unknown host: " + name);
  return it->second.speed_index;
}

std::vector<std::string> SystemManager::known_hosts() {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) names.push_back(name);
  return names;
}

std::uint64_t SystemManager::load_epoch() {
  std::lock_guard lock(mu_);
  // Mutators bump epoch_ directly, but freshness is a function of the
  // *clock*: a host can cross stale_after (changing the ranking) with no
  // call announcing it.  Fingerprint per-host freshness and bump on drift,
  // so "epoch unchanged" really does imply "ranking unchanged".
  std::vector<bool> fp;
  fp.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) fp.push_back(fresh_locked(entry));
  if (fp != freshness_fp_) {
    freshness_fp_ = std::move(fp);
    ++epoch_;
  }
  return epoch_;
}

LoadSample SystemManager::last_sample(const std::string& name) const {
  std::lock_guard lock(mu_);
  return hosts_.at(name).last;
}

std::uint64_t SystemManager::stale_selections() const {
  std::lock_guard lock(mu_);
  return stale_selections_;
}

}  // namespace winner
