// Load sensors: where node managers get their measurements.
//
// The paper's node managers read "data like CPU utilization which is
// collected by the host operating system".  Three sensors are provided: a
// simulator sensor reading a virtual host's run queue, a real /proc/loadavg
// sensor for Linux deployments, and a scriptable sensor for tests.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "sim/host.hpp"

namespace winner {

/// Produces the current run-queue length (Unix load average style).
class LoadSensor {
 public:
  virtual ~LoadSensor() = default;
  virtual double sample() = 0;
};

/// Reads a simulated host: resident tasks + background processes.  A dead
/// host has no working sensor — sampling throws, so its node manager stops
/// reporting and the system manager's staleness handling marks it down.
class SimHostSensor final : public LoadSensor {
 public:
  explicit SimHostSensor(const sim::Host& host) : host_(host) {}
  double sample() override {
    if (!host_.alive())
      throw std::runtime_error("host " + host_.name() + " is down");
    return host_.observed_load();
  }

 private:
  const sim::Host& host_;
};

/// Reads the 1-minute load average from /proc/loadavg (Linux).  Throws
/// std::runtime_error when the file is unavailable.
class ProcLoadavgSensor final : public LoadSensor {
 public:
  explicit ProcLoadavgSensor(std::string path = "/proc/loadavg");
  double sample() override;

 private:
  std::string path_;
};

/// Test/bench sensor returning whatever the supplied function produces.
class CallbackSensor final : public LoadSensor {
 public:
  explicit CallbackSensor(std::function<double()> fn) : fn_(std::move(fn)) {}
  double sample() override { return fn_(); }

 private:
  std::function<double()> fn_;
};

}  // namespace winner
