#include "winner/system_manager_corba.hpp"

namespace winner {

namespace {

corba::RegisterUserException<NoHostAvailable> register_no_host_available;

corba::Value strings_to_value(const std::vector<std::string>& names) {
  corba::ValueSeq seq;
  seq.reserve(names.size());
  for (const std::string& name : names) seq.emplace_back(name);
  return corba::Value(std::move(seq));
}

std::vector<std::string> value_to_strings(const corba::Value& v) {
  std::vector<std::string> names;
  for (const corba::Value& item : v.as_sequence())
    names.push_back(item.as_string());
  return names;
}

corba::Value strings_to_value(std::span<const std::string> names) {
  corba::ValueSeq seq;
  seq.reserve(names.size());
  for (const std::string& name : names) seq.emplace_back(name);
  return corba::Value(std::move(seq));
}

}  // namespace

SystemManagerServant::SystemManagerServant(
    std::shared_ptr<LoadInformationService> impl)
    : impl_(std::move(impl)) {
  if (!impl_) throw corba::BAD_PARAM("null SystemManager implementation");
}

corba::Value SystemManagerServant::dispatch(std::string_view op,
                                            const corba::ValueSeq& args) {
  if (op == "register_host") {
    check_arity(op, args, 2);
    impl_->register_host(args[0].as_string(), args[1].as_f64());
    return {};
  }
  if (op == "report_load") {
    check_arity(op, args, 3);
    impl_->report_load(args[0].as_string(),
                       LoadSample{args[1].as_f64(), args[2].as_f64()});
    return {};
  }
  if (op == "best_host") {
    check_arity(op, args, 1);
    const auto candidates = value_to_strings(args[0]);
    return corba::Value(impl_->best_host(candidates));
  }
  if (op == "rank_hosts") {
    check_arity(op, args, 1);
    const auto candidates = value_to_strings(args[0]);
    return strings_to_value(impl_->rank_hosts(candidates));
  }
  if (op == "notify_placement") {
    check_arity(op, args, 1);
    impl_->notify_placement(args[0].as_string());
    return {};
  }
  if (op == "host_index") {
    check_arity(op, args, 1);
    return corba::Value(impl_->host_index(args[0].as_string()));
  }
  if (op == "host_speed") {
    check_arity(op, args, 1);
    return corba::Value(impl_->host_speed(args[0].as_string()));
  }
  if (op == "known_hosts") {
    check_arity(op, args, 0);
    return strings_to_value(impl_->known_hosts());
  }
  throw corba::BAD_OPERATION(std::string(op));
}

void SystemManagerStub::register_host(const std::string& name,
                                      double speed_index) {
  call("register_host", {corba::Value(name), corba::Value(speed_index)});
}

void SystemManagerStub::report_load(const std::string& name,
                                    const LoadSample& sample) {
  ref_.invoke_oneway("report_load", {corba::Value(name),
                                     corba::Value(sample.load_avg),
                                     corba::Value(sample.timestamp)});
}

std::string SystemManagerStub::best_host(
    std::span<const std::string> candidates) {
  return call("best_host", {strings_to_value(candidates)}).as_string();
}

std::vector<std::string> SystemManagerStub::rank_hosts(
    std::span<const std::string> candidates) {
  return value_to_strings(call("rank_hosts", {strings_to_value(candidates)}));
}

void SystemManagerStub::notify_placement(const std::string& host) {
  call("notify_placement", {corba::Value(host)});
}

double SystemManagerStub::host_index(const std::string& name) {
  return call("host_index", {corba::Value(name)}).as_f64();
}

double SystemManagerStub::host_speed(const std::string& name) {
  return call("host_speed", {corba::Value(name)}).as_f64();
}

std::vector<std::string> SystemManagerStub::known_hosts() {
  return value_to_strings(call("known_hosts", {}));
}

}  // namespace winner
