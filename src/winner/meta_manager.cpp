#include "winner/meta_manager.hpp"

#include <algorithm>

namespace winner {

MetaSystemManager::MetaSystemManager(MetaManagerOptions options)
    : options_(std::move(options)) {
  if (options_.home_domain.empty())
    throw corba::BAD_PARAM("meta manager requires a home domain");
  if (options_.remote_penalty < 0)
    throw corba::BAD_PARAM("remote penalty must be >= 0");
}

void MetaSystemManager::add_domain(
    const std::string& domain, std::shared_ptr<LoadInformationService> manager) {
  if (domain.empty()) throw corba::BAD_PARAM("empty domain name");
  if (!manager) throw corba::BAD_PARAM("null domain manager");
  std::lock_guard lock(mu_);
  auto [it, inserted] = domains_.emplace(domain, std::move(manager));
  if (!inserted) throw corba::BAD_PARAM("duplicate domain: " + domain);
}

std::vector<std::string> MetaSystemManager::domains() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const auto& [domain, manager] : domains_) names.push_back(domain);
  return names;
}

MetaSystemManager::Located MetaSystemManager::locate(const std::string& host) {
  std::lock_guard lock(mu_);
  auto cached = host_domain_cache_.find(host);
  if (cached != host_domain_cache_.end()) {
    auto it = domains_.find(cached->second);
    if (it != domains_.end()) return {cached->second, it->second.get()};
  }
  for (const auto& [domain, manager] : domains_) {
    const std::vector<std::string> hosts = manager->known_hosts();
    if (std::find(hosts.begin(), hosts.end(), host) != hosts.end()) {
      host_domain_cache_[host] = domain;
      return {domain, manager.get()};
    }
  }
  return {};
}

std::string MetaSystemManager::domain_of(const std::string& host) const {
  std::lock_guard lock(mu_);
  auto it = host_domain_cache_.find(host);
  return it == host_domain_cache_.end() ? std::string() : it->second;
}

void MetaSystemManager::register_host(const std::string& name,
                                      double speed_index) {
  // Qualified form "domain/host" routes to that site's manager.
  const std::size_t slash = name.find('/');
  if (slash == std::string::npos)
    throw corba::BAD_PARAM(
        "meta manager registration requires a 'domain/host' qualified name");
  const std::string domain = name.substr(0, slash);
  const std::string host = name.substr(slash + 1);
  std::shared_ptr<LoadInformationService> manager;
  {
    std::lock_guard lock(mu_);
    auto it = domains_.find(domain);
    if (it == domains_.end())
      throw corba::BAD_PARAM("unknown domain: " + domain);
    manager = it->second;
    host_domain_cache_[host] = domain;
  }
  manager->register_host(host, speed_index);
}

void MetaSystemManager::report_load(const std::string& name,
                                    const LoadSample& sample) {
  const Located located = locate(name);
  if (located.manager != nullptr) located.manager->report_load(name, sample);
}

std::vector<std::string> MetaSystemManager::rank_hosts(
    std::span<const std::string> candidates) {
  // Collect each site's fresh, ranked hosts and merge with the WAN penalty
  // applied to non-home domains.
  std::vector<std::pair<std::string, std::shared_ptr<LoadInformationService>>>
      sites;
  {
    std::lock_guard lock(mu_);
    for (const auto& [domain, manager] : domains_)
      sites.emplace_back(domain, manager);
  }
  std::vector<std::pair<double, std::string>> merged;
  for (const auto& [domain, manager] : sites) {
    std::vector<std::string> site_candidates;
    if (!candidates.empty()) {
      for (const std::string& host : candidates) {
        const Located located = locate(host);
        if (located.domain == domain) site_candidates.push_back(host);
      }
      if (site_candidates.empty()) continue;
    }
    const double penalty = penalty_for(domain);
    for (const std::string& host : manager->rank_hosts(site_candidates)) {
      // The penalty is expressed in runnable-process units; the index is
      // load per unit speed, so scale by the host's speed.
      merged.emplace_back(
          manager->host_index(host) + penalty / manager->host_speed(host),
          host);
      std::lock_guard lock(mu_);
      host_domain_cache_[host] = domain;
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> ranked;
  ranked.reserve(merged.size());
  for (auto& [index, host] : merged) ranked.push_back(std::move(host));
  return ranked;
}

std::string MetaSystemManager::best_host(
    std::span<const std::string> candidates) {
  const std::vector<std::string> ranked = rank_hosts(candidates);
  if (ranked.empty())
    throw NoHostAvailable("no fresh host in any domain among " +
                          std::to_string(candidates.size()) + " candidates");
  return ranked.front();
}

void MetaSystemManager::notify_placement(const std::string& host) {
  const Located located = locate(host);
  if (located.manager != nullptr) located.manager->notify_placement(host);
}

double MetaSystemManager::host_index(const std::string& name) {
  const Located located = locate(name);
  if (located.manager == nullptr)
    throw corba::BAD_PARAM("unknown host: " + name);
  return located.manager->host_index(name) +
         penalty_for(located.domain) / located.manager->host_speed(name);
}

double MetaSystemManager::host_speed(const std::string& name) {
  const Located located = locate(name);
  if (located.manager == nullptr)
    throw corba::BAD_PARAM("unknown host: " + name);
  return located.manager->host_speed(name);
}

std::vector<std::string> MetaSystemManager::known_hosts() {
  std::vector<std::pair<std::string, std::shared_ptr<LoadInformationService>>>
      sites;
  {
    std::lock_guard lock(mu_);
    for (const auto& [domain, manager] : domains_)
      sites.emplace_back(domain, manager);
  }
  std::vector<std::string> all;
  for (const auto& [domain, manager] : sites) {
    for (std::string& host : manager->known_hosts())
      all.push_back(std::move(host));
  }
  return all;
}

}  // namespace winner
