// Winner node manager: one per workstation, periodically samples the local
// load and reports it to the system manager.
//
// Two drive modes cover both deployments:
//   * simulated — tick events self-reschedule on the cluster's event queue,
//     so reports happen in virtual time;
//   * threaded  — a background thread ticks on the wall clock (used by the
//     real-TCP example).
// Reports are delivered through the LoadInformationService interface, which
// may be the in-process SystemManager or a SystemManagerStub (oneway ORB
// messages), matching the paper's remote node managers.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "sim/event_queue.hpp"
#include "winner/load_info.hpp"
#include "winner/load_sensor.hpp"

namespace winner {

class NodeManager {
 public:
  /// `period` is the reporting interval in (virtual or real) seconds.
  NodeManager(std::string host_name, std::shared_ptr<LoadSensor> sensor,
              std::shared_ptr<LoadInformationService> manager, double period);
  ~NodeManager();

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  const std::string& host_name() const noexcept { return host_name_; }
  double period() const noexcept { return period_; }
  std::uint64_t reports_sent() const noexcept { return reports_sent_.load(); }

  /// Samples and reports once, timestamped `now`.  Exposed for tests and
  /// used internally by both drive modes.  Sensor/report failures are
  /// swallowed (a wedged sensor must not kill the manager); the report
  /// simply does not happen, and staleness handling takes over.
  void tick(double now) noexcept;

  /// Starts self-rescheduling ticks on a virtual clock.  The first report
  /// fires immediately (time zero), so placement decisions made at startup
  /// already see every node.
  void start_simulated(sim::EventQueue& events);

  /// Starts a wall-clock reporting thread.
  void start_threaded();

  /// Stops either drive mode.  Idempotent; also called by the destructor.
  void stop();

 private:
  void simulated_tick(sim::EventQueue& events);

  std::string host_name_;
  std::shared_ptr<LoadSensor> sensor_;
  std::shared_ptr<LoadInformationService> manager_;
  double period_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> reports_sent_{0};
  std::thread thread_;
};

}  // namespace winner
