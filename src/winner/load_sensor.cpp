#include "winner/load_sensor.hpp"

#include <fstream>
#include <stdexcept>

namespace winner {

ProcLoadavgSensor::ProcLoadavgSensor(std::string path) : path_(std::move(path)) {}

double ProcLoadavgSensor::sample() {
  std::ifstream in(path_);
  double one_minute = 0.0;
  if (!(in >> one_minute))
    throw std::runtime_error("cannot read load average from " + path_);
  return one_minute;
}

}  // namespace winner
