#include "obs/orbtop.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "naming/naming_stub.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-width cell, left-aligned, truncated with no ellipsis (a terminal
/// table, not a report).
std::string cell(std::string text, std::size_t width) {
  if (text.size() > width) text.resize(width);
  text.append(width - text.size() + 1, ' ');
  return text;
}

std::string num_cell(double v, std::size_t width, const char* spec = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return cell(buf, width);
}

std::string int_cell(std::uint64_t v, std::size_t width) {
  return cell(std::to_string(v), width);
}

}  // namespace

ClusterSnapshot collect_cluster(naming::NamingContext& root) {
  ClusterSnapshot snapshot;
  snapshot.collected_at = now();

  for (const naming::Binding& binding : root.list()) {
    if (binding.is_context || binding.offer_count == 0) continue;
    if (naming::is_reserved_id(binding.name.front().id)) continue;
    snapshot.offers.push_back(
        {binding.name.to_string(), binding.offer_count});
  }
  std::sort(snapshot.offers.begin(), snapshot.offers.end(),
            [](const OfferLine& a, const OfferLine& b) { return a.name < b.name; });

  naming::Name obs_name;
  obs_name.append(std::string(naming::kObsContextId));
  naming::NamingContextStub obs_context(root.resolve(obs_name));
  for (const naming::Binding& binding : obs_context.list()) {
    NodeStatus node;
    node.name = binding.name.to_string();
    try {
      TelemetryStub telemetry(obs_context.resolve(binding.name));
      node.health = telemetry.health();
      node.reachable = true;
    } catch (const std::exception& error) {
      node.error = error.what();
    }
    snapshot.nodes.push_back(std::move(node));
  }
  std::sort(snapshot.nodes.begin(), snapshot.nodes.end(),
            [](const NodeStatus& a, const NodeStatus& b) { return a.name < b.name; });
  return snapshot;
}

std::string render_table(const ClusterSnapshot& snapshot,
                         const ClusterSnapshot* prev) {
  // Rank reachable hosts by Winner load index, lower first; unknown (-1)
  // and unreachable hosts sink to the bottom.
  std::vector<const NodeStatus*> ranked;
  ranked.reserve(snapshot.nodes.size());
  for (const NodeStatus& node : snapshot.nodes) ranked.push_back(&node);
  auto rank_key = [](const NodeStatus& node) {
    if (!node.reachable) return 2;
    return node.health.load_index < 0 ? 1 : 0;
  };
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const NodeStatus* a, const NodeStatus* b) {
                     const int ka = rank_key(*a), kb = rank_key(*b);
                     if (ka != kb) return ka < kb;
                     if (ka == 0) return a->health.load_index < b->health.load_index;
                     return a->name < b->name;
                   });

  std::string out;
  out += cell("HOST", 12) + cell("RANK", 4) + cell("LOAD", 8) +
         cell("AGE", 7) + cell("RPCS", 8) + cell("RPC/S", 8) +
         cell("P50", 9) + cell("P99", 9) + cell("RECOV", 5) +
         cell("CKPT", 6) + cell("QUAR", 4) + cell("DEPTH", 5) +
         cell("DUMPS", 5) + cell("SESS", 5) + cell("RESUM", 6) +
         cell("RETX", 5) + cell("CONN", 5);
  out += '\n';
  std::size_t rank = 0;
  for (const NodeStatus* node : ranked) {
    out += cell(node->name, 12);
    if (!node->reachable) {
      out += cell("-", 4) + "unreachable: " + node->error + '\n';
      continue;
    }
    const HealthReport& h = node->health;
    out += int_cell(++rank, 4);
    out += h.load_index < 0 ? cell("-", 8) : num_cell(h.load_index, 8);
    out += h.report_age < 0 ? cell("-", 7) : num_cell(h.report_age, 7, "%.2f");
    out += int_cell(h.rpcs, 8);
    std::string rate = "-";
    if (prev) {
      for (const NodeStatus& p : prev->nodes) {
        if (p.name != node->name || !p.reachable) continue;
        const double dt = h.now - p.health.now;
        if (dt > 0) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        static_cast<double>(h.rpcs - p.health.rpcs) / dt);
          rate = buf;
        }
        break;
      }
    }
    out += cell(rate, 8);
    out += num_cell(h.rpc_p50, 9);
    out += num_cell(h.rpc_p99, 9);
    out += int_cell(h.recoveries, 5);
    out += int_cell(h.checkpoints, 6);
    out += int_cell(h.quarantined, 4);
    out += int_cell(h.dispatch_queue_depth, 5);
    out += int_cell(h.auto_dumps, 5);
    out += int_cell(h.sessions_active, 5);
    out += int_cell(h.session_resumes, 6);
    out += int_cell(h.session_retransmits, 5);
    out += int_cell(h.tcp_connections, 5);
    out += '\n';
  }
  if (!snapshot.offers.empty()) {
    out += "\noffers:\n";
    for (const OfferLine& line : snapshot.offers)
      out += "  " + line.name + ": " + std::to_string(line.offers) +
             " offer(s)\n";
  }
  return out;
}

std::string render_json(const ClusterSnapshot& snapshot) {
  std::string out = "{\"schema_version\": 1, \"collected_at\": " +
                    format_double(snapshot.collected_at) + ", \"nodes\": [";
  bool first = true;
  for (const NodeStatus& node : snapshot.nodes) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(node.name) + "\", \"reachable\": ";
    if (!node.reachable) {
      out += "false, \"error\": \"" + json_escape(node.error) + "\"}";
      continue;
    }
    const HealthReport& h = node.health;
    out += "true, \"health\": {";
    out += "\"host\": \"" + json_escape(h.host) + "\"";
    out += ", \"now\": " + format_double(h.now);
    out += ", \"report_age\": " + format_double(h.report_age);
    out += ", \"load_index\": " + format_double(h.load_index);
    out += ", \"quarantined\": " + std::to_string(h.quarantined);
    out += ", \"dispatch_queue_depth\": " +
           std::to_string(h.dispatch_queue_depth);
    out += ", \"rpcs\": " + std::to_string(h.rpcs);
    out += ", \"rpc_p50\": " + format_double(h.rpc_p50);
    out += ", \"rpc_p99\": " + format_double(h.rpc_p99);
    out += ", \"recoveries\": " + std::to_string(h.recoveries);
    out += ", \"checkpoints\": " + std::to_string(h.checkpoints);
    out += ", \"checkpoint_bytes\": " + std::to_string(h.checkpoint_bytes);
    out += ", \"flight_recorded\": " + std::to_string(h.flight_recorded);
    out += ", \"auto_dumps\": " + std::to_string(h.auto_dumps);
    out += ", \"sessions_active\": " + std::to_string(h.sessions_active);
    out += ", \"session_resumes\": " + std::to_string(h.session_resumes);
    out += ", \"session_retransmits\": " +
           std::to_string(h.session_retransmits);
    out += ", \"tcp_connections\": " + std::to_string(h.tcp_connections);
    out += "}}";
  }
  out += "], \"offers\": [";
  first = true;
  for (const OfferLine& line : snapshot.offers) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(line.name) +
           "\", \"offers\": " + std::to_string(line.offers) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
