#include "obs/orbtop.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "naming/naming_stub.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-width cell, left-aligned, truncated with no ellipsis (a terminal
/// table, not a report).
std::string cell(std::string text, std::size_t width) {
  if (text.size() > width) text.resize(width);
  text.append(width - text.size() + 1, ' ');
  return text;
}

std::string num_cell(double v, std::size_t width, const char* spec = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return cell(buf, width);
}

std::string int_cell(std::uint64_t v, std::size_t width) {
  return cell(std::to_string(v), width);
}

}  // namespace

ClusterSnapshot collect_cluster(naming::NamingContext& root) {
  ClusterSnapshot snapshot;
  snapshot.collected_at = now();

  for (const naming::Binding& binding : root.list()) {
    if (binding.is_context || binding.offer_count == 0) continue;
    if (naming::is_reserved_id(binding.name.front().id)) continue;
    snapshot.offers.push_back(
        {binding.name.to_string(), binding.offer_count});
  }
  std::sort(snapshot.offers.begin(), snapshot.offers.end(),
            [](const OfferLine& a, const OfferLine& b) { return a.name < b.name; });

  naming::Name obs_name;
  obs_name.append(std::string(naming::kObsContextId));
  naming::NamingContextStub obs_context(root.resolve(obs_name));
  for (const naming::Binding& binding : obs_context.list()) {
    NodeStatus node;
    node.name = binding.name.to_string();
    try {
      TelemetryStub telemetry(obs_context.resolve(binding.name));
      node.health = telemetry.health();
      node.reachable = true;
    } catch (const std::exception& error) {
      node.error = error.what();
    }
    snapshot.nodes.push_back(std::move(node));
  }
  std::sort(snapshot.nodes.begin(), snapshot.nodes.end(),
            [](const NodeStatus& a, const NodeStatus& b) { return a.name < b.name; });
  return snapshot;
}

std::string render_table(const ClusterSnapshot& snapshot,
                         const ClusterSnapshot* prev) {
  // Rank reachable hosts by Winner load index, lower first; unknown (-1)
  // and unreachable hosts sink to the bottom.
  std::vector<const NodeStatus*> ranked;
  ranked.reserve(snapshot.nodes.size());
  for (const NodeStatus& node : snapshot.nodes) ranked.push_back(&node);
  auto rank_key = [](const NodeStatus& node) {
    if (!node.reachable) return 2;
    return node.health.load_index < 0 ? 1 : 0;
  };
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const NodeStatus* a, const NodeStatus* b) {
                     const int ka = rank_key(*a), kb = rank_key(*b);
                     if (ka != kb) return ka < kb;
                     if (ka == 0) return a->health.load_index < b->health.load_index;
                     return a->name < b->name;
                   });

  std::string out;
  out += cell("HOST", 12) + cell("RANK", 4) + cell("LOAD", 8) +
         cell("AGE", 7) + cell("RPCS", 8) + cell("RPC/S", 8) +
         cell("P50", 9) + cell("P99", 9) + cell("RECOV", 5) +
         cell("CKPT", 6) + cell("QUAR", 4) + cell("DEPTH", 5) +
         cell("DUMPS", 5) + cell("SESS", 5) + cell("RESUM", 6) +
         cell("RETX", 5) + cell("CONN", 5);
  out += '\n';
  std::size_t rank = 0;
  for (const NodeStatus* node : ranked) {
    out += cell(node->name, 12);
    if (!node->reachable) {
      out += cell("-", 4) + "unreachable: " + node->error + '\n';
      continue;
    }
    const HealthReport& h = node->health;
    out += int_cell(++rank, 4);
    out += h.load_index < 0 ? cell("-", 8) : num_cell(h.load_index, 8);
    out += h.report_age < 0 ? cell("-", 7) : num_cell(h.report_age, 7, "%.2f");
    out += int_cell(h.rpcs, 8);
    std::string rate = "-";
    if (prev) {
      for (const NodeStatus& p : prev->nodes) {
        if (p.name != node->name || !p.reachable) continue;
        const double dt = h.now - p.health.now;
        if (dt > 0) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        static_cast<double>(h.rpcs - p.health.rpcs) / dt);
          rate = buf;
        }
        break;
      }
    }
    out += cell(rate, 8);
    out += num_cell(h.rpc_p50, 9);
    out += num_cell(h.rpc_p99, 9);
    out += int_cell(h.recoveries, 5);
    out += int_cell(h.checkpoints, 6);
    out += int_cell(h.quarantined, 4);
    out += int_cell(h.dispatch_queue_depth, 5);
    out += int_cell(h.auto_dumps, 5);
    out += int_cell(h.sessions_active, 5);
    out += int_cell(h.session_resumes, 6);
    out += int_cell(h.session_retransmits, 5);
    out += int_cell(h.tcp_connections, 5);
    out += '\n';
  }
  if (!snapshot.offers.empty()) {
    out += "\noffers:\n";
    for (const OfferLine& line : snapshot.offers)
      out += "  " + line.name + ": " + std::to_string(line.offers) +
             " offer(s)\n";
  }
  if (!snapshot.shards.empty()) {
    out += "\nshards:\n";
    out += "  " + cell("SHARD", 6) + cell("HOST", 12) + cell("ROLE", 8) +
           cell("VERSION", 8) + cell("LAG", 5) + cell("FOLLOW", 6) + '\n';
    for (const ShardLine& line : snapshot.shards) {
      out += "  " + int_cell(line.shard, 6) + cell(line.host, 12) +
             cell(line.role, 8) + int_cell(line.version, 8) +
             int_cell(line.lag, 5) + int_cell(line.followers, 6) + '\n';
    }
  }
  return out;
}

std::string render_json(const ClusterSnapshot& snapshot) {
  std::string out = "{\"schema_version\": 1, \"collected_at\": " +
                    format_double(snapshot.collected_at) + ", \"transport\": \"" +
                    json_escape(snapshot.transport) + "\", \"nodes\": [";
  bool first = true;
  for (const NodeStatus& node : snapshot.nodes) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(node.name) + "\", \"reachable\": ";
    if (!node.reachable) {
      out += "false, \"error\": \"" + json_escape(node.error) + "\"}";
      continue;
    }
    const HealthReport& h = node.health;
    out += "true, \"health\": {";
    out += "\"host\": \"" + json_escape(h.host) + "\"";
    out += ", \"now\": " + format_double(h.now);
    out += ", \"report_age\": " + format_double(h.report_age);
    out += ", \"load_index\": " + format_double(h.load_index);
    out += ", \"quarantined\": " + std::to_string(h.quarantined);
    out += ", \"dispatch_queue_depth\": " +
           std::to_string(h.dispatch_queue_depth);
    out += ", \"rpcs\": " + std::to_string(h.rpcs);
    out += ", \"rpc_p50\": " + format_double(h.rpc_p50);
    out += ", \"rpc_p99\": " + format_double(h.rpc_p99);
    out += ", \"recoveries\": " + std::to_string(h.recoveries);
    out += ", \"checkpoints\": " + std::to_string(h.checkpoints);
    out += ", \"checkpoint_bytes\": " + std::to_string(h.checkpoint_bytes);
    out += ", \"flight_recorded\": " + std::to_string(h.flight_recorded);
    out += ", \"auto_dumps\": " + std::to_string(h.auto_dumps);
    out += ", \"sessions_active\": " + std::to_string(h.sessions_active);
    out += ", \"session_resumes\": " + std::to_string(h.session_resumes);
    out += ", \"session_retransmits\": " +
           std::to_string(h.session_retransmits);
    out += ", \"tcp_connections\": " + std::to_string(h.tcp_connections);
    out += "}}";
  }
  out += "], \"offers\": [";
  first = true;
  for (const OfferLine& line : snapshot.offers) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(line.name) +
           "\", \"offers\": " + std::to_string(line.offers) + "}";
  }
  out += "], \"shards\": [";
  first = true;
  for (const ShardLine& line : snapshot.shards) {
    if (!first) out += ", ";
    first = false;
    out += "{\"shard\": " + std::to_string(line.shard) + ", \"host\": \"" +
           json_escape(line.host) + "\", \"role\": \"" +
           json_escape(line.role) + "\", \"version\": " +
           std::to_string(line.version) + ", \"lag\": " +
           std::to_string(line.lag) +
           ", \"followers\": " + std::to_string(line.followers) + "}";
  }
  out += "]}";
  return out;
}

// --- push collector ----------------------------------------------------------

namespace {

const EventField* find_field(const Event& event, std::string_view name) {
  for (const EventField& field : event.fields) {
    if (field.name == name) return &field;
  }
  return nullptr;
}

std::uint64_t u64_field(const Event& event, std::string_view name) {
  const EventField* field = find_field(event, name);
  return field ? (field->kind == EventField::Kind::f64
                      ? static_cast<std::uint64_t>(std::max(0.0, field->f64))
                      : field->u64)
               : 0;
}

double f64_field(const Event& event, std::string_view name) {
  const EventField* field = find_field(event, name);
  return field ? (field->kind == EventField::Kind::u64
                      ? static_cast<double>(field->u64)
                      : field->f64)
               : 0.0;
}

std::string str_field(const Event& event, std::string_view name) {
  const EventField* field = find_field(event, name);
  return field && field->kind == EventField::Kind::str ? field->str
                                                       : std::string();
}

}  // namespace

struct PushCollector::State {
  mutable std::mutex mu;
  std::vector<OfferLine> offers;
  struct Row {
    NodeStatus node;
    double last_report_t = -1.0;  ///< event time of the last load.report
    /// session_retransmits decomposed: metrics.delta carries the two
    /// components separately while health() reports their sum.
    std::uint64_t retransmitted_frames = 0;
    std::uint64_t replayed_replies = 0;
    bool retransmits_seen = false;
  };
  std::vector<Row> rows;  ///< sorted by name
  std::vector<ShardLine> shards;  ///< sorted by (shard, host)
  std::uint64_t events_received = 0;

  void apply(const Event& event);
  void apply_metric(Row& row, const Event& event);
  void apply_shard(const Event& event);
};

void PushCollector::State::apply_metric(Row& row, const Event& event) {
  // The metric-name -> HealthReport-field mapping mirrors
  // TelemetryServant::health(): push and poll render identical columns.
  HealthReport& h = row.node.health;
  const std::string& name = event.key;
  if (name == "orb.requests_total") {
    h.rpcs = u64_field(event, "value");
  } else if (name == "orb.request_latency_s") {
    h.rpc_p50 = f64_field(event, "p50");
    h.rpc_p99 = f64_field(event, "p99");
  } else if (name == "ft.proxy.recoveries_total") {
    h.recoveries = u64_field(event, "value");
  } else if (name == "ft.pipeline.stores_total") {
    h.checkpoints = u64_field(event, "value");
  } else if (name == "ft.pipeline.bytes_shipped_total") {
    h.checkpoint_bytes = u64_field(event, "value");
  } else if (name == "obs.flight_recorder.auto_dumps_total") {
    h.auto_dumps = u64_field(event, "value");
  } else if (name == "transport.session.active") {
    h.sessions_active = u64_field(event, "value");
  } else if (name == "transport.session.resumes_total") {
    h.session_resumes = u64_field(event, "value");
  } else if (name == "transport.session.retransmitted_frames_total") {
    row.retransmitted_frames = u64_field(event, "value");
    row.retransmits_seen = true;
  } else if (name == "transport.session.replayed_replies_total") {
    row.replayed_replies = u64_field(event, "value");
    row.retransmits_seen = true;
  } else if (name == "transport.tcp.connections") {
    h.tcp_connections = u64_field(event, "value");
  } else {
    return;  // a metric with no table column
  }
  if (row.retransmits_seen) {
    h.session_retransmits = row.retransmitted_frames + row.replayed_replies;
  }
  // The row's clock advances with its newest applied event, so RPC/s
  // between two snapshots divides by event time — same as poll mode
  // dividing by health().now deltas.
  h.now = std::max(h.now, event.t);
}

void PushCollector::State::apply_shard(const Event& event) {
  ShardLine line;
  line.shard = u64_field(event, "shard");
  line.host = event.host;
  line.role = str_field(event, "role");
  line.version = u64_field(event, "version");
  line.lag = u64_field(event, "lag");
  line.followers = u64_field(event, "followers");
  // One line per (shard, host): a promoted replica on another host gets its
  // own line rather than overwriting the dead primary's last state.
  const auto at = std::lower_bound(
      shards.begin(), shards.end(), line,
      [](const ShardLine& a, const ShardLine& b) {
        return a.shard != b.shard ? a.shard < b.shard : a.host < b.host;
      });
  if (at != shards.end() && at->shard == line.shard && at->host == line.host)
    *at = std::move(line);
  else
    shards.insert(at, std::move(line));
}

void PushCollector::State::apply(const Event& event) {
  std::lock_guard lock(mu);
  ++events_received;
  switch (event.topic) {
    case Topic::metrics_delta:
      for (Row& row : rows) {
        // host == "" is a process-wide event: every row shares the metric
        // substrate (the simulator's quirk, documented on the class).
        if (event.host.empty() || event.host == row.node.name)
          apply_metric(row, event);
      }
      break;
    case Topic::load_report:
      for (Row& row : rows) {
        if (row.node.name != event.host) continue;
        row.node.health.load_index = f64_field(event, "index");
        row.last_report_t = event.t;
        row.node.health.now = std::max(row.node.health.now, event.t);
      }
      break;
    case Topic::shard_state:
      apply_shard(event);
      break;
    default:
      // flight.event / recovery.timeline / session.state have no table
      // column yet; they still count as received stream traffic.
      break;
  }
}

PushCollector::PushCollector(std::shared_ptr<corba::ORB> orb,
                             naming::NamingContext& root,
                             std::size_t queue_limit)
    : orb_(std::move(orb)), state_(std::make_shared<State>()) {
  // Seed rows and offers with one poll pass (the last one): the zero-RPC
  // contract starts at subscription.
  ClusterSnapshot seed = collect_cluster(root);
  state_->offers = std::move(seed.offers);
  for (NodeStatus& node : seed.nodes) {
    State::Row row;
    row.node = std::move(node);
    state_->rows.push_back(std::move(row));
  }

  // One consumer servant for every subscription; the handler holds the
  // shared state (not `this`), so a push already in flight across the
  // transport stays safe after the collector is destroyed.
  auto state = state_;
  auto servant = std::make_shared<EventConsumerServant>(
      [state](std::vector<Event> events) {
        for (const Event& event : events) state->apply(event);
      });
  const corba::ObjectRef consumer = orb_->activate(servant, "EventConsumer");

  naming::Name obs_name;
  obs_name.append(std::string(naming::kObsContextId));
  naming::NamingContextStub obs_context(root.resolve(obs_name));
  std::exception_ptr last_error;
  for (const naming::Binding& binding : obs_context.list()) {
    try {
      TelemetryStub telemetry(obs_context.resolve(binding.name));
      const std::uint64_t id =
          telemetry.subscribe_events(consumer, /*topics=*/{}, queue_limit);
      subs_.emplace_back(std::move(telemetry), id);
    } catch (...) {
      // A node without a channel (or unreachable) does not spoil push mode
      // for the rest; its seed row just goes stale.
      last_error = std::current_exception();
    }
  }
  // No subscription at all means push mode is not available here — let the
  // caller's poll fallback see why.
  if (subs_.empty() && last_error) std::rethrow_exception(last_error);
  if (subs_.empty())
    throw corba::BAD_INV_ORDER("no telemetry node accepted a subscription");
}

PushCollector::~PushCollector() {
  for (auto& [telemetry, id] : subs_) {
    try {
      telemetry.unsubscribe_events(id);
    } catch (...) {
      // The node may be gone; the channel reaps dead consumers on its own
      // (three failed pushes).
    }
  }
}

ClusterSnapshot PushCollector::snapshot() const {
  ClusterSnapshot out;
  out.collected_at = now();
  out.transport = "push";
  std::lock_guard lock(state_->mu);
  out.offers = state_->offers;
  out.shards = state_->shards;
  out.nodes.reserve(state_->rows.size());
  for (const State::Row& row : state_->rows) {
    NodeStatus node = row.node;
    if (row.last_report_t >= 0)
      node.health.report_age = std::max(0.0, out.collected_at - row.last_report_t);
    out.nodes.push_back(std::move(node));
  }
  return out;
}

std::uint64_t PushCollector::events_received() const {
  std::lock_guard lock(state_->mu);
  return state_->events_received;
}

}  // namespace obs
