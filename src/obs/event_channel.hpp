// Push telemetry plane: a typed event channel with bounded per-subscriber
// queues and explicit overflow policy.
//
// Everything observability built before this was pull: orbtop polls
// `_obs/<host>` servants, Winner load reports are request/reply, and the
// flight recorder only surfaces on failure dumps.  Polling cost grows with
// hosts x watchers, and overload is only visible after the fact.  This
// channel inverts the direction, following the CORBA Event/Notification
// pattern: producers publish typed events, consumers subscribe with a
// per-subscriber bounded queue and a QoS policy for what happens when they
// fall behind — `drop_oldest` for log-like topics (flight events, recovery
// timeline), `coalesce_by_key` for state-like topics (metric deltas, load
// reports) where a newer value supersedes an unsent older one.
//
// Design constraints, in order:
//   * publishers never block: publish() appends under a short mutex and
//     returns; a slow or dead consumer costs its own queue bound, nothing
//     more.  With zero subscribers publish() is one relaxed atomic load.
//   * bounded memory: every subscriber queue has a hard limit; overflow is
//     accounted (obs.events.{dropped,coalesced}_total) never silent, and the
//     first overflow of a subscriber trips a flight-recorder auto-dump so
//     the ring contents land on the `flight.event` topic (see
//     FlightRecorder::dump_to_events).
//   * deterministic under the simulator: delivery is scheduled through an
//     injected `defer` executor (SimRuntime wires the virtual-clock event
//     queue), sequence numbers restart per run, and timestamps come from
//     obs::now() — two same-seed chaos runs render byte-identical event
//     streams (enforced by tests/integration/event_stream_test.cpp).
//   * transport-agnostic: the channel itself is corba-free (this layer sits
//     below the ORB); the push carrier over the real wire — an EventConsumer
//     servant driven by oneway `push` batches — lives in obs/telemetry.hpp.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace obs {

/// Typed topics.  A deliberately small, stable vocabulary (DESIGN.md "Push
/// telemetry plane" has the QoS table).
enum class Topic : std::uint8_t {
  metrics_delta = 0,     ///< changed MetricsRegistry entries, per epoch
  flight_event = 1,      ///< FlightRecorder ring spills (dump_to_events)
  load_report = 2,       ///< Winner load reports as the system manager sees them
  recovery_timeline = 3, ///< RecoveryTimeline events (proxy/detector/pipeline)
  session_state = 4,     ///< transport session lifecycle (resume/overflow)
  shard_state = 5,       ///< checkpoint-shard primary state (version, lag)
};
inline constexpr std::size_t kTopicCount = 6;

std::string_view to_string(Topic topic) noexcept;
/// Parses the dotted topic name ("metrics.delta"); nullopt when unknown.
std::optional<Topic> parse_topic(std::string_view name) noexcept;

/// One typed payload field.  A tagged scalar rather than corba::Value keeps
/// this layer free of ORB dependencies; the wire conversion lives in
/// obs/telemetry.hpp.
struct EventField {
  enum class Kind : std::uint8_t { f64, u64, str };
  std::string name;
  Kind kind = Kind::f64;
  double f64 = 0.0;
  std::uint64_t u64 = 0;
  std::string str;

  friend bool operator==(const EventField&, const EventField&) = default;
};
EventField num_field(std::string name, double value);
EventField int_field(std::string name, std::uint64_t value);
EventField str_field(std::string name, std::string value);

/// One published event.
struct Event {
  Topic topic = Topic::metrics_delta;
  std::string host;  ///< origin host; "" = process-wide (sim shares one process)
  std::string key;   ///< coalescing key within the topic (metric name, host, ...)
  double t = 0.0;    ///< obs::now() at publish (virtual under the simulator)
  std::uint64_t seq = 0;  ///< channel publish sequence (restarts on reset())
  std::vector<EventField> fields;

  /// Deterministic one-line rendering, the byte-identical stream contract:
  ///   [<t>] #<seq> <topic> host=<host> key=<key> <name>=<value> ...
  std::string to_line() const;
};

/// What happens when a subscriber's queue is at its bound.
enum class OverflowPolicy : std::uint8_t {
  /// The oldest queued event is discarded (counted in dropped).
  drop_oldest,
  /// The newest queued event with the same (topic, key) is replaced in
  /// place (counted in coalesced) — lossless for absolute-valued state
  /// topics; falls back to drop_oldest when no key matches.
  coalesce_by_key,
};

/// Per-topic default: state-like topics coalesce, log-like topics drop.
OverflowPolicy default_policy(Topic topic) noexcept;

struct SubscribeOptions {
  /// Topics to receive; empty = all.
  std::vector<Topic> topics;
  /// Per-subscriber queue bound (events).
  std::size_t queue_limit = 256;
  /// Overrides the per-topic default policy for every topic when set.
  std::optional<OverflowPolicy> policy;
  /// Minimum spacing between deliveries to this subscriber (seconds on the
  /// obs clock; 0 = deliver as soon as the executor runs).  A consumer that
  /// wants one batched update per second instead of an event storm sets 1.0
  /// and lets the overflow policy coalesce in between.
  double delivery_interval = 0.0;
  /// Identity used for idempotent subscription: a second subscribe with the
  /// same non-empty consumer_id returns the existing subscription id
  /// instead of creating a duplicate.  The remote carrier passes the
  /// consumer's stringified IOR, so one orbtop subscribing through every
  /// `_obs/<host>` servant of a shared-process (simulated) cluster still
  /// receives each event exactly once.
  std::string consumer_id;
};

/// Per-subscriber accounting, queryable for tests and tooling.
struct SubscriberStats {
  std::uint64_t id = 0;
  std::string consumer_id;
  std::size_t depth = 0;        ///< events currently queued
  std::size_t queue_limit = 0;
  std::uint64_t enqueued = 0;   ///< events accepted into the queue (incl. later drops)
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t failures = 0;   ///< consumer invocations that threw
};

class EventChannel {
 public:
  /// Delivers one batch; may throw (a remote push failing).  Three
  /// consecutive failures auto-unsubscribe the consumer.
  using Consumer = std::function<void(std::span<const Event>)>;

  /// Schedules `fn` to run `delay` seconds from now.  The simulator passes
  /// its virtual-clock event queue; when null the channel runs a lazily
  /// spawned delivery worker thread instead.
  using Defer = std::function<void(double delay, std::function<void()> fn)>;

  struct Options {
    Defer defer;
    /// Events handed to a consumer per invocation at most.
    std::size_t max_batch = 128;
  };

  EventChannel();
  ~EventChannel();
  EventChannel(const EventChannel&) = delete;
  EventChannel& operator=(const EventChannel&) = delete;

  /// The process-wide channel the runtime's producers publish to.
  static EventChannel& global();

  /// Installs the delivery executor and opens the channel for subscribe().
  /// Throws std::logic_error when already bound with live subscribers (two
  /// runtimes fighting over the global channel is a bug worth surfacing).
  void bind(Options options);
  /// Drops every subscriber, joins the worker, and closes the channel.
  /// Idempotent; pending deferred drains become no-ops.
  void unbind();
  bool bound() const noexcept;

  /// Registers a consumer.  Throws std::logic_error when the channel is not
  /// bound (callers surface that as "push unavailable" and fall back to
  /// polling).  Returns the subscription id — an existing one when
  /// options.consumer_id matches a live subscription.
  std::uint64_t subscribe(SubscribeOptions options, Consumer consumer);
  /// Removes a subscription; false when the id is unknown.
  bool unsubscribe(std::uint64_t id);

  /// Live subscriptions (relaxed; the publish fast-path check).
  std::size_t subscriber_count() const noexcept {
    return subscriber_count_.load(std::memory_order_relaxed);
  }

  /// Publishes one event to every matching subscriber.  Never blocks on
  /// consumers; with zero subscribers this returns after one atomic load
  /// and the event is not accounted.
  void publish(Topic topic, std::string_view host, std::string_view key,
               std::vector<EventField> fields);

  /// Worker-mode barrier: returns once every queue emptied and no delivery
  /// is in flight (tests).  Under a defer executor it is the caller's event
  /// queue that drains deliveries, so this is a no-op.
  void flush();

  std::vector<SubscriberStats> stats() const;

  /// Per-run determinism: drops every subscriber and restarts the sequence
  /// counter (SimRuntime calls this on the global channel per run).
  void reset();

 private:
  struct Subscriber {
    std::uint64_t id = 0;
    std::string consumer_id;
    std::array<bool, kTopicCount> wants{};
    std::array<OverflowPolicy, kTopicCount> policy{};
    std::size_t queue_limit = 0;
    double delivery_interval = 0.0;
    double next_delivery_at = 0.0;
    bool drain_scheduled = false;  ///< defer mode: a drain event is pending
    bool delivering = false;       ///< worker mode: batch handed out
    bool overflow_dumped = false;  ///< first-overflow flight dump fired
    bool dead = false;             ///< removed; late drains/deliveries no-op
    std::uint64_t consecutive_failures = 0;
    std::deque<Event> queue;
    SubscriberStats stat;
    Consumer consumer;
  };

  void enqueue_locked(Subscriber& sub, const Event& event, bool& overflowed);
  /// Defer mode: schedules a drain for `sub` honoring delivery_interval.
  void schedule_drain_locked(const std::shared_ptr<Subscriber>& sub);
  void drain_deferred(const std::shared_ptr<Subscriber>& sub,
                      std::uint64_t generation);
  /// Delivers one batch to `sub` (lock held on entry and exit).  Returns
  /// false when the subscriber died and was removed.
  bool deliver_locked(std::unique_lock<std::mutex>& lock,
                      const std::shared_ptr<Subscriber>& sub);
  void remove_locked(std::uint64_t id);
  void worker_loop();
  void stop_worker_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker wakes on published events
  std::condition_variable flush_cv_;  ///< flush() waits for empty queues
  Options options_;
  bool bound_ = false;
  /// Bumped by unbind()/reset(); pending deferred drains from an older
  /// generation are no-ops (their subscriber is gone anyway).
  std::uint64_t generation_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t seq_ = 0;
  std::vector<std::shared_ptr<Subscriber>> subscribers_;
  std::atomic<std::size_t> subscriber_count_{0};
  std::thread worker_;
  bool worker_running_ = false;
  bool stop_worker_ = false;
};

/// Publishes to the global channel; the runtime's call sites.  Free when no
/// subscriber exists.
void publish_event(Topic topic, std::string_view host, std::string_view key,
                   std::vector<EventField> fields);
/// True while the global channel has at least one subscriber — producers
/// with non-trivial payload-building cost check this first.
bool events_wanted() noexcept;

}  // namespace obs
