// orbtop core: cluster-wide telemetry collection and rendering.
//
// The library half of tools/orbtop.cpp, kept separate so the integration
// tests can drive it against an in-process simulated cluster and an
// in-process TCP cluster without spawning the CLI.  Collection walks the
// reserved `_obs` naming subtree (one telemetry binding per node, see
// obs/telemetry.hpp), polls every node's health() and renders either a
// human table or JSON.  Rates (RPC/s) need two snapshots; --watch mode
// passes the previous one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "naming/naming.hpp"
#include "obs/telemetry.hpp"

namespace obs {

/// One node's poll result.  Unreachable nodes stay in the table (that is
/// usually the interesting row) with `reachable` false and the error text.
struct NodeStatus {
  std::string name;  ///< binding id under `_obs` (the host name)
  bool reachable = false;
  std::string error;
  HealthReport health;
};

/// One service name with its current offer count (root-level offer sets).
struct OfferLine {
  std::string name;
  std::size_t offers = 0;
};

struct ClusterSnapshot {
  double collected_at = 0.0;  ///< obs::now() on the collecting client
  std::vector<NodeStatus> nodes;   ///< sorted by name (stable output)
  std::vector<OfferLine> offers;   ///< root-level offer sets, sorted by name
};

/// Enumerates `_obs/*` through `root`, polls every telemetry object and
/// lists root-level offer sets.  Never throws for per-node failures; throws
/// only when the naming service itself is unreachable or has no `_obs`
/// context yet (naming::NotFound).
ClusterSnapshot collect_cluster(naming::NamingContext& root);

/// Renders the cluster table.  With `prev` (an earlier snapshot of the same
/// cluster) the RPC/s column shows the rate between the two snapshots;
/// without it the column shows "-".  Hosts are ranked by Winner load index
/// (lower = better; unknown last).
std::string render_table(const ClusterSnapshot& snapshot,
                         const ClusterSnapshot* prev = nullptr);

/// Machine-readable rendering:
///   {"schema_version": 1, "collected_at": X,
///    "nodes": [{"name": ..., "reachable": true, "health": {...}} |
///              {"name": ..., "reachable": false, "error": "..."}],
///    "offers": [{"name": ..., "offers": N}]}
std::string render_json(const ClusterSnapshot& snapshot);

}  // namespace obs
