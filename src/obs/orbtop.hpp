// orbtop core: cluster-wide telemetry collection and rendering.
//
// The library half of tools/orbtop.cpp, kept separate so the integration
// tests can drive it against an in-process simulated cluster and an
// in-process TCP cluster without spawning the CLI.  Collection walks the
// reserved `_obs` naming subtree (one telemetry binding per node, see
// obs/telemetry.hpp), polls every node's health() and renders either a
// human table or JSON.  Rates (RPC/s) need two snapshots; --watch mode
// passes the previous one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "naming/naming.hpp"
#include "obs/telemetry.hpp"

namespace obs {

/// One node's poll result.  Unreachable nodes stay in the table (that is
/// usually the interesting row) with `reachable` false and the error text.
struct NodeStatus {
  std::string name;  ///< binding id under `_obs` (the host name)
  bool reachable = false;
  std::string error;
  HealthReport health;
};

/// One service name with its current offer count (root-level offer sets).
struct OfferLine {
  std::string name;
  std::size_t offers = 0;
};

/// One checkpoint-store shard replica's state, as streamed on the
/// `shard.state` topic (push mode only — the poll path has no store view).
struct ShardLine {
  std::uint64_t shard = 0;
  std::string host;
  std::string role;             ///< "primary" (followers do not publish)
  std::uint64_t version = 0;    ///< version high-water on this replica
  std::uint64_t lag = 0;        ///< high-water minus slowest follower
  std::uint64_t followers = 0;  ///< replica-set size minus the primary
};

struct ClusterSnapshot {
  double collected_at = 0.0;  ///< obs::now() on the collecting client
  /// How the data arrived: "poll" (collect_cluster) or "push"
  /// (PushCollector).  Emitted in render_json so scripts can assert the
  /// push path is active.
  std::string transport = "poll";
  std::vector<NodeStatus> nodes;   ///< sorted by name (stable output)
  std::vector<OfferLine> offers;   ///< root-level offer sets, sorted by name
  /// Checkpoint shards, sorted by (shard, host); empty in poll mode.
  std::vector<ShardLine> shards;
};

/// Enumerates `_obs/*` through `root`, polls every telemetry object and
/// lists root-level offer sets.  Never throws for per-node failures; throws
/// only when the naming service itself is unreachable or has no `_obs`
/// context yet (naming::NotFound).
ClusterSnapshot collect_cluster(naming::NamingContext& root);

/// Renders the cluster table.  With `prev` (an earlier snapshot of the same
/// cluster) the RPC/s column shows the rate between the two snapshots;
/// without it the column shows "-".  Hosts are ranked by Winner load index
/// (lower = better; unknown last).
std::string render_table(const ClusterSnapshot& snapshot,
                         const ClusterSnapshot* prev = nullptr);

/// Machine-readable rendering:
///   {"schema_version": 1, "collected_at": X, "transport": "poll"|"push",
///    "nodes": [{"name": ..., "reachable": true, "health": {...}} |
///              {"name": ..., "reachable": false, "error": "..."}],
///    "offers": [{"name": ..., "offers": N}],
///    "shards": [{"shard": S, "host": ..., "role": "primary",
///                "version": V, "lag": L, "followers": K}]}
std::string render_json(const ClusterSnapshot& snapshot);

/// Subscription-driven collector: the push-mode engine behind
/// `orbtop --watch`.
///
/// Construction enumerates `_obs/*` once, polls each node's health() once
/// (the seed row — allowed: the zero-polling contract starts *after*
/// subscription), activates an EventConsumer servant on `orb` and
/// subscribes it through every node's telemetry servant.  The channel
/// dedupes on the consumer's stringified IOR, so a shared-process
/// (simulated) cluster yields one subscription however many nodes it has.
/// From then on snapshot() is purely local: `metrics.delta` events update
/// the health columns through the same metric-name mapping health() uses,
/// `load.report` events refresh LOAD/AGE, and no RPC is issued.
///
/// Events with an empty host apply to every row — under the in-process
/// simulator the metric substrate is process-wide and every node's health()
/// reports the same counters (see obs/telemetry.hpp); push mode mirrors
/// that quirk instead of hiding it.
class PushCollector {
 public:
  /// Throws corba::BAD_INV_ORDER (surfaced from subscribe) when no node has
  /// an event channel bound — callers catch and fall back to polling.
  PushCollector(std::shared_ptr<corba::ORB> orb, naming::NamingContext& root,
                std::size_t queue_limit = 4096);
  ~PushCollector();
  PushCollector(const PushCollector&) = delete;
  PushCollector& operator=(const PushCollector&) = delete;

  /// Current view, assembled locally from the seed rows plus every event
  /// received so far (transport = "push"; never an RPC).
  ClusterSnapshot snapshot() const;

  /// Events applied so far (tests assert the stream is live).
  std::uint64_t events_received() const;
  /// Telemetry servants successfully subscribed through.
  std::size_t subscriptions() const noexcept { return subs_.size(); }

 private:
  struct State;

  std::shared_ptr<corba::ORB> orb_;
  std::shared_ptr<State> state_;  ///< shared with the consumer servant
  std::vector<std::pair<TelemetryStub, std::uint64_t>> subs_;
};

}  // namespace obs
