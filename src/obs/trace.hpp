// Per-RPC distributed tracing: contexts, spans and the shared clock.
//
// A TraceContext (trace id, span id, parent span id) names one node of a
// call tree.  The ORB carries the ambient context in a service-context slot
// of its message header (orb/message.hpp), so a span opened on the client
// parents the servant-dispatch span on the server — across the in-process,
// simulator and TCP transports alike.
//
// Everything is compiled in but near-zero-cost when no sink is installed:
// Span construction checks one relaxed atomic and does nothing else, and
// the ORB only attaches contexts to messages while tracing is enabled (so
// wire bytes — and therefore simulated timings — are unchanged when off).
//
// Determinism: ids are drawn from a splitmix64 stream over a seeded origin
// and a monotonically increasing allocation counter, and timestamps come
// from the installed clock (the simulator installs its virtual clock).
// Re-seeding via set_trace_seed() also resets the counter, so two same-seed
// runs produce byte-identical span dumps.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

// --- shared clock -----------------------------------------------------------

/// Installs the time source used by spans, latency metrics and the recovery
/// timeline (seconds; the simulator installs virtual time).  Returns a token
/// for clear_clock().  Passing a null function restores the default
/// (monotonic wall clock).
std::uint64_t set_clock(std::function<double()> clock);

/// Restores the default clock iff `token` names the currently installed
/// clock — so a destructor never tears down a successor's clock.
void clear_clock(std::uint64_t token);

/// Current time per the installed clock.
double now();

// --- contexts and spans ------------------------------------------------------

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One finished span, as delivered to the sink.
struct SpanRecord {
  std::string name;    ///< taxonomy name, e.g. "rpc.client" (DESIGN.md)
  std::string detail;  ///< operation / target / free-form annotation
  TraceContext context;
  double start = 0.0;
  double end = 0.0;
};

using TraceSink = std::function<void(const SpanRecord&)>;

/// Installs (replaces) the process-wide sink; null uninstalls.  The sink is
/// invoked without any internal lock held and must be thread-safe.
void set_trace_sink(TraceSink sink);

/// True while a sink is installed (the Span fast-path check).
bool tracing_enabled() noexcept;

/// Reseeds the id stream and resets its allocation counter (per-run
/// determinism).  Seed 0 is mapped to 1 so ids are never 0 (= invalid).
void set_trace_seed(std::uint64_t seed);

/// Ambient context of the calling thread (invalid when none).
TraceContext current_trace() noexcept;
/// Replaces the ambient context; returns the previous one.  The server-side
/// dispatch path adopts the wire context this way.
TraceContext exchange_current_trace(const TraceContext& context) noexcept;

/// RAII span: when tracing is enabled, construction allocates a child
/// context of the ambient one (or a new root) and makes it ambient;
/// destruction records the span and restores the previous ambient context.
/// When tracing is disabled the whole object is inert.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view detail = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }
  /// This span's context (invalid when inactive).
  const TraceContext& context() const noexcept { return record_.context; }
  /// Appends to the detail annotation (e.g. the chosen recovery path).
  void annotate(std::string_view detail);

 private:
  bool active_ = false;
  SpanRecord record_;
  TraceContext saved_;
};

/// Records an already-timed span (used where the measured interval outlives
/// a scope, e.g. a transport round trip completed by a pending reply).  The
/// span becomes a child of `parent` when valid, else of the ambient context.
void record_span(std::string_view name, std::string_view detail, double start,
                 double end, const TraceContext& parent = {});

/// A convenient sink: thread-safe collector with a deterministic dump.
class SpanCollector {
 public:
  /// Installs this collector as the process sink (replacing any other).
  void install();

  std::vector<SpanRecord> records() const;
  std::size_t size() const;
  void clear();

  /// One line per span in recording order:
  ///   <name> <detail> trace=<id> span=<id> parent=<id> [<start>, <end>]
  /// Byte-identical across same-seed runs (the determinism contract).
  std::string dump() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

}  // namespace obs
