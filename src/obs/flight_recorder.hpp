// Flight recorder: an always-on, allocation-free ring buffer of compact
// runtime events.
//
// Metrics aggregate and spans need a sink installed; the flight recorder
// fills the gap between them — the *last N things that happened*, captured
// unconditionally so a crash report or an auto-dump on the first batched
// COMM_FAILURE carries the preceding RPCs, connection churn and recovery
// steps without anyone having arranged for it in advance.  The design
// constraints:
//
//   * always on: record() is a relaxed fetch_add to claim a slot plus a
//     handful of relaxed atomic stores — no locks, no allocation, no
//     formatting.  Overhead sits well below the micro bench's latency
//     bucket resolution (see bench/micro_orb.cpp's recorder on/off point).
//   * fixed capacity: a power-of-two ring; old events are overwritten, and
//     a per-slot sequence word (seqlock-per-slot) lets readers detect and
//     skip slots torn by a concurrent writer.  Every slot field is an
//     atomic, so concurrent writers and dumpers are data-race-free (the
//     `tsan` ctest label covers this).
//   * deterministic: timestamps come from obs::now() (virtual under the
//     simulator) and SimRuntime clear()s the global recorder per run, so two
//     same-seed chaos runs render byte-identical dumps.
//
// Auto-dump: the runtime calls flight_auto_dump() at "something is going
// wrong" moments — a batched COMM_FAILURE taking down a connection's
// in-flight calls, a proxy exhausting its retry budget, a quarantine trip.
// With no sink installed that is one counter increment; with a sink (tests,
// an operator's stderr hook) the rendered dump is delivered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

/// Event vocabulary.  Kept deliberately small and stable: dumps are grepped
/// by humans and diffed byte-for-byte by the determinism tests.
enum class FlightEvent : std::uint16_t {
  rpc_start = 1,       ///< subject=operation, a=request id
  rpc_end = 2,         ///< subject=operation, a=request id, b=1 on exception
  recovery_step = 3,   ///< subject=service, a=step (1=failure observed,
                       ///< 2=recovery started, 3=rebound, 4=budget
                       ///< exhausted), b=attempt number where meaningful
  quarantine_trip = 4, ///< subject=service, b=1 when re-armed
  checkpoint_ship = 5, ///< subject=key, a=version, b=bytes shipped
  dispatch_depth = 6,  ///< subject=operation, a=queued+executing
  conn_open = 7,       ///< subject=host:port
  conn_close = 8,      ///< subject=host:port, a=in-flight calls failed
  conn_evict = 9,      ///< subject=host:port (idle TTL / LRU cull)
  session_resume = 10, ///< subject=host:port, a=session id, b=frames replayed
  delta_fallback = 11, ///< subject=checkpoint key, a=acked base, b=version
  shard_failover = 12, ///< subject=shard label, a=replica index, b=version
};

std::string_view to_string(FlightEvent type) noexcept;

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two; 4096 compact slots ≈ 256 KiB.
  static constexpr std::size_t kDefaultCapacity = 4096;
  /// Subjects longer than this are truncated (3 packed 8-byte words).
  static constexpr std::size_t kSubjectCapacity = 24;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the runtime's call sites write to.
  static FlightRecorder& global();

  /// Appends one event (relaxed atomics only; safe from any thread).
  void record(FlightEvent type, std::string_view subject, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;

  /// The kill switch exists for overhead measurement (bench) and for tests
  /// that need a quiet recorder; production leaves it on.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Forgets every recorded event (per-run determinism; SimRuntime calls
  /// this on the global recorder at construction).
  void clear() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Events ever recorded (recorded - min(recorded, capacity) of them have
  /// been overwritten).
  std::uint64_t recorded() const noexcept {
    return cursor_.load(std::memory_order_acquire);
  }

  /// One decoded event, oldest-first in events()/dumps.
  struct Event {
    double t = 0.0;
    FlightEvent type = FlightEvent::rpc_start;
    std::string subject;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t index = 0;  ///< global event index (0-based, monotonic)
  };

  /// Decoded surviving events, oldest to newest.  Slots torn by a concurrent
  /// writer (or already overwritten) are skipped.
  std::vector<Event> events() const;

  /// Deterministic text rendering:
  ///   flight-recorder: <recorded> events recorded, <n> retained (capacity <c>)
  ///   [<t>] #<index> <type> <subject> a=<a> b=<b>
  std::string to_text() const;

  /// JSON rendering: {"schema_version": 1, "recorded": N, "capacity": C,
  /// "events": [{"t": ..., "index": N, "type": "...", "subject": "...",
  /// "a": N, "b": N}, ...]}.
  std::string to_json() const;

  // --- auto-dump -------------------------------------------------------------
  /// Sink for auto-dumps; invoked with the trigger reason and the to_text()
  /// rendering.  Null uninstalls.  Must be thread-safe.
  using DumpSink = std::function<void(std::string_view reason,
                                      const std::string& dump)>;
  void set_auto_dump_sink(DumpSink sink);

  /// Counts the trigger (obs.flight_recorder.auto_dumps_total), publishes
  /// the ring on the `flight.event` topic (dump_to_events) and, when a sink
  /// is installed, renders and delivers the text dump.
  void auto_dump(std::string_view reason) noexcept;

  /// Publishes every retained ring event on the `flight.event` channel
  /// topic (one event per slot: reason/type/subject/a/b/at/index fields)
  /// and counts `obs.flight.event_dumps_total`.  No-op without channel
  /// subscribers, and re-entrant calls on one thread collapse (a dump whose
  /// publication overflows a queue would otherwise dump again forever).
  void dump_to_events(std::string_view reason);

  /// Auto-dump triggers observed so far (with or without a sink).
  std::uint64_t auto_dumps() const noexcept {
    return auto_dumps_.load(std::memory_order_relaxed);
  }

 private:
  // Per-slot seqlock: seq holds the 1-based global event index once the
  // payload stores are published; readers check it before and after reading
  // the payload and skip the slot on any mismatch.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> t{0.0};
    std::atomic<std::uint16_t> type{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::array<std::atomic<std::uint64_t>, 3> subject{};
  };

  std::size_t capacity_ = 0;  // power of two
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> auto_dumps_{0};

  std::mutex sink_mu_;
  DumpSink sink_;
};

/// Convenience wrappers over the global recorder (the runtime's call sites).
inline void flight_event(FlightEvent type, std::string_view subject,
                         std::uint64_t a = 0, std::uint64_t b = 0) noexcept {
  FlightRecorder::global().record(type, subject, a, b);
}
void flight_auto_dump(std::string_view reason) noexcept;

}  // namespace obs
