#include "obs/publisher.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/event_channel.hpp"

namespace obs {

struct MetricsDeltaPublisher::State {
  std::mutex mu;
  std::condition_variable cv;  ///< threaded mode: stop() wakes the sleeper
  Options options;
  MetricsSnapshot last;        ///< baseline of the previous subscribed tick
  bool stopped = false;
  Defer defer;
  std::atomic<std::uint64_t> ticks{0};
};

namespace {

// A dormant entry: registered but never moved.  New-and-zero entries are
// not published — a handle's registration time is an implementation detail
// (often lazy, mid-run), and publishing zeros on first sight would make the
// stream depend on registration order instead of on what actually happened.
bool entry_is_zero(const MetricEntry& entry) {
  switch (entry.kind) {
    case MetricEntry::Kind::counter:
      return entry.counter_value == 0;
    case MetricEntry::Kind::gauge:
      return entry.gauge_value == 0.0;
    case MetricEntry::Kind::histogram:
      return entry.histogram.count == 0 && entry.histogram.sum == 0.0;
  }
  return true;
}

bool entry_changed(const MetricEntry& a, const MetricEntry& b) {
  if (a.kind != b.kind) return true;
  switch (a.kind) {
    case MetricEntry::Kind::counter:
      return a.counter_value != b.counter_value;
    case MetricEntry::Kind::gauge:
      return a.gauge_value != b.gauge_value;
    case MetricEntry::Kind::histogram:
      return a.histogram.count != b.histogram.count ||
             a.histogram.sum != b.histogram.sum;
  }
  return true;
}

void publish_entry(const std::string& host, const MetricEntry& entry) {
  std::vector<EventField> fields;
  switch (entry.kind) {
    case MetricEntry::Kind::counter:
      fields.push_back(str_field("kind", "counter"));
      fields.push_back(int_field("value", entry.counter_value));
      break;
    case MetricEntry::Kind::gauge:
      fields.push_back(str_field("kind", "gauge"));
      fields.push_back(num_field("value", entry.gauge_value));
      break;
    case MetricEntry::Kind::histogram:
      fields.push_back(str_field("kind", "histogram"));
      fields.push_back(int_field("count", entry.histogram.count));
      fields.push_back(num_field("sum", entry.histogram.sum));
      fields.push_back(num_field("p50", entry.histogram.quantile(0.5)));
      fields.push_back(num_field("p99", entry.histogram.quantile(0.99)));
      break;
  }
  publish_event(Topic::metrics_delta, host, entry.name, std::move(fields));
}

}  // namespace

MetricsDeltaPublisher::MetricsDeltaPublisher(Options options)
    : state_(std::make_shared<State>()) {
  state_->options = std::move(options);
  if (state_->options.epoch <= 0.0) state_->options.epoch = 1.0;
}

MetricsDeltaPublisher::~MetricsDeltaPublisher() { stop(); }

void MetricsDeltaPublisher::tick_state(State& state) {
  state.ticks.fetch_add(1, std::memory_order_relaxed);
  // No subscriber: skip without advancing the baseline, so the next
  // subscribed tick publishes everything that moved in the meantime.
  if (!events_wanted()) return;
  const MetricsRegistry* registry = state.options.registry
                                        ? state.options.registry
                                        : &MetricsRegistry::global();
  MetricsSnapshot current = registry->snapshot();
  // Both entry lists are name-sorted: one merge pass finds new and changed
  // entries (metrics never unregister, so no removal arm is needed).
  auto it_last = state.last.entries.begin();
  for (const auto& entry : current.entries) {
    while (it_last != state.last.entries.end() && it_last->name < entry.name) {
      ++it_last;
    }
    const bool known =
        it_last != state.last.entries.end() && it_last->name == entry.name;
    if (known ? entry_changed(entry, *it_last) : !entry_is_zero(entry)) {
      publish_entry(state.options.host, entry);
    }
  }
  state.last = std::move(current);
}

void MetricsDeltaPublisher::tick() {
  std::lock_guard lock(state_->mu);
  if (!state_->stopped) tick_state(*state_);
}

void MetricsDeltaPublisher::start_threaded() {
  auto state = state_;
  {
    std::lock_guard lock(state->mu);
    if (threaded_ || state->defer) return;
    threaded_ = true;
  }
  thread_ = std::thread([state] {
    std::unique_lock lock(state->mu);
    while (!state->stopped) {
      state->cv.wait_for(
          lock, std::chrono::duration<double>(state->options.epoch));
      if (state->stopped) break;
      tick_state(*state);
    }
  });
}

void MetricsDeltaPublisher::schedule_deferred(
    const std::shared_ptr<State>& state) {
  std::weak_ptr<State> weak = state;
  state->defer(state->options.epoch, [weak] {
    auto state = weak.lock();
    if (!state) return;
    std::lock_guard lock(state->mu);
    if (state->stopped) return;
    tick_state(*state);
    schedule_deferred(state);
  });
}

void MetricsDeltaPublisher::start_deferred(Defer defer) {
  std::lock_guard lock(state_->mu);
  if (threaded_ || state_->defer || !defer) return;
  state_->defer = std::move(defer);
  schedule_deferred(state_);
}

void MetricsDeltaPublisher::stop() {
  {
    std::lock_guard lock(state_->mu);
    state_->stopped = true;
    state_->cv.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  threaded_ = false;
}

std::uint64_t MetricsDeltaPublisher::ticks() const noexcept {
  return state_->ticks.load(std::memory_order_relaxed);
}

}  // namespace obs
