#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstring>

#include "obs/event_channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string format_time(double t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

}  // namespace

std::string_view to_string(FlightEvent type) noexcept {
  switch (type) {
    case FlightEvent::rpc_start: return "rpc_start";
    case FlightEvent::rpc_end: return "rpc_end";
    case FlightEvent::recovery_step: return "recovery_step";
    case FlightEvent::quarantine_trip: return "quarantine_trip";
    case FlightEvent::checkpoint_ship: return "checkpoint_ship";
    case FlightEvent::dispatch_depth: return "dispatch_depth";
    case FlightEvent::conn_open: return "conn_open";
    case FlightEvent::conn_close: return "conn_close";
    case FlightEvent::conn_evict: return "conn_evict";
    case FlightEvent::session_resume: return "session_resume";
    case FlightEvent::delta_fallback: return "delta_fallback";
    case FlightEvent::shard_failover: return "shard_failover";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(FlightEvent type, std::string_view subject,
                            std::uint64_t a, std::uint64_t b) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Invalidate first so a reader racing this overwrite never pairs the old
  // sequence with new payload words.
  slot.seq.store(0, std::memory_order_release);
  slot.t.store(now(), std::memory_order_relaxed);
  slot.type.store(static_cast<std::uint16_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  for (std::size_t word = 0; word < slot.subject.size(); ++word) {
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t pos = word * 8 + i;
      if (pos < subject.size() && pos < kSubjectCapacity)
        packed |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(subject[pos]))
                  << (8 * i);
    }
    slot.subject[word].store(packed, std::memory_order_relaxed);
  }
  slot.seq.store(index + 1, std::memory_order_release);
}

void FlightRecorder::clear() noexcept {
  // Not atomic with respect to concurrent writers; callers clear between
  // runs, not mid-traffic.  Slots are invalidated before the cursor resets
  // so a reader never resurrects a pre-clear event.
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(0, std::memory_order_release);
  cursor_.store(0, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t index = begin; index < end; ++index) {
    const Slot& slot = slots_[index & mask_];
    if (slot.seq.load(std::memory_order_acquire) != index + 1) continue;
    Event event;
    event.index = index;
    event.t = slot.t.load(std::memory_order_relaxed);
    event.type =
        static_cast<FlightEvent>(slot.type.load(std::memory_order_relaxed));
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    char chars[kSubjectCapacity];
    for (std::size_t word = 0; word < slot.subject.size(); ++word) {
      const std::uint64_t packed =
          slot.subject[word].load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < 8; ++i)
        chars[word * 8 + i] = static_cast<char>((packed >> (8 * i)) & 0xff);
    }
    // Re-check: if a writer lapped us mid-read the payload is torn.
    if (slot.seq.load(std::memory_order_acquire) != index + 1) continue;
    std::size_t len = 0;
    while (len < kSubjectCapacity && chars[len] != '\0') ++len;
    event.subject.assign(chars, len);
    out.push_back(std::move(event));
  }
  return out;
}

std::string FlightRecorder::to_text() const {
  const std::vector<Event> all = events();
  std::string out = "flight-recorder: " + std::to_string(recorded()) +
                    " events recorded, " + std::to_string(all.size()) +
                    " retained (capacity " + std::to_string(capacity_) + ")\n";
  for (const Event& e : all) {
    out += "[" + format_time(e.t) + "] #" + std::to_string(e.index) + " " +
           std::string(to_string(e.type)) + " " + e.subject +
           " a=" + std::to_string(e.a) + " b=" + std::to_string(e.b) + "\n";
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  const std::vector<Event> all = events();
  std::string out = "{\"schema_version\": 1, \"recorded\": " +
                    std::to_string(recorded()) +
                    ", \"capacity\": " + std::to_string(capacity_) +
                    ", \"events\": [";
  bool first = true;
  for (const Event& e : all) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"t\": " + format_time(e.t) +
           ", \"index\": " + std::to_string(e.index) + ", \"type\": \"" +
           std::string(to_string(e.type)) + "\", \"subject\": \"" + e.subject +
           "\", \"a\": " + std::to_string(e.a) +
           ", \"b\": " + std::to_string(e.b) + "}";
  }
  out += "\n]}";
  return out;
}

void FlightRecorder::set_auto_dump_sink(DumpSink sink) {
  std::lock_guard lock(sink_mu_);
  sink_ = std::move(sink);
}

void FlightRecorder::auto_dump(std::string_view reason) noexcept {
  auto_dumps_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& dumps = obs::MetricsRegistry::global().counter(
      "obs.flight_recorder.auto_dumps_total");
  dumps.inc();
  try {
    dump_to_events(reason);
  } catch (...) {
    // Event publication failing must never break the (already failing) path
    // that triggered the dump.
  }
  DumpSink sink;
  {
    std::lock_guard lock(sink_mu_);
    sink = sink_;
  }
  if (!sink) return;
  try {
    sink(reason, to_text());
  } catch (...) {
    // Likewise for a failing sink.
  }
}

void FlightRecorder::dump_to_events(std::string_view reason) {
  // Guard against publish -> subscriber overflow -> auto_dump recursion: a
  // dump already on this thread's stack means the ring is being published
  // right now, and publishing it twice adds nothing.
  thread_local bool dumping = false;
  if (dumping || !events_wanted()) return;
  dumping = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{dumping};

  static obs::Counter& event_dumps = obs::MetricsRegistry::global().counter(
      "obs.flight.event_dumps_total");
  event_dumps.inc();
  const std::vector<Event> all = events();
  for (const Event& e : all) {
    publish_event(
        Topic::flight_event, /*host=*/"", /*key=*/to_string(e.type),
        {str_field("reason", std::string(reason)),
         str_field("type", std::string(to_string(e.type))),
         str_field("subject", e.subject), int_field("a", e.a),
         int_field("b", e.b), num_field("at", e.t), int_field("index", e.index)});
  }
}

void flight_auto_dump(std::string_view reason) noexcept {
  FlightRecorder::global().auto_dump(reason);
}

}  // namespace obs
