#include "obs/timeline.hpp"

#include <atomic>
#include <cstdio>

#include "obs/trace.hpp"

namespace obs {

namespace {
std::atomic<RecoveryTimeline*> g_timeline{nullptr};
}  // namespace

void RecoveryTimeline::record(std::string_view category,
                              std::string_view subject,
                              std::string_view detail) {
  record_at(now(), category, subject, detail);
}

void RecoveryTimeline::record_at(double t, std::string_view category,
                                 std::string_view subject,
                                 std::string_view detail) {
  std::lock_guard lock(mu_);
  events_.push_back(TimelineEvent{t, std::string(category),
                                  std::string(subject), std::string(detail)});
}

std::vector<TimelineEvent> RecoveryTimeline::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t RecoveryTimeline::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void RecoveryTimeline::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

std::string RecoveryTimeline::to_string() const {
  std::lock_guard lock(mu_);
  std::string out;
  char buf[48];
  for (const TimelineEvent& e : events_) {
    std::snprintf(buf, sizeof(buf), "[%.9f] ", e.t);
    out += buf;
    out += e.category;
    out += ' ';
    out += e.subject;
    out += ": ";
    out += e.detail;
    out += '\n';
  }
  return out;
}

void install_timeline(RecoveryTimeline* timeline) {
  g_timeline.store(timeline, std::memory_order_release);
}

RecoveryTimeline* installed_timeline() noexcept {
  return g_timeline.load(std::memory_order_acquire);
}

void timeline_event(std::string_view category, std::string_view subject,
                    std::string_view detail) {
  if (RecoveryTimeline* t = installed_timeline())
    t->record(category, subject, detail);
}

void timeline_event_at(double t, std::string_view category,
                       std::string_view subject, std::string_view detail) {
  if (RecoveryTimeline* tl = installed_timeline())
    tl->record_at(t, category, subject, detail);
}

}  // namespace obs
