#include "obs/timeline.hpp"

#include <atomic>
#include <cstdio>

#include "obs/event_channel.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {
std::atomic<RecoveryTimeline*> g_timeline{nullptr};

// Mirrors a timeline event onto the `recovery.timeline` channel topic so
// push subscribers see recovery lifecycle live, not only in the post-run
// rendering.  Free when the channel has no subscriber.
void publish_timeline(double t, std::string_view category,
                      std::string_view subject, std::string_view detail) {
  if (!events_wanted()) return;
  publish_event(Topic::recovery_timeline, /*host=*/"", /*key=*/subject,
                {str_field("category", std::string(category)),
                 str_field("subject", std::string(subject)),
                 str_field("detail", std::string(detail)), num_field("at", t)});
}
}  // namespace

void RecoveryTimeline::record(std::string_view category,
                              std::string_view subject,
                              std::string_view detail) {
  record_at(now(), category, subject, detail);
}

void RecoveryTimeline::record_at(double t, std::string_view category,
                                 std::string_view subject,
                                 std::string_view detail) {
  std::lock_guard lock(mu_);
  events_.push_back(TimelineEvent{t, std::string(category),
                                  std::string(subject), std::string(detail)});
}

std::vector<TimelineEvent> RecoveryTimeline::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t RecoveryTimeline::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void RecoveryTimeline::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

std::string RecoveryTimeline::to_string() const {
  std::lock_guard lock(mu_);
  std::string out;
  char buf[48];
  for (const TimelineEvent& e : events_) {
    std::snprintf(buf, sizeof(buf), "[%.9f] ", e.t);
    out += buf;
    out += e.category;
    out += ' ';
    out += e.subject;
    out += ": ";
    out += e.detail;
    out += '\n';
  }
  return out;
}

void install_timeline(RecoveryTimeline* timeline) {
  g_timeline.store(timeline, std::memory_order_release);
}

RecoveryTimeline* installed_timeline() noexcept {
  return g_timeline.load(std::memory_order_acquire);
}

void timeline_event(std::string_view category, std::string_view subject,
                    std::string_view detail) {
  timeline_event_at(now(), category, subject, detail);
}

void timeline_event_at(double t, std::string_view category,
                       std::string_view subject, std::string_view detail) {
  if (RecoveryTimeline* tl = installed_timeline())
    tl->record_at(t, category, subject, detail);
  publish_timeline(t, category, subject, detail);
}

}  // namespace obs
