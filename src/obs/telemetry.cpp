#include "obs/telemetry.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

/// Keeps the last `limit` lines of a multi-line rendering (0 = all).
std::string last_lines(const std::string& text, std::uint64_t limit) {
  if (limit == 0) return text;
  std::uint64_t seen = 0;
  // Walk newlines from the back; a trailing newline does not count as an
  // extra (empty) line.
  std::size_t pos = text.size();
  if (pos > 0 && text.back() == '\n') --pos;
  while (pos > 0) {
    const std::size_t nl = text.rfind('\n', pos - 1);
    if (nl == std::string::npos) break;
    if (++seen == limit) return text.substr(nl + 1);
    pos = nl;
  }
  return text;
}

}  // namespace

corba::Value event_to_value(const Event& event) {
  corba::ValueSeq out;
  out.emplace_back(std::string(to_string(event.topic)));
  out.emplace_back(event.host);
  out.emplace_back(event.key);
  out.emplace_back(event.t);
  out.emplace_back(event.seq);
  corba::ValueSeq fields;
  fields.reserve(event.fields.size());
  for (const EventField& field : event.fields) {
    corba::ValueSeq f;
    f.emplace_back(field.name);
    switch (field.kind) {
      case EventField::Kind::f64:
        f.emplace_back("f64");
        f.emplace_back(field.f64);
        break;
      case EventField::Kind::u64:
        f.emplace_back("u64");
        f.emplace_back(field.u64);
        break;
      case EventField::Kind::str:
        f.emplace_back("str");
        f.emplace_back(field.str);
        break;
    }
    fields.emplace_back(std::move(f));
  }
  out.emplace_back(std::move(fields));
  return corba::Value(std::move(out));
}

Event event_from_value(const corba::Value& value) {
  const corba::ValueSeq& seq = value.as_sequence();
  if (seq.size() < 6)
    throw corba::BAD_PARAM("malformed event: " + std::to_string(seq.size()) +
                           " fields");
  Event event;
  const auto topic = parse_topic(seq[0].as_string());
  if (!topic) throw corba::BAD_PARAM("unknown topic: " + seq[0].as_string());
  event.topic = *topic;
  event.host = seq[1].as_string();
  event.key = seq[2].as_string();
  event.t = seq[3].as_f64();
  event.seq = seq[4].as_u64();
  for (const corba::Value& fv : seq[5].as_sequence()) {
    const corba::ValueSeq& f = fv.as_sequence();
    if (f.size() < 3) throw corba::BAD_PARAM("malformed event field");
    const std::string& tag = f[1].as_string();
    if (tag == "f64")
      event.fields.push_back(num_field(f[0].as_string(), f[2].as_f64()));
    else if (tag == "u64")
      event.fields.push_back(int_field(f[0].as_string(), f[2].as_u64()));
    else if (tag == "str")
      event.fields.push_back(str_field(f[0].as_string(), f[2].as_string()));
    else
      throw corba::BAD_PARAM("unknown event field tag: " + tag);
  }
  return event;
}

EventConsumerServant::EventConsumerServant(Handler handler)
    : handler_(std::move(handler)) {
  if (!handler_) throw corba::BAD_PARAM("event consumer requires a handler");
}

corba::Value EventConsumerServant::dispatch(std::string_view op,
                                            const corba::ValueSeq& args) {
  if (op == "push") {
    check_arity(op, args, 1);
    const corba::ValueSeq& batch = args[0].as_sequence();
    std::vector<Event> events;
    events.reserve(batch.size());
    for (const corba::Value& v : batch) events.push_back(event_from_value(v));
    handler_(std::move(events));
    return corba::Value();
  }
  throw corba::BAD_OPERATION(std::string(op));
}

corba::Value HealthReport::to_value() const {
  corba::ValueSeq fields;
  fields.emplace_back(host);
  fields.emplace_back(now);
  fields.emplace_back(report_age);
  fields.emplace_back(load_index);
  fields.emplace_back(quarantined);
  fields.emplace_back(dispatch_queue_depth);
  fields.emplace_back(rpcs);
  fields.emplace_back(rpc_p50);
  fields.emplace_back(rpc_p99);
  fields.emplace_back(recoveries);
  fields.emplace_back(checkpoints);
  fields.emplace_back(checkpoint_bytes);
  fields.emplace_back(flight_recorded);
  fields.emplace_back(auto_dumps);
  fields.emplace_back(sessions_active);
  fields.emplace_back(session_resumes);
  fields.emplace_back(session_retransmits);
  fields.emplace_back(tcp_connections);
  return corba::Value(std::move(fields));
}

HealthReport HealthReport::from_value(const corba::Value& value) {
  const corba::ValueSeq& fields = value.as_sequence();
  if (fields.size() < 14)
    throw corba::BAD_PARAM("malformed health report: " +
                           std::to_string(fields.size()) + " fields");
  HealthReport report;
  report.host = fields[0].as_string();
  report.now = fields[1].as_f64();
  report.report_age = fields[2].as_f64();
  report.load_index = fields[3].as_f64();
  report.quarantined = fields[4].as_u64();
  report.dispatch_queue_depth = fields[5].as_u64();
  report.rpcs = fields[6].as_u64();
  report.rpc_p50 = fields[7].as_f64();
  report.rpc_p99 = fields[8].as_f64();
  report.recoveries = fields[9].as_u64();
  report.checkpoints = fields[10].as_u64();
  report.checkpoint_bytes = fields[11].as_u64();
  report.flight_recorded = fields[12].as_u64();
  report.auto_dumps = fields[13].as_u64();
  // Session fields arrived with resumable sessions; reports from an older
  // node simply leave them zero.
  if (fields.size() >= 17) {
    report.sessions_active = fields[14].as_u64();
    report.session_resumes = fields[15].as_u64();
    report.session_retransmits = fields[16].as_u64();
  }
  // Connection gauge arrived with the reactor transport (same size-tolerant
  // evolution pattern as the session fields).
  if (fields.size() >= 18) report.tcp_connections = fields[17].as_u64();
  return report;
}

TelemetryServant::TelemetryServant(TelemetryOptions options)
    : options_(std::move(options)) {
  if (options_.metrics_epoch > 0) {
    metrics_publisher_ = std::make_unique<MetricsDeltaPublisher>(
        MetricsDeltaPublisher::Options{options_.host, options_.metrics_epoch,
                                       nullptr});
    metrics_publisher_->start_threaded();
  }
}

TelemetryServant::~TelemetryServant() {
  if (metrics_publisher_) metrics_publisher_->stop();
}

HealthReport TelemetryServant::health() const {
  HealthReport report;
  report.host = options_.host;
  report.now = now();
  if (options_.report_age) report.report_age = options_.report_age();
  if (options_.load_index) report.load_index = options_.load_index();
  if (options_.quarantined) report.quarantined = options_.quarantined();
  if (options_.dispatch_queue_depth)
    report.dispatch_queue_depth = options_.dispatch_queue_depth();

  // Metric-derived fields read the handles directly (get-or-create is cheap
  // and the names are this repo's stable taxonomy, DESIGN.md
  // "Observability") — orbtop never has to parse an exporter format.
  MetricsRegistry& registry = MetricsRegistry::global();
  report.rpcs = registry.counter("orb.requests_total").value();
  const Histogram::Snapshot latency =
      registry.histogram("orb.request_latency_s").snapshot();
  report.rpc_p50 = latency.quantile(0.5);
  report.rpc_p99 = latency.quantile(0.99);
  report.recoveries = registry.counter("ft.proxy.recoveries_total").value();
  report.checkpoints = registry.counter("ft.pipeline.stores_total").value();
  report.checkpoint_bytes =
      registry.counter("ft.pipeline.bytes_shipped_total").value();
  report.flight_recorded = FlightRecorder::global().recorded();
  report.auto_dumps = FlightRecorder::global().auto_dumps();
  const double active = registry.gauge("transport.session.active").value();
  report.sessions_active =
      active > 0 ? static_cast<std::uint64_t>(active) : 0;
  report.session_resumes =
      registry.counter("transport.session.resumes_total").value();
  report.session_retransmits =
      registry.counter("transport.session.retransmitted_frames_total").value() +
      registry.counter("transport.session.replayed_replies_total").value();
  const double connections = registry.gauge("transport.tcp.connections").value();
  report.tcp_connections =
      connections > 0 ? static_cast<std::uint64_t>(connections) : 0;
  return report;
}

corba::Value TelemetryServant::dispatch(std::string_view op,
                                        const corba::ValueSeq& args) {
  if (op == "get_metrics") {
    check_arity(op, args, 1);
    const std::string& format = args[0].as_string();
    const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    if (format == "text") return corba::Value(to_text(snapshot));
    if (format == "json") return corba::Value(to_json(snapshot));
    if (format == "prometheus") return corba::Value(to_prometheus(snapshot));
    throw corba::BAD_PARAM("unknown metrics format: " + format);
  }
  if (op == "get_spans") {
    check_arity(op, args, 1);
    const std::uint64_t limit = args[0].as_u64();
    if (!options_.spans) return corba::Value(std::string());
    return corba::Value(last_lines(options_.spans->dump(), limit));
  }
  if (op == "get_timeline") {
    check_arity(op, args, 0);
    const RecoveryTimeline* timeline = installed_timeline();
    return corba::Value(timeline ? timeline->to_string() : std::string());
  }
  if (op == "get_flight_recorder") {
    check_arity(op, args, 0);
    return corba::Value(FlightRecorder::global().to_text());
  }
  if (op == "health") {
    check_arity(op, args, 0);
    return health().to_value();
  }
  if (op == "subscribe") return subscribe(args);
  if (op == "unsubscribe") {
    check_arity(op, args, 1);
    return corba::Value(EventChannel::global().unsubscribe(args[0].as_u64()));
  }
  throw corba::BAD_OPERATION(std::string(op));
}

corba::Value TelemetryServant::subscribe(const corba::ValueSeq& args) {
  check_arity("subscribe", args, 5);
  auto orb = options_.orb.lock();
  if (!orb)
    throw corba::BAD_INV_ORDER("telemetry servant has no ORB for push");
  EventChannel& channel = EventChannel::global();
  if (!channel.bound())
    throw corba::BAD_INV_ORDER(
        "no event channel bound on this node; poll instead");

  const corba::ObjectRef consumer =
      corba::ObjectRef::from_value(orb, args[0]);
  SubscribeOptions options;
  for (const corba::Value& tv : args[1].as_sequence()) {
    const auto topic = parse_topic(tv.as_string());
    if (!topic) throw corba::BAD_PARAM("unknown topic: " + tv.as_string());
    options.topics.push_back(*topic);
  }
  if (const std::uint64_t limit = args[2].as_u64(); limit > 0)
    options.queue_limit = static_cast<std::size_t>(limit);
  const std::string& policy = args[3].as_string();
  if (policy == "drop_oldest")
    options.policy = OverflowPolicy::drop_oldest;
  else if (policy == "coalesce_by_key")
    options.policy = OverflowPolicy::coalesce_by_key;
  else if (!policy.empty())
    throw corba::BAD_PARAM("unknown overflow policy: " + policy);
  options.delivery_interval = args[4].as_f64();
  // The stringified IOR identifies the consumer across servants: N sim
  // nodes share one process-wide channel, and orbtop subscribing through
  // each node's servant must still receive every event exactly once.
  options.consumer_id = orb->object_to_string(consumer);

  const std::uint64_t id = channel.subscribe(
      std::move(options), [consumer](std::span<const Event> batch) {
        corba::ValueSeq encoded;
        encoded.reserve(batch.size());
        for (const Event& event : batch)
          encoded.push_back(event_to_value(event));
        // Oneway: the publisher side never blocks on a consumer's reply.  A
        // dead consumer throws here; three consecutive failures and the
        // channel drops the subscription.
        consumer.invoke_oneway("push",
                               {corba::Value(std::move(encoded))});
      });
  return corba::Value(id);
}

std::string TelemetryStub::get_metrics(const std::string& format) const {
  return call("get_metrics", {corba::Value(format)}).as_string();
}

std::string TelemetryStub::get_spans(std::uint64_t limit) const {
  return call("get_spans", {corba::Value(limit)}).as_string();
}

std::string TelemetryStub::get_timeline() const {
  return call("get_timeline", {}).as_string();
}

std::string TelemetryStub::get_flight_recorder() const {
  return call("get_flight_recorder", {}).as_string();
}

HealthReport TelemetryStub::health() const {
  return HealthReport::from_value(call("health", {}));
}

std::uint64_t TelemetryStub::subscribe_events(
    const corba::ObjectRef& consumer, const std::vector<std::string>& topics,
    std::uint64_t queue_limit, const std::string& policy,
    double delivery_interval) const {
  corba::ValueSeq topic_values;
  topic_values.reserve(topics.size());
  for (const std::string& topic : topics) topic_values.emplace_back(topic);
  return call("subscribe",
              {consumer.to_value(), corba::Value(std::move(topic_values)),
               corba::Value(queue_limit), corba::Value(policy),
               corba::Value(delivery_interval)})
      .as_u64();
}

bool TelemetryStub::unsubscribe_events(std::uint64_t id) const {
  return call("unsubscribe", {corba::Value(id)}).as_bool();
}

corba::ObjectRef install_telemetry(const std::shared_ptr<corba::ORB>& orb,
                                   naming::NamingContext& root,
                                   TelemetryOptions options) {
  const std::string host = options.host;
  if (host.empty()) throw corba::BAD_PARAM("telemetry requires a host name");
  options.orb = orb;
  // A TCP deployment has no simulator to bind the channel; open it here in
  // worker mode so subscribe() works out of the box.  A SimRuntime binds
  // first (virtual-clock defer executor) and this leaves it alone.
  if (!EventChannel::global().bound()) EventChannel::global().bind({});
  auto servant = std::make_shared<TelemetryServant>(std::move(options));
  const corba::ObjectRef ref = orb->activate(servant, "Telemetry");

  naming::Name context_name;
  context_name.append(std::string(naming::kObsContextId));
  try {
    root.bind_new_context(context_name);
  } catch (const naming::AlreadyBound&) {
    // Another node created the reserved context first.
  }
  naming::Name binding = context_name;
  binding.append(host);
  // rebind: a node restarting after a crash replaces its stale registration.
  root.rebind(binding, ref);
  return ref;
}

}  // namespace obs
