// In-band telemetry: a CORBA servant exposing a node's observability state.
//
// Every runtime activates one TelemetryServant per node ORB and binds it
// under the reserved naming path `_obs/<host>` (naming::kObsContextId).
// Operators and tools (tools/orbtop.cpp) then inspect a live cluster over
// the same GIOP-lite wire the application uses — no side channel, no log
// scraping, and it works identically against the simulator and a real TCP
// deployment.  The reserved subtree resolves exact-match only and bypasses
// both Winner ranking and the quarantine offer filter, so a sick node's
// telemetry stays reachable precisely when it matters.
//
// Process-global vs per-node state: metrics, spans and the flight recorder
// are process-wide substrates, so under the in-process simulator every
// node's servant reports the same counters; the per-node columns (host,
// load, report age, dispatch depth) come from the injected callbacks.  In a
// real deployment each node is its own process and everything is per-node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "naming/naming.hpp"
#include "obs/event_channel.hpp"
#include "obs/publisher.hpp"
#include "orb/object_adapter.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"

namespace obs {

class SpanCollector;

inline constexpr std::string_view kTelemetryRepoId =
    "IDL:corbaft/obs/Telemetry:1.0";
inline constexpr std::string_view kEventConsumerRepoId =
    "IDL:corbaft/obs/EventConsumer:1.0";

// --- push-carrier wire format ------------------------------------------------
// One event is a flat Value sequence:
//   [topic(str), host(str), key(str), t(f64), seq(u64),
//    fields: seq of [name(str), tag("f64"|"u64"|"str"), value]]
// A push batch is one Value: a sequence of event values.  The carrier is the
// normal GIOP-lite transport — the channel delivers a batch by invoking the
// oneway `push` operation on the consumer's EventConsumer servant, so push
// telemetry rides sessions, multiplexing and the reactor like any other call.
corba::Value event_to_value(const Event& event);
Event event_from_value(const corba::Value& value);

/// Consumer-side servant: receives `push` batches and hands the decoded
/// events to `handler` (invoked on the transport's dispatch thread — under
/// the simulator, on the virtual-clock event loop).
class EventConsumerServant final : public corba::Servant {
 public:
  using Handler = std::function<void(std::vector<Event>)>;
  explicit EventConsumerServant(Handler handler);

  std::string_view repo_id() const noexcept override {
    return kEventConsumerRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

 private:
  Handler handler_;
};

/// Flat health summary returned by Telemetry::health() — the one-row-per-
/// host view orbtop renders.  Encoded on the wire as a flat sequence in
/// field order (see to_value()).
struct HealthReport {
  std::string host;
  double now = 0.0;         ///< node's obs::now() when the report was taken
  double report_age = -1.0; ///< seconds since the node's last Winner load
                            ///< report reached the system manager; -1 unknown
  double load_index = -1.0; ///< Winner selection index (lower = better);
                            ///< -1 unknown
  std::uint64_t quarantined = 0; ///< instances currently quarantined
  std::uint64_t dispatch_queue_depth = 0; ///< requests queued + executing
  std::uint64_t rpcs = 0;                 ///< orb.requests_total
  double rpc_p50 = 0.0;  ///< orb.request_latency_s p50 (bucket resolution)
  double rpc_p99 = 0.0;  ///< orb.request_latency_s p99 (bucket resolution)
  std::uint64_t recoveries = 0;       ///< ft.proxy.recoveries_total
  std::uint64_t checkpoints = 0;      ///< ft.pipeline.stores_total
  std::uint64_t checkpoint_bytes = 0; ///< ft.pipeline.bytes_shipped_total
  std::uint64_t flight_recorded = 0;  ///< flight-recorder events ever written
  std::uint64_t auto_dumps = 0;       ///< flight-recorder auto-dump triggers
  std::uint64_t sessions_active = 0;  ///< transport.session.active
  std::uint64_t session_resumes = 0;  ///< transport.session.resumes_total
  /// transport.session.retransmitted_frames_total +
  /// transport.session.replayed_replies_total (both directions of replay)
  std::uint64_t session_retransmits = 0;
  std::uint64_t tcp_connections = 0;  ///< transport.tcp.connections (gauge)

  corba::Value to_value() const;
  static HealthReport from_value(const corba::Value& value);
};

/// Per-node wiring of a TelemetryServant.  Every callback is optional —
/// absent ones report the "unknown" value — so the servant has no hard
/// dependency on Winner, the quarantine or a dispatch pool being present.
struct TelemetryOptions {
  std::string host;
  std::function<double()> report_age;
  std::function<double()> load_index;
  std::function<std::uint64_t()> quarantined;
  std::function<std::uint64_t()> dispatch_queue_depth;
  /// When set, get_spans() renders this collector (the caller keeps
  /// ownership and must outlive the servant).
  const SpanCollector* spans = nullptr;
  /// The node's ORB; the subscribe operation needs it to turn the wire
  /// consumer reference back into an invocable ObjectRef (install_telemetry
  /// fills this in).
  std::weak_ptr<corba::ORB> orb;
  /// When > 0, the servant runs a wall-clock MetricsDeltaPublisher at this
  /// epoch (seconds) for the node — the TCP-deployment producer.  Simulated
  /// runtimes leave this 0 and drive a virtual-clock publisher instead
  /// (core::RuntimeOptions::metrics_epoch).
  double metrics_epoch = 0.0;
};

/// Servant answering the introspection operations:
///   get_metrics(format)     format in {"text", "json", "prometheus"}
///   get_spans(limit)        last `limit` span lines (0 = all)
///   get_timeline()          installed RecoveryTimeline rendering
///   get_flight_recorder()   FlightRecorder::global().to_text()
///   health()                flat HealthReport sequence
///   subscribe(consumer, topics, queue_limit, policy, interval)
///                           registers `consumer` (an EventConsumer ref) on
///                           the node's event channel; returns the u64
///                           subscription id.  Throws BAD_INV_ORDER when no
///                           channel is bound (callers fall back to polling).
///                           The consumer's stringified IOR is the dedupe
///                           identity, so subscribing through every servant
///                           of a shared-process sim cluster yields one
///                           subscription.
///   unsubscribe(id)         bool: removed
class TelemetryServant final : public corba::Servant {
 public:
  explicit TelemetryServant(TelemetryOptions options);
  ~TelemetryServant() override;

  std::string_view repo_id() const noexcept override { return kTelemetryRepoId; }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

  HealthReport health() const;

 private:
  corba::Value subscribe(const corba::ValueSeq& args);

  TelemetryOptions options_;
  /// Wall-clock metrics producer (metrics_epoch > 0 deployments).
  std::unique_ptr<MetricsDeltaPublisher> metrics_publisher_;
};

/// Typed client stub (what orbtop drives).
class TelemetryStub final : public corba::StubBase {
 public:
  TelemetryStub() = default;
  explicit TelemetryStub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}

  std::string get_metrics(const std::string& format = "text") const;
  std::string get_spans(std::uint64_t limit = 0) const;
  std::string get_timeline() const;
  std::string get_flight_recorder() const;
  HealthReport health() const;

  /// Registers `consumer` on the node's push channel.  `topics` empty = all;
  /// `queue_limit` 0 = channel default; `policy` in {"", "drop_oldest",
  /// "coalesce_by_key"} ("" = per-topic defaults).  Returns the subscription
  /// id; throws corba::BAD_INV_ORDER when the node has no channel bound.
  std::uint64_t subscribe_events(const corba::ObjectRef& consumer,
                                 const std::vector<std::string>& topics = {},
                                 std::uint64_t queue_limit = 0,
                                 const std::string& policy = "",
                                 double delivery_interval = 0.0) const;
  bool unsubscribe_events(std::uint64_t id) const;
};

/// Activates a TelemetryServant on `orb` and binds it under
/// `_obs/<options.host>` in `root` (creating the reserved `_obs` context on
/// first use; rebinding replaces a stale registration after a restart).
/// Returns the servant's reference.
corba::ObjectRef install_telemetry(const std::shared_ptr<corba::ORB>& orb,
                                   naming::NamingContext& root,
                                   TelemetryOptions options);

}  // namespace obs
