// In-band telemetry: a CORBA servant exposing a node's observability state.
//
// Every runtime activates one TelemetryServant per node ORB and binds it
// under the reserved naming path `_obs/<host>` (naming::kObsContextId).
// Operators and tools (tools/orbtop.cpp) then inspect a live cluster over
// the same GIOP-lite wire the application uses — no side channel, no log
// scraping, and it works identically against the simulator and a real TCP
// deployment.  The reserved subtree resolves exact-match only and bypasses
// both Winner ranking and the quarantine offer filter, so a sick node's
// telemetry stays reachable precisely when it matters.
//
// Process-global vs per-node state: metrics, spans and the flight recorder
// are process-wide substrates, so under the in-process simulator every
// node's servant reports the same counters; the per-node columns (host,
// load, report age, dispatch depth) come from the injected callbacks.  In a
// real deployment each node is its own process and everything is per-node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "naming/naming.hpp"
#include "orb/object_adapter.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"

namespace obs {

class SpanCollector;

inline constexpr std::string_view kTelemetryRepoId =
    "IDL:corbaft/obs/Telemetry:1.0";

/// Flat health summary returned by Telemetry::health() — the one-row-per-
/// host view orbtop renders.  Encoded on the wire as a flat sequence in
/// field order (see to_value()).
struct HealthReport {
  std::string host;
  double now = 0.0;         ///< node's obs::now() when the report was taken
  double report_age = -1.0; ///< seconds since the node's last Winner load
                            ///< report reached the system manager; -1 unknown
  double load_index = -1.0; ///< Winner selection index (lower = better);
                            ///< -1 unknown
  std::uint64_t quarantined = 0; ///< instances currently quarantined
  std::uint64_t dispatch_queue_depth = 0; ///< requests queued + executing
  std::uint64_t rpcs = 0;                 ///< orb.requests_total
  double rpc_p50 = 0.0;  ///< orb.request_latency_s p50 (bucket resolution)
  double rpc_p99 = 0.0;  ///< orb.request_latency_s p99 (bucket resolution)
  std::uint64_t recoveries = 0;       ///< ft.proxy.recoveries_total
  std::uint64_t checkpoints = 0;      ///< ft.pipeline.stores_total
  std::uint64_t checkpoint_bytes = 0; ///< ft.pipeline.bytes_shipped_total
  std::uint64_t flight_recorded = 0;  ///< flight-recorder events ever written
  std::uint64_t auto_dumps = 0;       ///< flight-recorder auto-dump triggers
  std::uint64_t sessions_active = 0;  ///< transport.session.active
  std::uint64_t session_resumes = 0;  ///< transport.session.resumes_total
  /// transport.session.retransmitted_frames_total +
  /// transport.session.replayed_replies_total (both directions of replay)
  std::uint64_t session_retransmits = 0;
  std::uint64_t tcp_connections = 0;  ///< transport.tcp.connections (gauge)

  corba::Value to_value() const;
  static HealthReport from_value(const corba::Value& value);
};

/// Per-node wiring of a TelemetryServant.  Every callback is optional —
/// absent ones report the "unknown" value — so the servant has no hard
/// dependency on Winner, the quarantine or a dispatch pool being present.
struct TelemetryOptions {
  std::string host;
  std::function<double()> report_age;
  std::function<double()> load_index;
  std::function<std::uint64_t()> quarantined;
  std::function<std::uint64_t()> dispatch_queue_depth;
  /// When set, get_spans() renders this collector (the caller keeps
  /// ownership and must outlive the servant).
  const SpanCollector* spans = nullptr;
};

/// Servant answering the introspection operations:
///   get_metrics(format)     format in {"text", "json", "prometheus"}
///   get_spans(limit)        last `limit` span lines (0 = all)
///   get_timeline()          installed RecoveryTimeline rendering
///   get_flight_recorder()   FlightRecorder::global().to_text()
///   health()                flat HealthReport sequence
class TelemetryServant final : public corba::Servant {
 public:
  explicit TelemetryServant(TelemetryOptions options);

  std::string_view repo_id() const noexcept override { return kTelemetryRepoId; }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

  HealthReport health() const;

 private:
  TelemetryOptions options_;
};

/// Typed client stub (what orbtop drives).
class TelemetryStub final : public corba::StubBase {
 public:
  TelemetryStub() = default;
  explicit TelemetryStub(corba::ObjectRef ref) : StubBase(std::move(ref)) {}

  std::string get_metrics(const std::string& format = "text") const;
  std::string get_spans(std::uint64_t limit = 0) const;
  std::string get_timeline() const;
  std::string get_flight_recorder() const;
  HealthReport health() const;
};

/// Activates a TelemetryServant on `orb` and binds it under
/// `_obs/<options.host>` in `root` (creating the reserved `_obs` context on
/// first use; rebinding replaces a stale registration after a restart).
/// Returns the servant's reference.
corba::ObjectRef install_telemetry(const std::shared_ptr<corba::ORB>& orb,
                                   naming::NamingContext& root,
                                   TelemetryOptions options);

}  // namespace obs
