// Metrics-delta publisher: turns the pull-only MetricsRegistry into a
// `metrics.delta` event stream.
//
// Every epoch it snapshots the registry and publishes one event per entry
// that changed since the previous tick — key = metric name, absolute values
// (not increments), so the channel's coalesce-by-key overflow policy is
// lossless: a consumer that missed three updates of `orb.requests_total`
// still converges on the latest value.  The first tick with a subscriber
// present publishes every entry (the baseline); ticks with no subscriber are
// free and do not advance the baseline, so a late subscriber still gets the
// full picture on the next epoch.
//
// Two drive modes mirror NodeManager: start_threaded() for real deployments
// (a wall-clock thread owned by the publisher), start_deferred() for the
// simulator (self-rescheduling through the virtual-clock executor; the
// internal state is shared_ptr-owned and ticks hold only a weak_ptr, so a
// tick scheduled past stop() is a no-op rather than a use-after-free).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace obs {

class MetricsDeltaPublisher {
 public:
  /// Schedules `fn` to run `delay` seconds from now (the simulator's
  /// virtual-clock executor; see EventChannel::Defer).
  using Defer = std::function<void(double delay, std::function<void()> fn)>;

  struct Options {
    /// Origin stamped on published events ("" = process-wide).
    std::string host;
    /// Seconds between ticks.
    double epoch = 1.0;
    /// Snapshot source; null = MetricsRegistry::global().
    const MetricsRegistry* registry = nullptr;
  };

  explicit MetricsDeltaPublisher(Options options);
  ~MetricsDeltaPublisher();
  MetricsDeltaPublisher(const MetricsDeltaPublisher&) = delete;
  MetricsDeltaPublisher& operator=(const MetricsDeltaPublisher&) = delete;

  /// One comparison pass: publishes changed entries, advances the baseline.
  /// With no channel subscriber this is one atomic load (and the baseline
  /// stays put).  Callable directly in tests; the drive modes call it.
  void tick();

  /// Wall-clock drive: a thread ticking every epoch seconds.
  void start_threaded();
  /// Virtual-clock drive: self-reschedules through `defer` every epoch.
  void start_deferred(Defer defer);
  /// Stops either drive mode; joins the thread, orphans pending deferred
  /// ticks (they no-op through the weak_ptr).  Idempotent.
  void stop();

  std::uint64_t ticks() const noexcept;

 private:
  struct State;
  static void tick_state(State& state);
  static void schedule_deferred(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
  std::thread thread_;
  bool threaded_ = false;
};

}  // namespace obs
