// Recovery timeline: an ordered, virtual-clock-aware event log.
//
// Chaos runs need to answer "what failed, when was it detected, how long did
// restore take" without grepping logs.  The fault-tolerance layer reports
// discrete lifecycle events (failure observed, quarantine tripped, fault
// detected, checkpoint restored, proxy rebound, ...) to an installed
// RecoveryTimeline; timestamps come from obs::now(), so under the simulator
// they are virtual and the rendered timeline is byte-identical across
// same-seed runs.
//
// Like tracing, this is compiled in but free when off: the reporting helpers
// check one relaxed atomic pointer and return when no timeline is installed.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

struct TimelineEvent {
  double t = 0.0;        ///< obs::now() at the event (virtual under sim)
  std::string category;  ///< e.g. "proxy", "detector", "quarantine", "pipeline"
  std::string subject;   ///< the object/node the event is about
  std::string detail;    ///< free-form description
};

/// Thread-safe append-only event log with a deterministic rendering.
class RecoveryTimeline {
 public:
  /// Appends an event stamped with obs::now().
  void record(std::string_view category, std::string_view subject,
              std::string_view detail);
  /// Appends an event with an explicit timestamp (for reporters that already
  /// hold the relevant virtual time, e.g. FaultDetector::sweep(now)).
  void record_at(double t, std::string_view category, std::string_view subject,
                 std::string_view detail);

  std::vector<TimelineEvent> events() const;
  std::size_t size() const;
  void clear();

  /// One line per event in recording order:
  ///   [<t>] <category> <subject>: <detail>
  /// Byte-identical across same-seed simulated runs.
  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::vector<TimelineEvent> events_;
};

/// Installs `timeline` as the process-wide event destination (null
/// uninstalls).  The caller keeps ownership and must uninstall before the
/// timeline is destroyed.
void install_timeline(RecoveryTimeline* timeline);

/// The currently installed timeline, or null.
RecoveryTimeline* installed_timeline() noexcept;

/// Reporting helpers used by the runtime: no-ops when nothing is installed.
void timeline_event(std::string_view category, std::string_view subject,
                    std::string_view detail);
void timeline_event_at(double t, std::string_view category,
                       std::string_view subject, std::string_view detail);

}  // namespace obs
