#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/trace.hpp"

namespace obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; walk the cumulative counts.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * count + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank)
      return i < bounds.size() ? bounds[i]
                               : (bounds.empty() ? 0.0 : bounds.back());
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  if (bounds != other.bounds)
    throw std::invalid_argument("cannot merge histograms with different bounds");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

const std::vector<double>& default_latency_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e3; decade *= 10) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
    }
    return b;
  }();
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end())
    it = slots_.emplace(std::string(name), Slot{}).first;
  Slot& slot = it->second;
  if (slot.gauge || slot.histogram)
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with another kind");
  if (!slot.counter) slot.counter = std::make_unique<Counter>(std::string(name));
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end())
    it = slots_.emplace(std::string(name), Slot{}).first;
  Slot& slot = it->second;
  if (slot.counter || slot.histogram)
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with another kind");
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>(std::string(name));
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (bounds.empty()) bounds = default_latency_bounds();
  std::lock_guard lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end())
    it = slots_.emplace(std::string(name), Slot{}).first;
  Slot& slot = it->second;
  if (slot.counter || slot.gauge)
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with another kind");
  if (!slot.histogram) {
    slot.histogram =
        std::make_unique<Histogram>(std::string(name), std::move(bounds));
  } else if (slot.histogram->bounds() != bounds) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with other bounds");
  }
  return *slot.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot out;
  out.taken_at = now();
  out.entries.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // map order == name order
    MetricEntry entry;
    entry.name = name;
    if (slot.counter) {
      entry.kind = MetricEntry::Kind::counter;
      entry.counter_value = slot.counter->value();
    } else if (slot.gauge) {
      entry.kind = MetricEntry::Kind::gauge;
      entry.gauge_value = slot.gauge->value();
    } else if (slot.histogram) {
      entry.kind = MetricEntry::Kind::histogram;
      entry.histogram = slot.histogram->snapshot();
    } else {
      continue;
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, slot] : slots_) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Metric names come from code today, but nothing enforces that (tests and
// future dynamic registration can carry anything), and one hostile name must
// not corrupt a whole export.  JSON strings escape per RFC 8259.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricEntry& e : snapshot.entries) {
    out += e.name;
    switch (e.kind) {
      case MetricEntry::Kind::counter:
        out += " counter " + std::to_string(e.counter_value);
        break;
      case MetricEntry::Kind::gauge:
        out += " gauge " + format_double(e.gauge_value);
        break;
      case MetricEntry::Kind::histogram:
        out += " histogram count=" + std::to_string(e.histogram.count) +
               " sum=" + format_double(e.histogram.sum) +
               " mean=" + format_double(e.histogram.mean()) +
               " p50=" + format_double(e.histogram.quantile(0.5)) +
               " p99=" + format_double(e.histogram.quantile(0.99));
        break;
    }
    out += '\n';
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema_version\": 1, \"metrics\": [";
  bool first = true;
  for (const MetricEntry& e : snapshot.entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + json_escape(e.name) + "\", ";
    switch (e.kind) {
      case MetricEntry::Kind::counter:
        out += "\"kind\": \"counter\", \"value\": " +
               std::to_string(e.counter_value) + "}";
        break;
      case MetricEntry::Kind::gauge:
        out += "\"kind\": \"gauge\", \"value\": " +
               format_double(e.gauge_value) + "}";
        break;
      case MetricEntry::Kind::histogram: {
        out += "\"kind\": \"histogram\", \"count\": " +
               std::to_string(e.histogram.count) +
               ", \"sum\": " + format_double(e.histogram.sum) + ", \"bounds\": [";
        for (std::size_t i = 0; i < e.histogram.bounds.size(); ++i) {
          if (i > 0) out += ", ";
          out += format_double(e.histogram.bounds[i]);
        }
        out += "], \"buckets\": [";
        for (std::size_t i = 0; i < e.histogram.buckets.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(e.histogram.buckets[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  // taken_at goes after the array so the schema prefix existing validators
  // grep for ('"metrics": {"schema_version": 1, "metrics": [') is unchanged.
  out += "\n], \"taken_at\": " + format_double(snapshot.taken_at) + "}";
  return out;
}

namespace {

/// Prometheus metric name: dots become underscores, and any byte outside
/// the exposition grammar [a-zA-Z0-9_:] becomes `_` too — a newline or
/// quote in a name must not be able to smuggle extra exposition lines.
std::string mangle(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

/// HELP text escaping per the exposition format: backslash and line feed.
std::string escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Label value escaping: backslash, double quote and line feed.
std::string escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Compact rendering for bucket bounds (le labels want "0.001", not the
/// round-trip-exact "%.17g" form).
std::string format_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricEntry& e : snapshot.entries) {
    std::string name = mangle(e.name);
    switch (e.kind) {
      case MetricEntry::Kind::counter: {
        if (!name.ends_with("_total")) name += "_total";
        out += "# HELP " + name + " " + escape_help(e.name) + "\n";
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(e.counter_value) + "\n";
        break;
      }
      case MetricEntry::Kind::gauge: {
        out += "# HELP " + name + " " + escape_help(e.name) + "\n";
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_double(e.gauge_value) + "\n";
        break;
      }
      case MetricEntry::Kind::histogram: {
        // Our convention suffixes seconds-valued histograms with `_s`;
        // Prometheus spells the unit out.
        if (name.ends_with("_s"))
          name.replace(name.size() - 2, 2, "_seconds");
        out += "# HELP " + name + " " + escape_help(e.name) + "\n";
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < e.histogram.bounds.size(); ++i) {
          cumulative += e.histogram.buckets[i];
          out += name + "_bucket{le=\"" +
                 escape_label(format_bound(e.histogram.bounds[i])) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(e.histogram.count) + "\n";
        out += name + "_sum " + format_double(e.histogram.sum) + "\n";
        out += name + "_count " + std::to_string(e.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
