// Metrics registry: lock-cheap counters, gauges and fixed-bucket histograms.
//
// The paper's evaluation is about *measuring* where time goes — naming
// resolution, proxy interception, checkpoint store/restore, recovery — so
// the runtime needs an instrumentation substrate whose hot path costs
// nothing worth mentioning.  The design follows the usual production
// pattern: handles are pre-registered once (a mutex-protected get-or-create
// at component start-up) and the per-event path is a single relaxed atomic
// add on the handle — no map lookups, no allocation, no formatting.
// Exporters are pull-based: snapshot() copies the current values under no
// lock but with stable, name-sorted ordering, and to_text()/to_json()
// render the snapshot; with no exporter installed nothing beyond the atomic
// adds ever happens.
//
// Naming scheme (see DESIGN.md "Observability"): dotted lowercase
// `<layer>.<metric>` with a unit suffix where one applies, e.g.
// `orb.requests_total`, `orb.request_latency_s`, `ft.proxy.recoveries_total`,
// `winner.report_age_max_s`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

/// Adds `v` to an atomic double (fetch_add for doubles is C++20 but not
/// lock-free everywhere; the CAS loop is portable and contention is rare).
inline void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { atomic_add(value_, v); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket, so there are bounds.size() + 1
/// buckets.  record() is a binary search over a handful of doubles plus
/// three relaxed atomic adds; the bounds are immutable after construction,
/// so no locking is ever needed.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v) noexcept;

  const std::string& name() const noexcept { return name_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

  /// Point-in-time copy, mergeable and queryable without the source.
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;

    double mean() const noexcept { return count ? sum / count : 0.0; }
    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// holding the q-th sample (the overflow bucket reports the last finite
    /// bound).  q outside [0, 1] is clamped.
    double quantile(double q) const noexcept;
    /// Adds another snapshot's samples; throws std::invalid_argument when
    /// the bucket boundaries differ (merging is only meaningful between
    /// histograms of one registration).
    void merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket boundaries: a 1-2-5 ladder from 1 microsecond to
/// 100 seconds — wide enough for both wall-clock micro paths and virtual
/// recovery ordeals.
const std::vector<double>& default_latency_bounds();

/// One exported metric, tagged by kind.
struct MetricEntry {
  enum class Kind { counter, gauge, histogram };
  std::string name;
  Kind kind = Kind::counter;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  Histogram::Snapshot histogram;
};

struct MetricsSnapshot {
  std::vector<MetricEntry> entries;  ///< sorted by name (stable exports)
  /// obs::now() at snapshot time (monotonic; virtual under the simulator).
  /// Scrapers — orbtop's --watch mode, Prometheus — compute rates from
  /// (counter delta) / (taken_at delta) between successive snapshots.
  double taken_at = 0.0;
};

/// Owner of all metric handles.  Registration is mutex-protected and meant
/// for start-up; handles have stable addresses for the registry's lifetime
/// (reset() zeroes values in place and never invalidates a handle).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the runtime's instrumentation reports to.
  static MetricsRegistry& global();

  /// Get-or-create.  Throws corba-free std::invalid_argument when a name is
  /// already registered under a different kind (or, for histograms,
  /// different bounds).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric in place (per-run determinism in tests/benches).
  void reset();

 private:
  struct Slot {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
};

/// Human-readable exporter: one `name kind value` line per metric.
std::string to_text(const MetricsSnapshot& snapshot);

/// Machine-readable exporter.  Schema (validated by tools/run_benches.sh):
///   {"schema_version": 1, "metrics": [
///     {"name": "...", "kind": "counter", "value": N},
///     {"name": "...", "kind": "gauge", "value": X},
///     {"name": "...", "kind": "histogram", "count": N, "sum": X,
///      "bounds": [...], "buckets": [...]}  // buckets has bounds+1 entries
///   ], "taken_at": X}
std::string to_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (version 0.0.4): names sanitized to
/// `[a-zA-Z0-9_:]` (`.` -> `_`, anything hostile -> `_`, leading digit
/// prefixed), counters end in `_total`, histograms in seconds end in
/// `_seconds` and render *cumulative* `le` buckets plus `_sum`/`_count`,
/// each metric preceded by `# HELP` (the original name, exposition-escaped)
/// and `# TYPE` lines.  Label values escape `\`, `"` and newline.
std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace obs
