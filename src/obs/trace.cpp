#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

namespace obs {

namespace {

// --- clock ------------------------------------------------------------------

struct ClockState {
  std::mutex mu;
  std::function<double()> clock;  // null => default monotonic clock
  std::uint64_t token = 0;
};

ClockState& clock_state() {
  static ClockState state;
  return state;
}

std::atomic<bool> g_clock_installed{false};

double default_now() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

// --- sink + id stream --------------------------------------------------------

std::atomic<bool> g_tracing{false};
std::mutex g_sink_mu;
std::shared_ptr<const TraceSink> g_sink;  // copied out under the lock

// splitmix64 over (origin ^ counter): well-mixed, seedable, and cheap.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_id_origin{1};
std::atomic<std::uint64_t> g_id_counter{0};

std::uint64_t next_id() noexcept {
  const std::uint64_t n = g_id_counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id =
      splitmix64(g_id_origin.load(std::memory_order_relaxed) ^ n);
  return id ? id : 1;  // 0 means "invalid"; remap the (rare) zero draw
}

thread_local TraceContext t_current;

void deliver(const SpanRecord& record) {
  std::shared_ptr<const TraceSink> sink;
  {
    std::lock_guard lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink && *sink) (*sink)(record);
}

}  // namespace

std::uint64_t set_clock(std::function<double()> clock) {
  ClockState& state = clock_state();
  std::lock_guard lock(state.mu);
  state.clock = std::move(clock);
  g_clock_installed.store(static_cast<bool>(state.clock),
                          std::memory_order_release);
  return ++state.token;
}

void clear_clock(std::uint64_t token) {
  ClockState& state = clock_state();
  std::lock_guard lock(state.mu);
  if (state.token != token) return;  // someone else installed since
  state.clock = nullptr;
  g_clock_installed.store(false, std::memory_order_release);
}

double now() {
  if (!g_clock_installed.load(std::memory_order_acquire)) return default_now();
  ClockState& state = clock_state();
  std::function<double()> clock;
  {
    std::lock_guard lock(state.mu);
    clock = state.clock;
  }
  return clock ? clock() : default_now();
}

void set_trace_sink(TraceSink sink) {
  std::lock_guard lock(g_sink_mu);
  if (sink) {
    g_sink = std::make_shared<const TraceSink>(std::move(sink));
    g_tracing.store(true, std::memory_order_release);
  } else {
    g_sink = nullptr;
    g_tracing.store(false, std::memory_order_release);
  }
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_trace_seed(std::uint64_t seed) {
  g_id_origin.store(seed ? seed : 1, std::memory_order_relaxed);
  g_id_counter.store(0, std::memory_order_relaxed);
}

TraceContext current_trace() noexcept { return t_current; }

TraceContext exchange_current_trace(const TraceContext& context) noexcept {
  return std::exchange(t_current, context);
}

Span::Span(std::string_view name, std::string_view detail) {
  if (!tracing_enabled()) return;
  active_ = true;
  record_.name = name;
  record_.detail = detail;
  saved_ = t_current;
  record_.context.trace_id = saved_.valid() ? saved_.trace_id : next_id();
  record_.context.span_id = next_id();
  record_.context.parent_span_id = saved_.span_id;
  record_.start = now();
  t_current = record_.context;
}

Span::~Span() {
  if (!active_) return;
  t_current = saved_;
  record_.end = now();
  deliver(record_);
}

void Span::annotate(std::string_view detail) {
  if (!active_) return;
  if (!record_.detail.empty()) record_.detail += ' ';
  record_.detail += detail;
}

void record_span(std::string_view name, std::string_view detail, double start,
                 double end, const TraceContext& parent) {
  if (!tracing_enabled()) return;
  SpanRecord record;
  record.name = name;
  record.detail = detail;
  const TraceContext base = parent.valid() ? parent : t_current;
  record.context.trace_id = base.valid() ? base.trace_id : next_id();
  record.context.span_id = next_id();
  record.context.parent_span_id = base.span_id;
  record.start = start;
  record.end = end;
  deliver(record);
}

void SpanCollector::install() {
  set_trace_sink([this](const SpanRecord& record) {
    std::lock_guard lock(mu_);
    records_.push_back(record);
  });
}

std::vector<SpanRecord> SpanCollector::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::size_t SpanCollector::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

void SpanCollector::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
}

std::string SpanCollector::dump() const {
  std::lock_guard lock(mu_);
  std::string out;
  char buf[160];
  for (const SpanRecord& r : records_) {
    std::snprintf(buf, sizeof(buf),
                  " trace=%016llx span=%016llx parent=%016llx [%.9f, %.9f]\n",
                  static_cast<unsigned long long>(r.context.trace_id),
                  static_cast<unsigned long long>(r.context.span_id),
                  static_cast<unsigned long long>(r.context.parent_span_id),
                  r.start, r.end);
    out += r.name;
    if (!r.detail.empty()) {
      out += ' ';
      out += r.detail;
    }
    out += buf;
  }
  return out;
}

}  // namespace obs
