#include "obs/event_channel.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

// Channel-wide accounting.  Handles resolved once; the struct's construction
// inside EventChannel's constructor also pins MetricsRegistry::global() ahead
// of the channel in static-destruction order.
struct ChannelMetrics {
  Counter& published;
  Counter& delivered;
  Counter& dropped;
  Counter& coalesced;
  Counter& push_failures;
  Gauge& subscribers;
  Histogram& delivery_latency;

  ChannelMetrics()
      : published(MetricsRegistry::global().counter("obs.events.published_total")),
        delivered(MetricsRegistry::global().counter("obs.events.delivered_total")),
        dropped(MetricsRegistry::global().counter("obs.events.dropped_total")),
        coalesced(MetricsRegistry::global().counter("obs.events.coalesced_total")),
        push_failures(
            MetricsRegistry::global().counter("obs.events.push_failures_total")),
        subscribers(MetricsRegistry::global().gauge("obs.events.subscribers")),
        delivery_latency(MetricsRegistry::global().histogram(
            "obs.events.delivery_latency_s")) {}
};

ChannelMetrics& channel_metrics() {
  static ChannelMetrics metrics;
  return metrics;
}

// Deterministic double rendering for to_line(): same format regardless of
// locale or value provenance, so same-seed streams diff byte-for-byte.
std::string format_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string format_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

constexpr std::string_view kTopicNames[kTopicCount] = {
    "metrics.delta", "flight.event", "load.report", "recovery.timeline",
    "session.state", "shard.state"};

// After this many consecutive consumer invocations throw, the subscription
// is torn down — a departed remote consumer must not hold its queue forever.
constexpr std::uint64_t kMaxConsecutiveFailures = 3;

}  // namespace

std::string_view to_string(Topic topic) noexcept {
  const auto index = static_cast<std::size_t>(topic);
  return index < kTopicCount ? kTopicNames[index] : "unknown";
}

std::optional<Topic> parse_topic(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kTopicCount; ++i) {
    if (kTopicNames[i] == name) return static_cast<Topic>(i);
  }
  return std::nullopt;
}

EventField num_field(std::string name, double value) {
  EventField field;
  field.name = std::move(name);
  field.kind = EventField::Kind::f64;
  field.f64 = value;
  return field;
}

EventField int_field(std::string name, std::uint64_t value) {
  EventField field;
  field.name = std::move(name);
  field.kind = EventField::Kind::u64;
  field.u64 = value;
  return field;
}

EventField str_field(std::string name, std::string value) {
  EventField field;
  field.name = std::move(name);
  field.kind = EventField::Kind::str;
  field.str = std::move(value);
  return field;
}

std::string Event::to_line() const {
  std::string out;
  out.reserve(96);
  out += "[";
  out += format_time(t);
  out += "] #";
  out += std::to_string(seq);
  out += " ";
  out += to_string(topic);
  out += " host=";
  out += host;
  out += " key=";
  out += key;
  for (const auto& field : fields) {
    out += " ";
    out += field.name;
    out += "=";
    switch (field.kind) {
      case EventField::Kind::f64:
        out += format_number(field.f64);
        break;
      case EventField::Kind::u64:
        out += std::to_string(field.u64);
        break;
      case EventField::Kind::str:
        out += field.str;
        break;
    }
  }
  return out;
}

OverflowPolicy default_policy(Topic topic) noexcept {
  switch (topic) {
    case Topic::metrics_delta:
    case Topic::load_report:
    case Topic::shard_state:
      // State topics carry absolute values; a newer one supersedes an
      // unsent older one losslessly.
      return OverflowPolicy::coalesce_by_key;
    case Topic::flight_event:
    case Topic::recovery_timeline:
    case Topic::session_state:
      return OverflowPolicy::drop_oldest;
  }
  return OverflowPolicy::drop_oldest;
}

EventChannel::EventChannel() {
  // Pin the registry and the flight recorder ahead of this channel in
  // static-destruction order: publish() and the overflow dump touch both.
  channel_metrics();
  FlightRecorder::global();
}

EventChannel::~EventChannel() { unbind(); }

EventChannel& EventChannel::global() {
  static EventChannel channel;
  return channel;
}

void EventChannel::bind(Options options) {
  std::unique_lock lock(mu_);
  if (bound_ && subscriber_count_.load(std::memory_order_relaxed) > 0) {
    throw std::logic_error(
        "EventChannel::bind: channel already bound with live subscribers");
  }
  stop_worker_locked(lock);
  ++generation_;
  options_ = std::move(options);
  if (options_.max_batch == 0) options_.max_batch = 1;
  bound_ = true;
}

void EventChannel::unbind() {
  std::unique_lock lock(mu_);
  if (!bound_ && subscribers_.empty() && !worker_running_) return;
  ++generation_;
  // Close before the join below releases the lock, so a racing subscribe()
  // lands on "not bound" instead of a subscriber nobody will ever drain.
  bound_ = false;
  for (auto& sub : subscribers_) sub->dead = true;
  subscribers_.clear();
  subscriber_count_.store(0, std::memory_order_relaxed);
  channel_metrics().subscribers.set(0.0);
  stop_worker_locked(lock);
  options_ = {};
  flush_cv_.notify_all();
}

bool EventChannel::bound() const noexcept {
  std::lock_guard lock(mu_);
  return bound_;
}

std::uint64_t EventChannel::subscribe(SubscribeOptions options,
                                      Consumer consumer) {
  if (!consumer) {
    throw std::invalid_argument("EventChannel::subscribe: null consumer");
  }
  std::unique_lock lock(mu_);
  if (!bound_) {
    throw std::logic_error("EventChannel::subscribe: channel not bound");
  }
  if (!options.consumer_id.empty()) {
    for (const auto& sub : subscribers_) {
      if (sub->consumer_id == options.consumer_id) return sub->id;
    }
  }
  auto sub = std::make_shared<Subscriber>();
  sub->id = next_id_++;
  sub->consumer_id = std::move(options.consumer_id);
  if (options.topics.empty()) {
    sub->wants.fill(true);
  } else {
    for (Topic topic : options.topics) {
      const auto index = static_cast<std::size_t>(topic);
      if (index < kTopicCount) sub->wants[index] = true;
    }
  }
  for (std::size_t i = 0; i < kTopicCount; ++i) {
    sub->policy[i] =
        options.policy ? *options.policy : default_policy(static_cast<Topic>(i));
  }
  sub->queue_limit = std::max<std::size_t>(1, options.queue_limit);
  sub->delivery_interval = std::max(0.0, options.delivery_interval);
  sub->consumer = std::move(consumer);
  sub->stat.id = sub->id;
  sub->stat.consumer_id = sub->consumer_id;
  sub->stat.queue_limit = sub->queue_limit;
  subscribers_.push_back(sub);
  subscriber_count_.store(subscribers_.size(), std::memory_order_relaxed);
  channel_metrics().subscribers.set(static_cast<double>(subscribers_.size()));
  if (!options_.defer && !worker_running_) {
    stop_worker_ = false;
    worker_running_ = true;
    worker_ = std::thread([this] { worker_loop(); });
  }
  return sub->id;
}

bool EventChannel::unsubscribe(std::uint64_t id) {
  std::lock_guard lock(mu_);
  const auto before = subscribers_.size();
  remove_locked(id);
  return subscribers_.size() != before;
}

void EventChannel::remove_locked(std::uint64_t id) {
  auto it = std::find_if(subscribers_.begin(), subscribers_.end(),
                         [id](const auto& sub) { return sub->id == id; });
  if (it == subscribers_.end()) return;
  (*it)->dead = true;
  subscribers_.erase(it);
  subscriber_count_.store(subscribers_.size(), std::memory_order_relaxed);
  channel_metrics().subscribers.set(static_cast<double>(subscribers_.size()));
  flush_cv_.notify_all();
}

void EventChannel::publish(Topic topic, std::string_view host,
                           std::string_view key,
                           std::vector<EventField> fields) {
  // The no-subscriber fast path: one relaxed load, no lock, no accounting —
  // the channel unbound/idle must not perturb Table 1 or sim timings.
  if (subscriber_count_.load(std::memory_order_relaxed) == 0) return;

  bool dump_flight = false;
  {
    std::lock_guard lock(mu_);
    if (subscribers_.empty()) return;
    Event event;
    event.topic = topic;
    event.host.assign(host);
    event.key.assign(key);
    event.t = now();
    event.seq = ++seq_;
    event.fields = std::move(fields);
    channel_metrics().published.inc();

    const auto index = static_cast<std::size_t>(topic);
    bool queued_any = false;
    for (auto& sub : subscribers_) {
      if (index >= kTopicCount || !sub->wants[index]) continue;
      bool overflowed = false;
      enqueue_locked(*sub, event, overflowed);
      queued_any = true;
      if (overflowed && !sub->overflow_dumped) {
        sub->overflow_dumped = true;
        dump_flight = true;
      }
      if (options_.defer) schedule_drain_locked(sub);
    }
    if (queued_any && !options_.defer) work_cv_.notify_one();
  }
  if (dump_flight) {
    // Outside the lock: the dump publishes the flight ring back onto this
    // channel (FlightRecorder::dump_to_events), re-entering publish().
    flight_auto_dump("events.subscriber_overflow");
  }
}

void EventChannel::enqueue_locked(Subscriber& sub, const Event& event,
                                  bool& overflowed) {
  auto& metrics = channel_metrics();
  if (sub.queue.size() >= sub.queue_limit) {
    overflowed = true;
    const auto policy = sub.policy[static_cast<std::size_t>(event.topic)];
    if (policy == OverflowPolicy::coalesce_by_key) {
      // Replace the newest queued event with the same (topic, key): the
      // incoming absolute value supersedes it, keeping its queue position
      // so delivery order stays oldest-first.
      for (auto it = sub.queue.rbegin(); it != sub.queue.rend(); ++it) {
        if (it->topic == event.topic && it->key == event.key) {
          *it = event;
          ++sub.stat.coalesced;
          metrics.coalesced.inc();
          return;
        }
      }
    }
    // drop_oldest, or coalesce with no key match.
    sub.queue.pop_front();
    ++sub.stat.dropped;
    metrics.dropped.inc();
  }
  sub.queue.push_back(event);
  ++sub.stat.enqueued;
}

void EventChannel::schedule_drain_locked(const std::shared_ptr<Subscriber>& sub) {
  if (sub->drain_scheduled || sub->queue.empty()) return;
  sub->drain_scheduled = true;
  const double delay = std::max(0.0, sub->next_delivery_at - now());
  const std::uint64_t generation = generation_;
  options_.defer(delay, [this, sub, generation] {
    drain_deferred(sub, generation);
  });
}

void EventChannel::drain_deferred(const std::shared_ptr<Subscriber>& sub,
                                  std::uint64_t generation) {
  std::unique_lock lock(mu_);
  if (generation != generation_ || sub->dead) return;
  sub->drain_scheduled = false;
  if (!deliver_locked(lock, sub)) return;
  if (sub->delivery_interval > 0.0) {
    sub->next_delivery_at = now() + sub->delivery_interval;
  }
  if (!sub->queue.empty()) schedule_drain_locked(sub);
}

bool EventChannel::deliver_locked(std::unique_lock<std::mutex>& lock,
                                  const std::shared_ptr<Subscriber>& sub) {
  if (sub->queue.empty()) return true;
  const std::size_t batch_size = std::min(options_.max_batch, sub->queue.size());
  std::vector<Event> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch.push_back(std::move(sub->queue.front()));
    sub->queue.pop_front();
  }
  sub->delivering = true;
  lock.unlock();
  bool ok = true;
  try {
    sub->consumer(std::span<const Event>(batch));
  } catch (...) {
    ok = false;
  }
  const double delivered_at = now();
  lock.lock();
  sub->delivering = false;
  auto& metrics = channel_metrics();
  if (ok) {
    sub->consecutive_failures = 0;
    sub->stat.delivered += batch.size();
    metrics.delivered.inc(batch.size());
    for (const auto& event : batch) {
      metrics.delivery_latency.record(std::max(0.0, delivered_at - event.t));
    }
  } else {
    ++sub->stat.failures;
    metrics.push_failures.inc();
    // The failed batch is lost; account it so drops are never silent.
    sub->stat.dropped += batch.size();
    metrics.dropped.inc(batch.size());
    if (++sub->consecutive_failures >= kMaxConsecutiveFailures && !sub->dead) {
      remove_locked(sub->id);
      return false;
    }
  }
  if (sub->dead) return false;
  if (sub->queue.empty()) flush_cv_.notify_all();
  return true;
}

void EventChannel::worker_loop() {
  std::unique_lock lock(mu_);
  while (!stop_worker_) {
    // Pick the first subscriber that is due: non-empty queue and past its
    // delivery interval.  Track the earliest not-yet-due deadline so the
    // wait below wakes exactly when work becomes deliverable.
    std::shared_ptr<Subscriber> due;
    double earliest = -1.0;
    const double t = now();
    for (auto& sub : subscribers_) {
      if (sub->queue.empty() || sub->delivering) continue;
      if (sub->next_delivery_at <= t) {
        due = sub;
        break;
      }
      if (earliest < 0.0 || sub->next_delivery_at < earliest) {
        earliest = sub->next_delivery_at;
      }
    }
    if (due) {
      if (deliver_locked(lock, due) && due->delivery_interval > 0.0) {
        due->next_delivery_at = now() + due->delivery_interval;
      }
      continue;
    }
    if (earliest >= 0.0) {
      work_cv_.wait_for(lock,
                        std::chrono::duration<double>(earliest - t + 1e-4));
    } else {
      work_cv_.wait(lock);
    }
  }
}

void EventChannel::stop_worker_locked(std::unique_lock<std::mutex>& lock) {
  if (!worker_running_) return;
  stop_worker_ = true;
  work_cv_.notify_all();
  std::thread worker = std::move(worker_);
  lock.unlock();
  worker.join();
  lock.lock();
  worker_running_ = false;
  stop_worker_ = false;
}

void EventChannel::flush() {
  std::unique_lock lock(mu_);
  if (options_.defer || !worker_running_) return;
  work_cv_.notify_all();
  flush_cv_.wait(lock, [this] {
    if (!worker_running_) return true;
    for (const auto& sub : subscribers_) {
      if (!sub->queue.empty() || sub->delivering) return false;
    }
    return true;
  });
}

std::vector<SubscriberStats> EventChannel::stats() const {
  std::lock_guard lock(mu_);
  std::vector<SubscriberStats> out;
  out.reserve(subscribers_.size());
  for (const auto& sub : subscribers_) {
    SubscriberStats stat = sub->stat;
    stat.depth = sub->queue.size();
    out.push_back(std::move(stat));
  }
  return out;
}

void EventChannel::reset() {
  unbind();
  std::lock_guard lock(mu_);
  seq_ = 0;
  next_id_ = 1;
}

void publish_event(Topic topic, std::string_view host, std::string_view key,
                   std::vector<EventField> fields) {
  EventChannel::global().publish(topic, host, key, std::move(fields));
}

bool events_wanted() noexcept {
  return EventChannel::global().subscriber_count() > 0;
}

}  // namespace obs
