// Naming context servant: the server-side implementation of the (load
// distributing) naming service.
//
// One servant holds the bindings of one context; sub-contexts created with
// bind_new_context are further servants on the same ORB, so a whole naming
// graph lives in one "naming server process" — the usual CosNaming
// deployment.  The OMG specifies only the interface, which is what lets the
// paper swap in a load-distributing implementation without touching any
// client or ORB (§2); the same servant here covers both roles, configured by
// NamingContextOptions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <variant>

#include "naming/naming.hpp"
#include "winner/load_info.hpp"

namespace naming {

struct NamingContextOptions {
  /// Strategy used by plain resolve() when a name holds multiple offers.
  ResolveStrategy default_strategy = ResolveStrategy::first;

  /// Winner system manager consulted by the `winner` strategy.  May be the
  /// in-process SystemManager or a SystemManagerStub.
  std::shared_ptr<winner::LoadInformationService> winner;

  /// Seed for the `random` strategy (deterministic experiments).
  std::uint64_t random_seed = 1;

  /// When the Winner manager is unreachable or knows no fresh host, fall
  /// back to round-robin instead of failing the resolve.  This implements
  /// the paper's "worst case: at least the same results as the unmodified
  /// naming service".
  bool winner_fallback = true;

  /// Report each winner-strategy selection back via notify_placement so
  /// consecutive resolves spread across machines.
  bool notify_placements = true;

  /// Consulted on every offer selection: return false to exclude an offer
  /// from resolution (the ft layer wires its quarantine breaker in here —
  /// a std::function keeps naming free of an ft dependency).  Excluded
  /// offers stay bound and visible through list_offers, so health probes
  /// can still reach them.  When every offer of a name is excluded the
  /// resolve throws NotFound, which sends recovering proxies to their
  /// factory fallback instead of a known-bad instance.
  std::function<bool(const Name&, const Offer&)> offer_filter;
};

class NamingContextServant final
    : public corba::Servant,
      public NamingContext,
      public std::enable_shared_from_this<NamingContextServant> {
 public:
  /// Creates and activates a root context on `orb`.
  static std::pair<std::shared_ptr<NamingContextServant>, corba::ObjectRef>
  create_root(const std::shared_ptr<corba::ORB>& orb,
              NamingContextOptions options = {});

  // --- corba::Servant ------------------------------------------------------
  std::string_view repo_id() const noexcept override {
    return kNamingContextRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

  // --- NamingContext -------------------------------------------------------
  void bind(const Name& name, const corba::ObjectRef& obj) override;
  void rebind(const Name& name, const corba::ObjectRef& obj) override;
  corba::ObjectRef resolve(const Name& name) override;
  void unbind(const Name& name) override;
  corba::ObjectRef bind_new_context(const Name& name) override;
  std::vector<Binding> list() override;
  void bind_offer(const Name& name, const corba::ObjectRef& obj,
                  const std::string& host) override;
  void unbind_offer(const Name& name, const std::string& host) override;
  std::vector<Offer> list_offers(const Name& name) override;
  corba::ObjectRef resolve_with(const Name& name,
                                ResolveStrategy strategy) override;

  /// Reference of this context (valid after create_root / bind_new_context).
  const corba::ObjectRef& self_ref() const noexcept { return self_; }

  // --- persistence (§5 (a): "stabilizing the prototype") -------------------
  // The whole context tree serializes to a blob.  The servant also answers
  // the _get_state/_set_state protocol with it (implemented directly to
  // avoid a layering cycle with src/ft), so the naming service itself can
  // be covered by the paper's own checkpoint/restart fault tolerance.
  /// Serializes this context and every sub-context (bindings, offers).
  corba::Blob get_state();
  /// Replaces all bindings with a previously serialized tree; sub-context
  /// servants are re-created on this servant's ORB.
  void set_state(const corba::Blob& state);

  /// File-backed convenience wrappers around get_state/set_state.
  void save_snapshot(const std::filesystem::path& path);
  void load_snapshot(const std::filesystem::path& path);

 private:
  struct ObjectEntry {
    corba::ObjectRef ref;
  };
  struct ContextEntry {
    std::shared_ptr<NamingContextServant> servant;
    corba::ObjectRef ref;
  };
  struct OfferEntry {
    std::vector<Offer> offers;
    std::size_t round_robin_next = 0;
    /// Winner-ranked host order cached between load-report epochs.  Valid
    /// only while the manager's load_epoch() still equals rank_epoch; any
    /// bind_offer/unbind_offer on this name also invalidates it.
    std::vector<std::string> ranked_hosts;
    std::uint64_t rank_epoch = 0;
    bool rank_valid = false;
  };
  using Entry = std::variant<ObjectEntry, ContextEntry, OfferEntry>;
  using Key = std::pair<std::string, std::string>;  // (id, kind)

  explicit NamingContextServant(std::weak_ptr<corba::ORB> orb,
                                NamingContextOptions options);

  static Key key_of(const NameComponent& c) { return {c.id, c.kind}; }
  static void require_nonempty(const Name& name);

  /// Resolves intermediate components to the owning context of name.back().
  /// Returns nullptr-equivalent by throwing NotFound.
  std::shared_ptr<NamingContextServant> descend(const Name& name);

  corba::ObjectRef pick_offer(const Name& name, OfferEntry& entry,
                              ResolveStrategy strategy);

  std::weak_ptr<corba::ORB> orb_;
  NamingContextOptions options_;
  /// True for contexts bound under the reserved `_obs` prefix (directly or
  /// transitively): their offers resolve exact-match only — no Winner
  /// ranking, no rank cache, no placement notification, no offer filter.
  bool reserved_ = false;
  corba::ObjectRef self_;
  std::mutex mu_;
  std::map<Key, Entry> bindings_;
  std::mt19937_64 rng_;
};

}  // namespace naming
