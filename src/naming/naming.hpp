// Naming service interface: CosNaming semantics plus the paper's load
// distribution extension.
//
// Standard operations (bind/rebind/resolve/unbind/contexts/list) follow the
// OMG naming service.  The extension is the *offer set*: a leaf name may
// hold several object references — one service instance per workstation —
// and resolve() picks among them with a pluggable strategy.  With the
// `winner` strategy, resolution asks the Winner system manager for the host
// currently offering the best performance, which is exactly how the paper
// integrates load distribution "transparently ... into the naming service"
// (§2): clients keep calling plain resolve().
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "naming/name.hpp"
#include "orb/orb.hpp"

namespace naming {

inline constexpr std::string_view kNamingContextRepoId =
    "IDL:corbaft/naming/NamingContext:1.0";

/// Reserved naming subtree for the in-band introspection plane: every
/// runtime binds its telemetry object under `_obs/<host>`.  Names under the
/// reserved prefix resolve *exact-match only* — they never participate in
/// Winner-ranked or otherwise load-balanced offer selection, are never
/// reported as placements, and bypass the offer filter (a quarantined host's
/// telemetry must stay reachable, that is the whole point of quarantining
/// it).  See DESIGN.md "In-band introspection".
inline constexpr std::string_view kObsContextId = "_obs";

/// True for binding ids inside the reserved introspection namespace.
inline bool is_reserved_id(std::string_view id) noexcept {
  return id.starts_with(kObsContextId);
}

struct NotFound : corba::UserException {
  explicit NotFound(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/naming/NotFound:1.0";
  }
};

struct AlreadyBound : corba::UserException {
  explicit AlreadyBound(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/naming/AlreadyBound:1.0";
  }
};

struct NotEmpty : corba::UserException {
  explicit NotEmpty(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/naming/NotEmpty:1.0";
  }
};

/// How resolve() picks among the offers bound to one name.
enum class ResolveStrategy {
  first,        ///< always the first surviving offer (a plain naming service)
  round_robin,  ///< cycle through offers
  random,       ///< uniform random offer (seeded, deterministic)
  winner,       ///< offer on the best host per the Winner system manager
};

/// Parses "first"/"round_robin"/"random"/"winner"; throws corba::BAD_PARAM.
ResolveStrategy parse_strategy(std::string_view text);
std::string_view to_string(ResolveStrategy strategy) noexcept;

struct Binding {
  Name name;          ///< single-component name of the binding
  bool is_context = false;
  std::size_t offer_count = 0;  ///< 0 for plain object/context bindings
};

struct Offer {
  corba::ObjectRef ref;
  std::string host;  ///< workstation the service instance runs on
};

/// Client API of a naming context; implemented by the servant (server side)
/// and by NamingContextStub (remote side).
class NamingContext {
 public:
  virtual ~NamingContext() = default;

  virtual void bind(const Name& name, const corba::ObjectRef& obj) = 0;
  virtual void rebind(const Name& name, const corba::ObjectRef& obj) = 0;
  virtual corba::ObjectRef resolve(const Name& name) = 0;
  virtual void unbind(const Name& name) = 0;
  /// Creates (and binds) a fresh sub-context.
  virtual corba::ObjectRef bind_new_context(const Name& name) = 0;
  virtual std::vector<Binding> list() = 0;

  // --- load distribution extension ---------------------------------------
  /// Adds a service offer for `name` on workstation `host`.  Offers under
  /// one name accumulate; binding an offer over a plain object binding (or
  /// vice versa) raises AlreadyBound.
  virtual void bind_offer(const Name& name, const corba::ObjectRef& obj,
                          const std::string& host) = 0;
  /// Removes the offer(s) on `host`; removing the last offer unbinds the
  /// name.  Raises NotFound when none matches.
  virtual void unbind_offer(const Name& name, const std::string& host) = 0;
  virtual std::vector<Offer> list_offers(const Name& name) = 0;
  /// resolve() with an explicit strategy override.
  virtual corba::ObjectRef resolve_with(const Name& name,
                                        ResolveStrategy strategy) = 0;

  // Convenience overloads on stringified names.
  corba::ObjectRef resolve_str(std::string_view name) {
    return resolve(Name::parse(name));
  }
  void bind_str(std::string_view name, const corba::ObjectRef& obj) {
    bind(Name::parse(name), obj);
  }
};

}  // namespace naming
