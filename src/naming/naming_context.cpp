#include "naming/naming_context.hpp"

#include <algorithm>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace naming {

namespace {

corba::RegisterUserException<NotFound> register_not_found;
corba::RegisterUserException<AlreadyBound> register_already_bound;
corba::RegisterUserException<NotEmpty> register_not_empty;
corba::RegisterUserException<InvalidName> register_invalid_name;

}  // namespace

ResolveStrategy parse_strategy(std::string_view text) {
  if (text == "first") return ResolveStrategy::first;
  if (text == "round_robin") return ResolveStrategy::round_robin;
  if (text == "random") return ResolveStrategy::random;
  if (text == "winner") return ResolveStrategy::winner;
  throw corba::BAD_PARAM("unknown resolve strategy '" + std::string(text) + "'");
}

std::string_view to_string(ResolveStrategy strategy) noexcept {
  switch (strategy) {
    case ResolveStrategy::first: return "first";
    case ResolveStrategy::round_robin: return "round_robin";
    case ResolveStrategy::random: return "random";
    case ResolveStrategy::winner: return "winner";
  }
  return "first";
}

NamingContextServant::NamingContextServant(std::weak_ptr<corba::ORB> orb,
                                           NamingContextOptions options)
    : orb_(std::move(orb)),
      options_(std::move(options)),
      rng_(options_.random_seed) {}

std::pair<std::shared_ptr<NamingContextServant>, corba::ObjectRef>
NamingContextServant::create_root(const std::shared_ptr<corba::ORB>& orb,
                                  NamingContextOptions options) {
  if (!orb) throw corba::BAD_PARAM("null ORB");
  auto servant = std::shared_ptr<NamingContextServant>(
      new NamingContextServant(orb, std::move(options)));
  servant->self_ = orb->activate(servant, "NamingContext");
  return {servant, servant->self_};
}

void NamingContextServant::require_nonempty(const Name& name) {
  if (name.empty()) throw InvalidName("empty name");
}

std::shared_ptr<NamingContextServant> NamingContextServant::descend(
    const Name& name) {
  require_nonempty(name);
  if (name.size() == 1) return shared_from_this();
  std::shared_ptr<NamingContextServant> child;
  {
    std::lock_guard lock(mu_);
    auto it = bindings_.find(key_of(name.front()));
    if (it == bindings_.end())
      throw NotFound("missing context '" + name.front().id + "'");
    auto* context = std::get_if<ContextEntry>(&it->second);
    if (context == nullptr)
      throw NotFound("'" + name.front().id + "' is not a context");
    child = context->servant;
  }
  return child->descend(name.tail());
}

void NamingContextServant::bind(const Name& name, const corba::ObjectRef& obj) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->bind(Name{name.back()}, obj);
  std::lock_guard lock(mu_);
  auto [it, inserted] = bindings_.emplace(key_of(name.back()),
                                          ObjectEntry{obj});
  if (!inserted) throw AlreadyBound("'" + name.back().id + "'");
}

void NamingContextServant::rebind(const Name& name,
                                  const corba::ObjectRef& obj) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->rebind(Name{name.back()}, obj);
  std::lock_guard lock(mu_);
  bindings_[key_of(name.back())] = ObjectEntry{obj};
}

corba::ObjectRef NamingContextServant::resolve(const Name& name) {
  return resolve_with(name, options_.default_strategy);
}

corba::ObjectRef NamingContextServant::resolve_with(const Name& name,
                                                    ResolveStrategy strategy) {
  auto owner = descend(name);
  if (owner.get() != this)
    return owner->resolve_with(Name{name.back()}, strategy);
  static obs::Counter& resolves =
      obs::MetricsRegistry::global().counter("naming.resolves_total");
  resolves.inc();
  obs::Span span("naming.resolve", name.to_string());
  std::lock_guard lock(mu_);
  auto it = bindings_.find(key_of(name.back()));
  if (it == bindings_.end())
    throw NotFound("'" + name.back().id + "' is not bound");
  if (auto* object = std::get_if<ObjectEntry>(&it->second)) return object->ref;
  if (auto* context = std::get_if<ContextEntry>(&it->second))
    return context->ref;
  return pick_offer(name, std::get<OfferEntry>(it->second), strategy);
}

corba::ObjectRef NamingContextServant::pick_offer(const Name& name,
                                                  OfferEntry& entry,
                                                  ResolveStrategy strategy) {
  if (entry.offers.empty())
    throw NotFound("'" + name.back().id + "' has no offers");
  // Reserved-name guard: the `_obs` introspection subtree is exact-match
  // only.  Load balancing a telemetry lookup would answer "how is host X
  // doing" with some *other* host's telemetry, and the offer filter must not
  // apply either — a quarantined host's telemetry object is exactly what an
  // operator wants to reach.  No Winner consult, no rank cache traffic, no
  // placement notification.
  if (reserved_ || is_reserved_id(name.back().id))
    return entry.offers.front().ref;
  // Narrow to the usable candidates.  The filter never mutates the bound
  // offers — a filtered (e.g. quarantined) instance stays visible through
  // list_offers so health probes can rehabilitate it.
  std::vector<const Offer*> usable;
  usable.reserve(entry.offers.size());
  for (const Offer& offer : entry.offers)
    if (!options_.offer_filter || options_.offer_filter(name, offer))
      usable.push_back(&offer);
  if (usable.empty())
    throw NotFound("every offer of '" + name.back().id +
                   "' is filtered (quarantined)");
  switch (strategy) {
    case ResolveStrategy::first:
      return usable.front()->ref;
    case ResolveStrategy::round_robin:
      return usable[entry.round_robin_next++ % usable.size()]->ref;
    case ResolveStrategy::random:
      return usable[std::uniform_int_distribution<std::size_t>(
          0, usable.size() - 1)(rng_)]
          ->ref;
    case ResolveStrategy::winner:
      break;
  }
  // winner strategy: pick the offer on the currently best host.  The ranked
  // host order is cached per name and reused while the manager's ranking
  // inputs are unchanged (same non-zero load_epoch); the cache ranks ALL
  // bound hosts and the quarantine filter is applied at pick time, so the
  // ordering stays valid while individual offers flip in and out of the
  // usable set (a stable sort restricted to a subsequence preserves order).
  if (options_.winner) {
    static obs::Counter& cache_hits =
        obs::MetricsRegistry::global().counter("naming.rank_cache_hits_total");
    static obs::Counter& cache_misses =
        obs::MetricsRegistry::global().counter("naming.rank_cache_misses_total");
    try {
      const std::uint64_t epoch = options_.winner->load_epoch();
      const bool cacheable = epoch != 0;  // 0 = epochs not tracked
      if (cacheable && entry.rank_valid && entry.rank_epoch == epoch) {
        cache_hits.inc();
      } else {
        std::vector<std::string> hosts;
        hosts.reserve(entry.offers.size());
        for (const Offer& offer : entry.offers) hosts.push_back(offer.host);
        entry.ranked_hosts = options_.winner->rank_hosts(hosts);
        entry.rank_epoch = epoch;
        entry.rank_valid = cacheable;
        cache_misses.inc();
      }
      for (const std::string& best : entry.ranked_hosts) {
        auto it = std::find_if(usable.begin(), usable.end(),
                               [&](const Offer* o) { return o->host == best; });
        if (it == usable.end()) continue;
        if (options_.notify_placements) options_.winner->notify_placement(best);
        return (*it)->ref;
      }
      // No eligible host intersects the usable offers — same outcome
      // best_host() used to signal by throwing.
      if (!options_.winner_fallback)
        throw winner::NoHostAvailable("no registered, fresh host among " +
                                      std::to_string(usable.size()) +
                                      " usable offers");
    } catch (const winner::NoHostAvailable&) {
      if (!options_.winner_fallback) throw;
    } catch (const corba::SystemException&) {
      if (!options_.winner_fallback) throw;
    }
  } else if (!options_.winner_fallback) {
    throw corba::NO_IMPLEMENT("winner strategy without a system manager");
  }
  // Degraded mode: behave like the unmodified naming service.
  return usable[entry.round_robin_next++ % usable.size()]->ref;
}

void NamingContextServant::unbind(const Name& name) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->unbind(Name{name.back()});
  std::lock_guard lock(mu_);
  if (bindings_.erase(key_of(name.back())) == 0)
    throw NotFound("'" + name.back().id + "' is not bound");
}

corba::ObjectRef NamingContextServant::bind_new_context(const Name& name) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->bind_new_context(Name{name.back()});
  std::shared_ptr<corba::ORB> orb = orb_.lock();
  if (!orb)
    throw corba::OBJECT_NOT_EXIST("naming service ORB is gone");
  // Children inherit the parent's policy (and Winner connection) but get a
  // derived random stream so sibling contexts stay independent.
  NamingContextOptions child_options = options_;
  child_options.random_seed = rng_();
  auto child = std::shared_ptr<NamingContextServant>(
      new NamingContextServant(orb_, std::move(child_options)));
  // The reserved flag is hereditary: everything under `_obs` is exact-match.
  child->reserved_ = reserved_ || is_reserved_id(name.back().id);
  child->self_ = orb->activate(child, "NamingContext");
  std::lock_guard lock(mu_);
  auto [it, inserted] = bindings_.emplace(key_of(name.back()),
                                          ContextEntry{child, child->self_});
  if (!inserted) {
    orb->adapter().deactivate(child->self_.ior().key);
    throw AlreadyBound("'" + name.back().id + "'");
  }
  return child->self_;
}

std::vector<Binding> NamingContextServant::list() {
  std::lock_guard lock(mu_);
  std::vector<Binding> result;
  result.reserve(bindings_.size());
  for (const auto& [key, entry] : bindings_) {
    Binding binding;
    binding.name = Name{NameComponent{key.first, key.second}};
    binding.is_context = std::holds_alternative<ContextEntry>(entry);
    if (const auto* offers = std::get_if<OfferEntry>(&entry))
      binding.offer_count = offers->offers.size();
    result.push_back(std::move(binding));
  }
  return result;
}

void NamingContextServant::bind_offer(const Name& name,
                                      const corba::ObjectRef& obj,
                                      const std::string& host) {
  auto owner = descend(name);
  if (owner.get() != this)
    return owner->bind_offer(Name{name.back()}, obj, host);
  if (host.empty()) throw corba::BAD_PARAM("offer requires a host name");
  std::lock_guard lock(mu_);
  auto [it, inserted] =
      bindings_.emplace(key_of(name.back()), OfferEntry{});
  auto* offers = std::get_if<OfferEntry>(&it->second);
  if (offers == nullptr)
    throw AlreadyBound("'" + name.back().id + "' is bound as a plain object");
  offers->offers.push_back(Offer{obj, host});
  offers->rank_valid = false;  // membership changed; cached ranking is stale
}

void NamingContextServant::unbind_offer(const Name& name,
                                        const std::string& host) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->unbind_offer(Name{name.back()}, host);
  std::lock_guard lock(mu_);
  auto it = bindings_.find(key_of(name.back()));
  if (it == bindings_.end())
    throw NotFound("'" + name.back().id + "' is not bound");
  auto* offers = std::get_if<OfferEntry>(&it->second);
  if (offers == nullptr)
    throw NotFound("'" + name.back().id + "' holds no offers");
  const std::size_t before = offers->offers.size();
  std::erase_if(offers->offers,
                [&](const Offer& o) { return o.host == host; });
  if (offers->offers.size() == before)
    throw NotFound("no offer on host '" + host + "'");
  offers->rank_valid = false;  // membership changed; cached ranking is stale
  if (offers->offers.empty()) bindings_.erase(it);
}

std::vector<Offer> NamingContextServant::list_offers(const Name& name) {
  auto owner = descend(name);
  if (owner.get() != this) return owner->list_offers(Name{name.back()});
  std::lock_guard lock(mu_);
  auto it = bindings_.find(key_of(name.back()));
  if (it == bindings_.end())
    throw NotFound("'" + name.back().id + "' is not bound");
  auto* offers = std::get_if<OfferEntry>(&it->second);
  if (offers == nullptr)
    throw NotFound("'" + name.back().id + "' holds no offers");
  return offers->offers;
}


namespace {

// Entry type tags in the serialized snapshot.
constexpr std::uint8_t kSnapObject = 0;
constexpr std::uint8_t kSnapContext = 1;
constexpr std::uint8_t kSnapOffers = 2;
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

corba::Blob NamingContextServant::get_state() {
  corba::CdrOutputStream out;
  out.write_u32(kSnapshotVersion);
  std::lock_guard lock(mu_);
  out.write_u32(static_cast<std::uint32_t>(bindings_.size()));
  for (const auto& [key, entry] : bindings_) {
    out.write_string(key.first);
    out.write_string(key.second);
    if (const auto* object = std::get_if<ObjectEntry>(&entry)) {
      out.write_octet(kSnapObject);
      out.write_string(object->ref.ior().to_string());
    } else if (const auto* context = std::get_if<ContextEntry>(&entry)) {
      out.write_octet(kSnapContext);
      const corba::Blob child = context->servant->get_state();
      out.write_blob(std::span<const std::byte>(child));
    } else {
      const auto& offers = std::get<OfferEntry>(entry);
      out.write_octet(kSnapOffers);
      out.write_u32(static_cast<std::uint32_t>(offers.offers.size()));
      for (const Offer& offer : offers.offers) {
        out.write_string(offer.ref.ior().to_string());
        out.write_string(offer.host);
      }
    }
  }
  return out.take_buffer();
}

void NamingContextServant::set_state(const corba::Blob& state) {
  std::shared_ptr<corba::ORB> orb = orb_.lock();
  if (!orb) throw corba::OBJECT_NOT_EXIST("naming service ORB is gone");
  corba::CdrInputStream in(state);
  const std::uint32_t version = in.read_u32();
  if (version != kSnapshotVersion)
    throw corba::MARSHAL("unsupported naming snapshot version " +
                         std::to_string(version));
  std::map<Key, Entry> restored;
  const std::uint32_t count = in.read_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Key key;
    key.first = in.read_string();
    key.second = in.read_string();
    const std::uint8_t tag = in.read_octet();
    if (tag == kSnapObject) {
      restored.emplace(std::move(key),
                       ObjectEntry{orb->string_to_object(in.read_string())});
    } else if (tag == kSnapContext) {
      NamingContextOptions child_options = options_;
      child_options.random_seed = rng_();
      auto child = std::shared_ptr<NamingContextServant>(
          new NamingContextServant(orb_, std::move(child_options)));
      child->reserved_ = reserved_ || is_reserved_id(key.first);
      child->self_ = orb->activate(child, "NamingContext");
      const corba::Blob blob = in.read_blob();
      child->set_state(blob);
      restored.emplace(std::move(key), ContextEntry{child, child->self_});
    } else if (tag == kSnapOffers) {
      OfferEntry offers;
      const std::uint32_t offer_count = in.read_u32();
      for (std::uint32_t j = 0; j < offer_count; ++j) {
        Offer offer;
        offer.ref = orb->string_to_object(in.read_string());
        offer.host = in.read_string();
        offers.offers.push_back(std::move(offer));
      }
      restored.emplace(std::move(key), std::move(offers));
    } else {
      throw corba::MARSHAL("corrupt naming snapshot entry tag " +
                           std::to_string(tag));
    }
  }
  std::lock_guard lock(mu_);
  bindings_ = std::move(restored);
}

void NamingContextServant::save_snapshot(const std::filesystem::path& path) {
  const corba::Blob blob = get_state();
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw corba::INTERNAL("cannot write " + tmp.string());
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) throw corba::INTERNAL("short write to " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

void NamingContextServant::load_snapshot(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw corba::INTERNAL("cannot read " + path.string());
  corba::Blob blob;
  char byte;
  while (in.get(byte)) blob.push_back(static_cast<std::byte>(byte));
  set_state(blob);
}

corba::Value NamingContextServant::dispatch(std::string_view op,
                                            const corba::ValueSeq& args) {
  std::shared_ptr<corba::ORB> orb = orb_.lock();
  if (!orb) throw corba::OBJECT_NOT_EXIST("naming service ORB is gone");
  auto ref_arg = [&](const corba::Value& v) {
    return corba::ObjectRef::from_value(orb, v);
  };
  // Checkpointable-object protocol (kept in sync with ft::kGetStateOp /
  // kSetStateOp; implemented directly to avoid a layering cycle).
  if (op == "_get_state") {
    check_arity(op, args, 0);
    return corba::Value(get_state());
  }
  if (op == "_set_state") {
    check_arity(op, args, 1);
    set_state(args[0].as_blob());
    return {};
  }
  if (op == "bind") {
    check_arity(op, args, 2);
    bind(Name::parse(args[0].as_string()), ref_arg(args[1]));
    return {};
  }
  if (op == "rebind") {
    check_arity(op, args, 2);
    rebind(Name::parse(args[0].as_string()), ref_arg(args[1]));
    return {};
  }
  if (op == "resolve") {
    check_arity(op, args, 1);
    return resolve(Name::parse(args[0].as_string())).to_value();
  }
  if (op == "resolve_with") {
    check_arity(op, args, 2);
    return resolve_with(Name::parse(args[0].as_string()),
                        parse_strategy(args[1].as_string()))
        .to_value();
  }
  if (op == "unbind") {
    check_arity(op, args, 1);
    unbind(Name::parse(args[0].as_string()));
    return {};
  }
  if (op == "bind_new_context") {
    check_arity(op, args, 1);
    return bind_new_context(Name::parse(args[0].as_string())).to_value();
  }
  if (op == "list") {
    check_arity(op, args, 0);
    corba::ValueSeq out;
    for (const Binding& binding : list()) {
      out.emplace_back(corba::ValueSeq{
          corba::Value(binding.name.to_string()),
          corba::Value(binding.is_context),
          corba::Value(static_cast<std::uint64_t>(binding.offer_count))});
    }
    return corba::Value(std::move(out));
  }
  if (op == "bind_offer") {
    check_arity(op, args, 3);
    bind_offer(Name::parse(args[0].as_string()), ref_arg(args[1]),
               args[2].as_string());
    return {};
  }
  if (op == "unbind_offer") {
    check_arity(op, args, 2);
    unbind_offer(Name::parse(args[0].as_string()), args[1].as_string());
    return {};
  }
  if (op == "list_offers") {
    check_arity(op, args, 1);
    corba::ValueSeq out;
    for (const Offer& offer : list_offers(Name::parse(args[0].as_string()))) {
      out.emplace_back(corba::ValueSeq{offer.ref.to_value(),
                                       corba::Value(offer.host)});
    }
    return corba::Value(std::move(out));
  }
  throw corba::BAD_OPERATION(std::string(op));
}

}  // namespace naming
