// CosNaming-style compound names.
//
// A Name is a sequence of (id, kind) components; "dir/sub/obj.kind" is the
// stringified form with '\' escaping for the three metacharacters, following
// the OMG Interoperable Naming Service conventions.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "orb/exceptions.hpp"

namespace naming {

/// Raised for syntactically invalid names (empty, bad escapes, ...).
struct InvalidName : corba::UserException {
  explicit InvalidName(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/naming/InvalidName:1.0";
  }
};

struct NameComponent {
  std::string id;
  std::string kind;

  friend bool operator==(const NameComponent&, const NameComponent&) = default;
};

class Name {
 public:
  Name() = default;
  Name(std::initializer_list<NameComponent> components)
      : components_(components) {}
  explicit Name(std::vector<NameComponent> components)
      : components_(std::move(components)) {}

  /// Parses "a/b.kind/c"; backslash escapes '/', '.' and '\'.
  /// Throws InvalidName on syntax errors or empty input.
  static Name parse(std::string_view text);

  /// Inverse of parse().
  std::string to_string() const;

  bool empty() const noexcept { return components_.empty(); }
  std::size_t size() const noexcept { return components_.size(); }
  const NameComponent& operator[](std::size_t i) const { return components_[i]; }
  const NameComponent& front() const { return components_.front(); }
  const NameComponent& back() const { return components_.back(); }

  auto begin() const noexcept { return components_.begin(); }
  auto end() const noexcept { return components_.end(); }

  Name& append(NameComponent component);
  Name& append(std::string id, std::string kind = {});

  /// Name without its first component (used for context recursion).
  Name tail() const;

  friend bool operator==(const Name&, const Name&) = default;

 private:
  std::vector<NameComponent> components_;
};

}  // namespace naming
