#include "naming/naming_stub.hpp"

namespace naming {

void NamingContextStub::bind(const Name& name, const corba::ObjectRef& obj) {
  call("bind", {corba::Value(name.to_string()), obj.to_value()});
}

void NamingContextStub::rebind(const Name& name, const corba::ObjectRef& obj) {
  call("rebind", {corba::Value(name.to_string()), obj.to_value()});
}

corba::ObjectRef NamingContextStub::resolve(const Name& name) {
  return corba::ObjectRef::from_value(
      ref_.orb(), call("resolve", {corba::Value(name.to_string())}));
}

corba::ObjectRef NamingContextStub::resolve_with(const Name& name,
                                                 ResolveStrategy strategy) {
  return corba::ObjectRef::from_value(
      ref_.orb(),
      call("resolve_with", {corba::Value(name.to_string()),
                            corba::Value(std::string(to_string(strategy)))}));
}

void NamingContextStub::unbind(const Name& name) {
  call("unbind", {corba::Value(name.to_string())});
}

corba::ObjectRef NamingContextStub::bind_new_context(const Name& name) {
  return corba::ObjectRef::from_value(
      ref_.orb(), call("bind_new_context", {corba::Value(name.to_string())}));
}

std::vector<Binding> NamingContextStub::list() {
  std::vector<Binding> result;
  const corba::Value reply = call("list", {});
  for (const corba::Value& item : reply.as_sequence()) {
    const corba::ValueSeq& fields = item.as_sequence();
    Binding binding;
    binding.name = Name::parse(fields.at(0).as_string());
    binding.is_context = fields.at(1).as_bool();
    binding.offer_count = fields.at(2).as_u64();
    result.push_back(std::move(binding));
  }
  return result;
}

void NamingContextStub::bind_offer(const Name& name,
                                   const corba::ObjectRef& obj,
                                   const std::string& host) {
  call("bind_offer",
       {corba::Value(name.to_string()), obj.to_value(), corba::Value(host)});
}

void NamingContextStub::unbind_offer(const Name& name,
                                     const std::string& host) {
  call("unbind_offer", {corba::Value(name.to_string()), corba::Value(host)});
}

std::vector<Offer> NamingContextStub::list_offers(const Name& name) {
  std::vector<Offer> result;
  const corba::Value reply =
      call("list_offers", {corba::Value(name.to_string())});
  for (const corba::Value& item : reply.as_sequence()) {
    const corba::ValueSeq& fields = item.as_sequence();
    result.push_back(Offer{corba::ObjectRef::from_value(ref_.orb(), fields.at(0)),
                           fields.at(1).as_string()});
  }
  return result;
}

}  // namespace naming
