// Client-side stub of the naming service.  Clients obtain it from
// resolve_initial_references("NameService") and use plain resolve() —
// whether load distribution happens behind it is invisible to them, which
// is the transparency property the paper's design aims for.
#pragma once

#include "naming/naming.hpp"
#include "orb/stub.hpp"

namespace naming {

class NamingContextStub final : public corba::StubBase, public NamingContext {
 public:
  NamingContextStub() = default;
  explicit NamingContextStub(corba::ObjectRef ref)
      : StubBase(std::move(ref)) {}

  void bind(const Name& name, const corba::ObjectRef& obj) override;
  void rebind(const Name& name, const corba::ObjectRef& obj) override;
  corba::ObjectRef resolve(const Name& name) override;
  void unbind(const Name& name) override;
  corba::ObjectRef bind_new_context(const Name& name) override;
  std::vector<Binding> list() override;
  void bind_offer(const Name& name, const corba::ObjectRef& obj,
                  const std::string& host) override;
  void unbind_offer(const Name& name, const std::string& host) override;
  std::vector<Offer> list_offers(const Name& name) override;
  corba::ObjectRef resolve_with(const Name& name,
                                ResolveStrategy strategy) override;

  /// Stub for a sub-context returned by bind_new_context.
  NamingContextStub context(const Name& name) {
    return NamingContextStub(resolve(name));
  }
};

}  // namespace naming
