#include "naming/name.hpp"

namespace naming {

namespace {

bool needs_escape(char c) { return c == '/' || c == '.' || c == '\\'; }

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (needs_escape(c)) out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

Name Name::parse(std::string_view text) {
  if (text.empty()) throw InvalidName("empty name");
  std::vector<NameComponent> components;
  NameComponent current;
  std::string* field = &current.id;
  bool saw_kind = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size())
        throw InvalidName("dangling escape in '" + std::string(text) + "'");
      field->push_back(text[++i]);
    } else if (c == '.') {
      if (saw_kind)
        throw InvalidName("second '.' in component of '" + std::string(text) +
                          "'");
      saw_kind = true;
      field = &current.kind;
    } else if (c == '/') {
      if (current.id.empty() && current.kind.empty())
        throw InvalidName("empty component in '" + std::string(text) + "'");
      components.push_back(std::move(current));
      current = {};
      field = &current.id;
      saw_kind = false;
    } else {
      field->push_back(c);
    }
  }
  if (current.id.empty() && current.kind.empty())
    throw InvalidName("trailing '/' in '" + std::string(text) + "'");
  components.push_back(std::move(current));
  return Name(std::move(components));
}

std::string Name::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('/');
    append_escaped(out, components_[i].id);
    if (!components_[i].kind.empty()) {
      out.push_back('.');
      append_escaped(out, components_[i].kind);
    }
  }
  return out;
}

Name& Name::append(NameComponent component) {
  components_.push_back(std::move(component));
  return *this;
}

Name& Name::append(std::string id, std::string kind) {
  return append(NameComponent{std::move(id), std::move(kind)});
}

Name Name::tail() const {
  if (components_.empty()) throw InvalidName("tail of empty name");
  return Name(std::vector<NameComponent>(components_.begin() + 1,
                                         components_.end()));
}

}  // namespace naming
