#include "orb/log.hpp"

#include <atomic>
#include <memory>
#include <mutex>

namespace corba::log {

namespace {

std::mutex g_mu;
// The sink lives behind a shared_ptr so emit() can copy the handle under
// the mutex and invoke the sink *outside* it: a sink whose work emits again
// (a traced allocator, an ORB call inside a logging backend) recurses into
// emit() instead of deadlocking on g_mu.
std::shared_ptr<const Sink> g_sink;
std::atomic<bool> g_enabled{false};

}  // namespace

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::debug: return "debug";
    case Level::info: return "info";
    case Level::warning: return "warning";
    case Level::error: return "error";
  }
  return "info";
}

void set_sink(Sink sink) {
  std::lock_guard lock(g_mu);
  g_sink = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  g_enabled.store(g_sink != nullptr, std::memory_order_release);
}

void clear_sink() { set_sink(nullptr); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_acquire); }

void emit(Level level, std::string_view component, std::string_view message) {
  if (!enabled()) return;
  std::shared_ptr<const Sink> sink;
  {
    std::lock_guard lock(g_mu);
    sink = g_sink;
  }
  if (sink && *sink) (*sink)(level, component, message);
}

}  // namespace corba::log
