#include "orb/log.hpp"

#include <atomic>
#include <mutex>

namespace corba::log {

namespace {

std::mutex g_mu;
Sink g_sink;
std::atomic<bool> g_enabled{false};

}  // namespace

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::debug: return "debug";
    case Level::info: return "info";
    case Level::warning: return "warning";
    case Level::error: return "error";
  }
  return "info";
}

void set_sink(Sink sink) {
  std::lock_guard lock(g_mu);
  g_sink = std::move(sink);
  g_enabled.store(g_sink != nullptr, std::memory_order_release);
}

void clear_sink() { set_sink(nullptr); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_acquire); }

void emit(Level level, std::string_view component, std::string_view message) {
  if (!enabled()) return;
  std::lock_guard lock(g_mu);
  if (g_sink) g_sink(level, component, message);
}

}  // namespace corba::log
