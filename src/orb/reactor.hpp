// Epoll reactor: the server receive path that serves C10K connections on a
// fixed thread budget.
//
// The legacy receive path (tcp_transport.cpp) spends one blocking thread per
// accepted connection, so thread count — not CPU — caps how many clients an
// endpoint can serve.  The reactor replaces it with `io_threads` event
// loops: accepted sockets are non-blocking, each loop runs epoll_wait over
// its share of the connections (round-robin assignment at accept), frames
// are assembled incrementally into per-connection read buffers, and every
// complete request is handed to the object adapter's bounded DispatchPool
// exactly as before.  Reply writes are non-blocking too: a write that would
// block parks its tail in the connection's pending-write queue, drained in
// FIFO order on EPOLLOUT — per-connection write ordering (which the session
// layer's reply-seq contract relies on) is preserved because completions
// enqueue under one mutex.
//
// Back-pressure: when the DispatchPool is at capacity, DispatchPool::
// try_submit bounces, the loop stops arming EPOLLIN for that connection and
// stashes the one already-decoded request.  The connection's socket stops
// being read, kernel flow control pushes back to the client, and server
// memory stays bounded — the same contract the legacy path got from a
// blocking submit(), without parking an I/O thread.  The pool's space
// callback rings a per-loop eventfd when capacity frees up; the loop then
// resubmits, resumes parsing, and re-arms EPOLLIN.
//
// Timers: a per-loop timerfd drives a deadline wheel (an ordered multimap of
// absolute deadlines) used for idle-connection harvesting (idle_timeout_s >
// 0) and for backing off the accept loop after EMFILE/ENFILE instead of
// spinning on a level-triggered listen socket.
//
// Semantics parity: sessions, resume/replay, flight-recorder dumps and the
// batched-failure behaviour are shared with the legacy path through
// server_conn.hpp — wire bytes are identical in both modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "orb/message.hpp"
#include "orb/session.hpp"

namespace corba {

class ObjectAdapter;
class ReactorConn;

struct ReactorOptions {
  /// Event-loop thread count (>= 1): the server's whole receive-side thread
  /// budget, independent of connection count.
  std::size_t io_threads = 2;
  /// Harvest connections with no traffic for this long (seconds; 0 = never).
  /// Must comfortably exceed the slowest expected call — "traffic" is bytes
  /// read or replies written, so a single in-flight call longer than the
  /// timeout looks idle.
  double idle_timeout_s = 0;
};

/// One server endpoint's event-driven receive side (see file comment).
/// Owned by TcpServerEndpoint; borrows its listen fd and session table.
class Reactor {
 public:
  Reactor(int listen_fd, std::shared_ptr<ObjectAdapter> adapter,
          SessionTable& sessions, ReactorOptions options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the io_threads event loops (loop 0 owns the listen socket).
  void start();

  /// Wakes and joins every loop, then releases the connections.  Sockets
  /// with replies still queued on dispatch-pool completions stay open until
  /// the last completion drops its reference (graceful drain, as in the
  /// legacy path).  Idempotent.
  void stop();

  /// DispatchPool space callback: wakes every loop to retry stalled
  /// submissions.  Safe from any thread, including before start and after
  /// stop.
  void notify_pool_space() noexcept;

 private:
  friend class ReactorConn;
  struct Loop;

  void io_loop(Loop& loop);
  void handle_accept(Loop& loop);
  void handle_wake(Loop& loop);
  void handle_timer(Loop& loop);
  void handle_readable(Loop& loop, const std::shared_ptr<ReactorConn>& conn);
  /// Decodes and dispatches every complete frame in the read buffer.
  /// Returns false when the connection must be dropped.
  bool parse_frames(Loop& loop, const std::shared_ptr<ReactorConn>& conn);
  /// Handles one decoded frame; returns false to drop the connection.
  bool handle_frame(Loop& loop, const std::shared_ptr<ReactorConn>& conn,
                    const MessageHeader& header,
                    std::span<const std::byte> body);
  /// Hands one decoded request to the dispatch pool; on a full pool stashes
  /// it, disarms EPOLLIN and joins the loop's stalled list (returns true —
  /// stalling is not an error).  Returns false only when dispatch is
  /// impossible (pool stopped).
  bool submit_request(Loop& loop, const std::shared_ptr<ReactorConn>& conn,
                      RequestMessage request);
  void retry_stalled(Loop& loop);
  void register_conn(Loop& loop, const std::shared_ptr<ReactorConn>& conn);
  /// Takes the connection by value: callers routinely pass the shared_ptr
  /// stored in loop.conns, which the erase inside would otherwise destroy
  /// out from under them.
  void reap_conn(Loop& loop, std::shared_ptr<ReactorConn> conn);
  /// Submits a reaped connection's parked request so its reply still lands
  /// in the session replay buffer (see definition for why dropping it would
  /// lose the call).
  void salvage_stalled(Loop& loop, ReactorConn& conn);
  /// Queues `fd`'s deadline on the loop's wheel, re-arming the timerfd when
  /// it became the earliest.
  void schedule_deadline(Loop& loop, double when, int fd);
  void arm_timer(Loop& loop, double when_mono_s);
  void wake(Loop& loop) noexcept;
  /// Marks a connection dead from a writer thread and nudges its loop to
  /// reap it (reactor-internal; called by ReactorConn).
  void request_reap(std::size_t loop_index, int fd) noexcept;

  const int listen_fd_;
  std::shared_ptr<ObjectAdapter> adapter_;
  SessionTable& sessions_;
  const ReactorOptions options_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};  ///< round-robin accept assignment
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace corba
