// ORB core: the client/server bootstrap object.
//
// One ORB models one "CORBA process".  It owns an object adapter (with an
// in-process and optionally a TCP endpoint), routes outgoing requests to the
// transport selected by the target IOR, stringifies references, and keeps
// the initial-references table (`resolve_initial_references("NameService")`
// etc.), mirroring the CORBA::ORB API surface that portable applications
// use.  The simulated cluster creates one ORB per simulated workstation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "orb/object_adapter.hpp"
#include "orb/tcp_transport.hpp"
#include "orb/transport.hpp"

namespace corba {

class ORB;

/// A typed handle to a (possibly remote) object: an IOR plus the ORB used to
/// reach it.  Copies are cheap; a default-constructed ref is nil.
class ObjectRef {
 public:
  ObjectRef() = default;
  ObjectRef(std::shared_ptr<ORB> orb, IOR ior);

  bool is_nil() const noexcept { return orb_.expired() || ior_.is_nil(); }
  const IOR& ior() const noexcept { return ior_; }
  std::shared_ptr<ORB> orb() const noexcept { return orb_.lock(); }

  /// Synchronous invocation; unwraps the reply (throwing carried exceptions).
  Value invoke(std::string_view op, ValueSeq args) const;

  /// Starts a deferred invocation (building block of the DII Request).
  std::unique_ptr<PendingReply> send(std::string_view op, ValueSeq args) const;

  /// Fire-and-forget invocation (CORBA "oneway"): no reply is expected and
  /// delivery is best-effort.  Used e.g. for periodic load reports.
  void invoke_oneway(std::string_view op, ValueSeq args) const;

  /// Remote type check (implicit _is_a operation).
  bool is_a(std::string_view repo_id) const;

  /// Liveness probe; returns false instead of throwing on COMM_FAILURE.
  bool ping() const noexcept;

  /// Tagged-value representation (stringified IOR) for passing references
  /// through requests; from_value reattaches them to a local ORB.
  Value to_value() const;
  static ObjectRef from_value(const std::shared_ptr<ORB>& orb, const Value& v);

  friend bool operator==(const ObjectRef& a, const ObjectRef& b) {
    return a.ior_ == b.ior_;
  }

 private:
  // Weak on purpose: references travel into servants, offer sets and the
  // ORB's own initial-references table — objects the ORB transitively owns.
  // A shared_ptr here would close an ownership cycle and leak every ORB
  // graph.  Whoever called ORB::init owns the ORB's lifetime; a reference
  // that outlives it degrades to nil.
  std::weak_ptr<ORB> orb_;
  IOR ior_;
};

/// Configuration for ORB::init.
struct OrbConfig {
  /// Identity of this ORB's in-process endpoint; must be unique within the
  /// network.  Also used as the default host name in minted IORs.
  std::string endpoint_name;

  /// Virtual network this ORB attaches to.  Required unless a transport
  /// override is supplied and no in-process endpoint is wanted.
  std::shared_ptr<InProcessNetwork> network;

  /// When set, requests are routed through this transport regardless of the
  /// target protocol.  Used by the simulator to interpose virtual time and
  /// failures.
  std::shared_ptr<ClientTransport> client_transport_override;

  /// Adapter id embedded in minted object keys.  0 draws from a
  /// process-global counter (always unique); the simulator assigns
  /// per-runtime ids instead, so repeated runs inside one process mint
  /// byte-identical keys — and therefore byte-identical messages and
  /// virtual timings (the chaos tests' trace-determinism contract).
  std::uint64_t adapter_id = 0;

  /// Enable a real TCP endpoint (receive loop per connection; servant
  /// execution on the adapter's dispatch pool).
  bool enable_tcp = false;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  ///< 0 selects an ephemeral port

  /// TCP client transport tuning: multiplexing on/off, request timeout,
  /// idle-connection TTL and the soft socket cap (see TcpClientOptions).
  TcpClientOptions tcp_client{};

  /// Worker threads executing TCP requests (FIFO per object key).
  /// 0 dispatches inline on each connection's receive thread — the old
  /// thread-per-connection behaviour.
  std::size_t dispatch_threads = 4;
  /// Requests queued + executing before receive loops block (backpressure).
  std::size_t dispatch_queue_limit = 1024;

  /// Server receive mode.  true (default): epoll reactor — `io_threads`
  /// event loops serve every connection on a fixed thread budget.  false:
  /// legacy thread-per-connection receive loops (bench baseline).
  bool reactor = true;
  /// Reactor event-loop threads (the whole receive-side thread budget).
  std::size_t io_threads = 2;
  /// listen(2) backlog for the server endpoint.
  int listen_backlog = 256;
  /// Reactor-only: harvest connections idle for this long (seconds; 0 =
  /// never).  Must comfortably exceed the slowest expected call.
  double server_idle_timeout_s = 0;
};

/// The Object Request Broker.
class ORB : public std::enable_shared_from_this<ORB> {
 public:
  /// Creates and starts an ORB.  With enable_tcp the server endpoint is
  /// listening when init returns (query the bound port via tcp_port()).
  static std::shared_ptr<ORB> init(OrbConfig config);

  ~ORB();
  ORB(const ORB&) = delete;
  ORB& operator=(const ORB&) = delete;

  /// Stops the TCP endpoint and detaches from the in-process network.
  /// Idempotent.
  void shutdown();

  ObjectAdapter& adapter() noexcept { return *adapter_; }
  const std::string& endpoint_name() const noexcept {
    return config_.endpoint_name;
  }
  /// Bound TCP port (0 when TCP is disabled).
  std::uint16_t tcp_port() const noexcept;

  /// Activates a servant and returns a typed reference to it.
  ObjectRef activate(std::shared_ptr<Servant> servant,
                     std::string_view name_hint = {});

  /// Wraps an IOR into a reference bound to this ORB.
  ObjectRef make_ref(IOR ior);

  // --- client-side entry points used by ObjectRef/stubs -------------------
  std::unique_ptr<PendingReply> send(const IOR& target, std::string_view op,
                                     ValueSeq args);
  Value invoke(const IOR& target, std::string_view op, ValueSeq args);
  void send_oneway(const IOR& target, std::string_view op, ValueSeq args);

  // --- stringified references ---------------------------------------------
  std::string object_to_string(const ObjectRef& ref) const;
  ObjectRef string_to_object(std::string_view ior_string);

  // --- initial references --------------------------------------------------
  void register_initial_reference(const std::string& name, ObjectRef ref);
  /// Throws INV_OBJREF when the name is unknown.
  ObjectRef resolve_initial_references(const std::string& name);
  std::vector<std::string> list_initial_services() const;

 private:
  explicit ORB(OrbConfig config);
  void start();
  ClientTransport& transport_for(const IOR& target);

  OrbConfig config_;
  std::shared_ptr<ObjectAdapter> adapter_;
  std::shared_ptr<InProcessTransport> inproc_transport_;
  std::shared_ptr<ClientTransport> tcp_transport_;
  std::unique_ptr<TcpServerEndpoint> tcp_server_;
  std::atomic<std::uint64_t> next_request_id_{1};
  mutable std::mutex initial_refs_mu_;
  std::map<std::string, ObjectRef> initial_refs_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace corba
