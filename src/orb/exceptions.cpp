#include "orb/exceptions.hpp"

namespace corba {

namespace {

std::string format_message(const std::string& repo_id, const std::string& detail,
                           std::uint32_t minor, CompletionStatus completed) {
  std::string msg = repo_id;
  if (!detail.empty()) {
    msg += ": ";
    msg += detail;
  }
  msg += " (minor=";
  msg += std::to_string(minor);
  msg += ", ";
  msg += to_string(completed);
  msg += ")";
  return msg;
}

}  // namespace

std::string_view to_string(CompletionStatus status) noexcept {
  switch (status) {
    case CompletionStatus::completed_yes:
      return "COMPLETED_YES";
    case CompletionStatus::completed_no:
      return "COMPLETED_NO";
    case CompletionStatus::completed_maybe:
      return "COMPLETED_MAYBE";
  }
  return "COMPLETED_MAYBE";
}

SystemException::SystemException(std::string repo_id, std::string detail,
                                 std::uint32_t minor, CompletionStatus completed)
    : Exception(format_message(repo_id, detail, minor, completed)),
      repo_id_(std::move(repo_id)),
      detail_(std::move(detail)),
      minor_(minor),
      completed_(completed) {}

UserException::UserException(std::string repo_id, std::string detail)
    : Exception(detail.empty() ? repo_id : repo_id + ": " + detail),
      repo_id_(std::move(repo_id)),
      detail_(std::move(detail)) {}

void raise_system_exception(const std::string& repo_id, const std::string& detail,
                            std::uint32_t minor, CompletionStatus completed) {
  if (repo_id == COMM_FAILURE::static_repo_id())
    throw COMM_FAILURE(detail, minor, completed);
  if (repo_id == TRANSIENT::static_repo_id())
    throw TRANSIENT(detail, minor, completed);
  if (repo_id == TIMEOUT::static_repo_id())
    throw TIMEOUT(detail, minor, completed);
  if (repo_id == OBJECT_NOT_EXIST::static_repo_id())
    throw OBJECT_NOT_EXIST(detail, minor, completed);
  if (repo_id == BAD_PARAM::static_repo_id())
    throw BAD_PARAM(detail, minor, completed);
  if (repo_id == BAD_OPERATION::static_repo_id())
    throw BAD_OPERATION(detail, minor, completed);
  if (repo_id == NO_IMPLEMENT::static_repo_id())
    throw NO_IMPLEMENT(detail, minor, completed);
  if (repo_id == MARSHAL::static_repo_id())
    throw MARSHAL(detail, minor, completed);
  if (repo_id == INV_OBJREF::static_repo_id())
    throw INV_OBJREF(detail, minor, completed);
  if (repo_id == BAD_INV_ORDER::static_repo_id())
    throw BAD_INV_ORDER(detail, minor, completed);
  throw INTERNAL(repo_id + (detail.empty() ? "" : ": " + detail), minor,
                 completed);
}

}  // namespace corba
