#include "orb/ior.hpp"

#include <functional>

#include "orb/exceptions.hpp"

namespace corba {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ObjectKey::to_string() const {
  std::string s;
  s.reserve(bytes.size());
  for (std::byte b : bytes) {
    const char c = static_cast<char>(b);
    if (c >= 0x20 && c < 0x7f) {
      s.push_back(c);
    } else {
      s.push_back('\\');
      s.push_back(kHexDigits[(static_cast<unsigned>(c) >> 4) & 0xf]);
      s.push_back(kHexDigits[static_cast<unsigned>(c) & 0xf]);
    }
  }
  return s;
}

ObjectKey ObjectKey::from_string(std::string_view s) {
  ObjectKey key;
  key.bytes.reserve(s.size());
  for (char c : s) key.bytes.push_back(static_cast<std::byte>(c));
  return key;
}

std::size_t ObjectKeyHash::operator()(const ObjectKey& k) const noexcept {
  // FNV-1a over the key bytes.
  std::size_t h = 14695981039346656037ull;
  for (std::byte b : k.bytes) {
    h ^= static_cast<std::size_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

void IOR::encode(CdrOutputStream& out) const {
  out.write_string(type_id);
  out.write_string(protocol);
  out.write_string(host);
  out.write_u16(port);
  out.write_blob(std::span<const std::byte>(key.bytes));
}

IOR IOR::decode(CdrInputStream& in) {
  IOR ior;
  ior.type_id = in.read_string();
  ior.protocol = in.read_string();
  ior.host = in.read_string();
  ior.port = in.read_u16();
  ior.key.bytes = in.read_blob();
  return ior;
}

std::string IOR::to_string() const {
  CdrOutputStream out(ByteOrder::big_endian);
  encode(out);
  std::string s = "IOR:";
  s.reserve(4 + 2 * out.size());
  for (std::byte b : out.buffer()) {
    s.push_back(kHexDigits[(static_cast<unsigned>(b) >> 4) & 0xf]);
    s.push_back(kHexDigits[static_cast<unsigned>(b) & 0xf]);
  }
  return s;
}

IOR IOR::from_string(std::string_view s) {
  if (s.substr(0, 4) != "IOR:" || (s.size() - 4) % 2 != 0)
    throw INV_OBJREF("malformed stringified IOR");
  std::vector<std::byte> raw;
  raw.reserve((s.size() - 4) / 2);
  for (std::size_t i = 4; i < s.size(); i += 2) {
    const int hi = hex_value(s[i]);
    const int lo = hex_value(s[i + 1]);
    if (hi < 0 || lo < 0) throw INV_OBJREF("invalid hex digit in IOR");
    raw.push_back(static_cast<std::byte>((hi << 4) | lo));
  }
  try {
    CdrInputStream in(raw, ByteOrder::big_endian);
    IOR ior = decode(in);
    if (!in.at_end()) throw INV_OBJREF("trailing bytes in IOR");
    return ior;
  } catch (const MARSHAL& e) {
    throw INV_OBJREF(std::string("truncated IOR: ") + e.detail());
  }
}

std::string IOR::to_display_string() const {
  if (is_nil()) return "<nil>";
  std::string s = protocol + "://" + host;
  if (port != 0) s += ":" + std::to_string(port);
  s += "/" + key.to_string();
  return s;
}

}  // namespace corba
