#include "orb/transport.hpp"

#include "obs/trace.hpp"
#include "orb/exceptions.hpp"

namespace corba {

ReplyMessage ClientTransport::invoke(const IOR& target, RequestMessage request) {
  return send(target, std::move(request))->get();
}

void InProcessNetwork::bind(const std::string& endpoint,
                            std::weak_ptr<ObjectAdapter> adapter) {
  std::lock_guard lock(mu_);
  endpoints_[endpoint] = std::move(adapter);
}

void InProcessNetwork::unbind(const std::string& endpoint) {
  std::lock_guard lock(mu_);
  endpoints_.erase(endpoint);
}

std::shared_ptr<ObjectAdapter> InProcessNetwork::find(
    const std::string& endpoint) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return nullptr;
  return it->second.lock();
}

InProcessTransport::InProcessTransport(std::shared_ptr<InProcessNetwork> network)
    : network_(std::move(network)) {
  if (!network_) throw BAD_PARAM("InProcessTransport requires a network");
}

RequestMessage roundtrip_through_cdr(const RequestMessage& request) {
  obs::Span span("marshal.cdr", request.operation);
  CdrOutputStream out;
  request.encode_body(out);
  CdrInputStream in(out.buffer(), out.byte_order());
  return RequestMessage::decode_body(in);
}

ReplyMessage roundtrip_through_cdr(const ReplyMessage& reply) {
  obs::Span span("marshal.cdr", "reply");
  CdrOutputStream out;
  reply.encode_body(out);
  CdrInputStream in(out.buffer(), out.byte_order());
  return ReplyMessage::decode_body(in);
}

std::unique_ptr<PendingReply> InProcessTransport::send(const IOR& target,
                                                       RequestMessage request) {
  std::shared_ptr<ObjectAdapter> adapter = network_->find(target.host);
  if (!adapter) {
    return std::make_unique<FailedReply>(std::make_exception_ptr(COMM_FAILURE(
        "unknown in-process endpoint '" + target.host + "'",
        minor_code::endpoint_unknown, CompletionStatus::completed_no)));
  }
  try {
    RequestMessage wire_request = roundtrip_through_cdr(request);
    ReplyMessage reply = adapter->dispatch(wire_request);
    return std::make_unique<ImmediateReply>(roundtrip_through_cdr(reply));
  } catch (...) {
    return std::make_unique<FailedReply>(std::current_exception());
  }
}

}  // namespace corba
