#include "orb/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/trace.hpp"
#include "orb/exceptions.hpp"

namespace corba {

namespace {

[[noreturn]] void throw_errno(const std::string& what, std::uint32_t minor,
                              CompletionStatus completed) {
  throw COMM_FAILURE(what + ": " + std::strerror(errno), minor, completed);
}

constexpr int kPollIntervalMs = 100;

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), scratch_(std::move(other.scratch_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    scratch_ = std::move(other.scratch_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw_errno("socket", minor_code::connect_failed,
                CompletionStatus::completed_no);
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw COMM_FAILURE("bad address '" + host + "'", minor_code::connect_failed,
                       CompletionStatus::completed_no);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect to " + host + ":" + std::to_string(port),
                minor_code::connect_failed, CompletionStatus::completed_no);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

void Socket::write_all(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool Socket::read_all(std::span<std::byte> data, bool eof_ok,
                      const std::atomic<bool>* stop, double timeout_s) {
  const auto deadline =
      timeout_s > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(timeout_s))
          : std::chrono::steady_clock::time_point::max();
  std::size_t read = 0;
  while (read < data.size()) {
    if (std::chrono::steady_clock::now() >= deadline)
      throw TIMEOUT("no reply within the request timeout",
                    minor_code::unspecified, CompletionStatus::completed_maybe);
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return false;
    if (pr == 0) continue;
    const ssize_t n = ::recv(fd_, data.data() + read, data.size() - read, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    if (n == 0) {
      if (eof_ok && read == 0) return false;
      throw COMM_FAILURE("connection closed mid-frame",
                         minor_code::connection_lost,
                         CompletionStatus::completed_maybe);
    }
    read += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_frame(MessageType type, const CdrOutputStream& body) {
  write_all(encode_frame(type, body));
}

FrameBuilder Socket::start_frame(MessageType type, std::size_t size_hint) {
  FrameBuilder frame(type, std::move(scratch_));
  if (size_hint > 0) frame.body().reserve(size_hint);
  return frame;
}

void Socket::finish_frame(FrameBuilder& frame) {
  std::vector<std::byte> bytes = frame.finish();
  write_all(bytes);
  scratch_ = std::move(bytes);  // reclaim the capacity for the next frame
}

bool Socket::recv_frame(MessageHeader& header, std::vector<std::byte>& body,
                        const std::atomic<bool>* stop, double timeout_s) {
  std::array<std::byte, MessageHeader::kEncodedSize> head_bytes;
  if (!read_all(head_bytes, /*eof_ok=*/true, stop, timeout_s)) return false;
  header = MessageHeader::decode(head_bytes);
  body.resize(header.body_length);
  if (header.body_length > 0) {
    if (!read_all(body, /*eof_ok=*/false, stop, timeout_s)) return false;
  }
  return true;
}

ReplyMessage TcpClientTransport::round_trip(const IOR& target,
                                            const RequestMessage& request) {
  std::string trace_detail;
  if (obs::tracing_enabled())
    trace_detail = request.operation + " -> " + target.host + ":" +
                   std::to_string(target.port);
  obs::Span span("transport.roundtrip", trace_detail);
  Socket socket = checkout(target.host, target.port);
  try {
    FrameBuilder frame = socket.start_frame(MessageType::request,
                                            request.encoded_size_estimate());
    request.encode_body(frame.body());
    socket.finish_frame(frame);
    if (!request.response_expected) {
      checkin(target.host, target.port, std::move(socket));
      return ReplyMessage::make_result(request.request_id, {});
    }
    MessageHeader header;
    std::vector<std::byte> reply_bytes;
    if (!socket.recv_frame(header, reply_bytes, nullptr, request_timeout_s_))
      throw COMM_FAILURE("server closed connection",
                         minor_code::connection_lost,
                         CompletionStatus::completed_maybe);
    if (header.type != MessageType::reply)
      throw MARSHAL("unexpected message type in reply");
    CdrInputStream in(reply_bytes, header.byte_order);
    ReplyMessage reply = ReplyMessage::decode_body(in);
    checkin(target.host, target.port, std::move(socket));
    return reply;
  } catch (...) {
    // Connection state is unknown; drop it rather than returning it to the
    // pool.
    throw;
  }
}

namespace {

/// Deferred TCP reply: the round trip runs on a helper thread.
class TcpPendingReply final : public PendingReply {
 public:
  TcpPendingReply(std::function<ReplyMessage()> round_trip)
      : future_(std::async(std::launch::async, std::move(round_trip))) {}

  bool ready() override {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  ReplyMessage get() override { return future_.get(); }

 private:
  std::future<ReplyMessage> future_;
};

}  // namespace

std::unique_ptr<PendingReply> TcpClientTransport::send(const IOR& target,
                                                       RequestMessage request) {
  return std::make_unique<TcpPendingReply>(
      [this, target, request = std::move(request)]() {
        return round_trip(target, request);
      });
}

ReplyMessage TcpClientTransport::invoke(const IOR& target,
                                        RequestMessage request) {
  return round_trip(target, request);
}

Socket TcpClientTransport::checkout(const std::string& host,
                                    std::uint16_t port) {
  {
    std::lock_guard lock(pool_mu_);
    auto it = pool_.find({host, port});
    if (it != pool_.end() && !it->second.empty()) {
      Socket socket = std::move(it->second.back());
      it->second.pop_back();
      return socket;
    }
  }
  return Socket::connect(host, port);
}

void TcpClientTransport::checkin(const std::string& host, std::uint16_t port,
                                 Socket socket) {
  constexpr std::size_t kMaxPooledPerTarget = 8;
  std::lock_guard lock(pool_mu_);
  auto& sockets = pool_[{host, port}];
  if (sockets.size() < kMaxPooledPerTarget) sockets.push_back(std::move(socket));
}

TcpServerEndpoint::TcpServerEndpoint(const std::string& host,
                                     std::uint16_t port)
    : host_(host) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw_errno("socket", minor_code::connect_failed,
                CompletionStatus::completed_no);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw COMM_FAILURE("bad listen address '" + host + "'",
                       minor_code::connect_failed,
                       CompletionStatus::completed_no);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind " + host + ":" + std::to_string(port),
                minor_code::connect_failed, CompletionStatus::completed_no);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen", minor_code::connect_failed,
                CompletionStatus::completed_no);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

TcpServerEndpoint::~TcpServerEndpoint() { stop(); }

void TcpServerEndpoint::start(std::shared_ptr<ObjectAdapter> adapter) {
  adapter_ = std::move(adapter);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpServerEndpoint::stop() {
  if (stopping_.exchange(true)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& worker : workers)
    if (worker.joinable()) worker.join();
}

void TcpServerEndpoint::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(workers_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    workers_.emplace_back(
        [this, socket = Socket(fd)]() mutable {
          connection_loop(std::move(socket));
        });
  }
}

void TcpServerEndpoint::connection_loop(Socket socket) {
  MessageHeader header;
  std::vector<std::byte> body;
  while (!stopping_.load(std::memory_order_relaxed)) {
    try {
      if (!socket.recv_frame(header, body, &stopping_)) return;
      if (header.type == MessageType::close_connection) return;
      if (header.type != MessageType::request) {
        CdrOutputStream empty;
        socket.send_frame(MessageType::message_error, empty);
        return;
      }
      CdrInputStream in(body, header.byte_order);
      RequestMessage request = RequestMessage::decode_body(in);
      ReplyMessage reply = adapter_->dispatch(request);
      if (!request.response_expected) continue;
      FrameBuilder frame = socket.start_frame(MessageType::reply,
                                              reply.encoded_size_estimate());
      reply.encode_body(frame.body());
      socket.finish_frame(frame);
    } catch (const Exception&) {
      // Framing/marshal error on this connection: drop it.  The client sees
      // COMM_FAILURE, which is exactly what a real ORB produces.
      return;
    }
  }
}

}  // namespace corba
