#include "orb/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/event_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/exceptions.hpp"
#include "orb/log.hpp"
#include "orb/reactor.hpp"

namespace corba {

namespace {

[[noreturn]] void throw_errno(const std::string& what, std::uint32_t minor,
                              CompletionStatus completed) {
  throw COMM_FAILURE(what + ": " + std::strerror(errno), minor, completed);
}

constexpr int kPollIntervalMs = 100;

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MuxMetrics {
  obs::Counter& pipelined = obs::MetricsRegistry::global().counter(
      "transport.tcp.pipelined_total");
  obs::Counter& discarded = obs::MetricsRegistry::global().counter(
      "transport.tcp.discarded_replies_total");
  /// discarded_replies_total split by reason: `late` is the reply of a call
  /// its caller abandoned (timeout / dropped handle) — its pending-table
  /// entry is reaped on arrival; `duplicate` is a reply nobody ever waited
  /// for under that id (session replay duplicates, stray frames).
  obs::Counter& discarded_late = obs::MetricsRegistry::global().counter(
      "transport.tcp.discarded_replies_late_total");
  obs::Counter& discarded_duplicate = obs::MetricsRegistry::global().counter(
      "transport.tcp.discarded_replies_duplicate_total");
  obs::Counter& batch_failed = obs::MetricsRegistry::global().counter(
      "transport.tcp.batched_failures_total");
  obs::Counter& idle_closed = obs::MetricsRegistry::global().counter(
      "transport.tcp.idle_closed_total");
  obs::Gauge& inflight =
      obs::MetricsRegistry::global().gauge("transport.tcp.inflight");
  obs::Gauge& connections =
      obs::MetricsRegistry::global().gauge("transport.tcp.connections");
};

MuxMetrics& mux_metrics() {
  static MuxMetrics metrics;
  return metrics;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), scratch_(std::move(other.scratch_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    scratch_ = std::move(other.scratch_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect(const std::string& host, std::uint16_t port,
                       double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw_errno("socket", minor_code::connect_failed,
                CompletionStatus::completed_no);
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw COMM_FAILURE("bad address '" + host + "'", minor_code::connect_failed,
                       CompletionStatus::completed_no);
  // Non-blocking connect + EINTR-safe poll: a black-holed SYN honors the
  // caller's deadline budget instead of the kernel's minutes-long default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS)
    throw_errno("connect to " + host + ":" + std::to_string(port),
                minor_code::connect_failed, CompletionStatus::completed_no);
  if (rc != 0) {
    const auto deadline =
        timeout_s > 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(timeout_s))
            : std::chrono::steady_clock::time_point::max();
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline)
        throw COMM_FAILURE(
            "connect to " + host + ":" + std::to_string(port) + " timed out",
            minor_code::connect_failed, CompletionStatus::completed_no);
      int slice_ms = kPollIntervalMs;
      if (deadline != std::chrono::steady_clock::time_point::max()) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        slice_ms = static_cast<int>(
            std::min<long long>(slice_ms, std::max<long long>(1, remaining)));
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, slice_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll", minor_code::connect_failed,
                    CompletionStatus::completed_no);
      }
      if (pr > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err != 0) errno = err;
      throw_errno("connect to " + host + ":" + std::to_string(port),
                  minor_code::connect_failed, CompletionStatus::completed_no);
    }
  }
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags);  // restore blocking mode
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

void Socket::write_all(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool Socket::read_all(std::span<std::byte> data, bool eof_ok,
                      const std::atomic<bool>* stop, double timeout_s) {
  const auto deadline =
      timeout_s > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(timeout_s))
          : std::chrono::steady_clock::time_point::max();
  std::size_t read = 0;
  while (read < data.size()) {
    if (std::chrono::steady_clock::now() >= deadline)
      throw TIMEOUT("no reply within the request timeout",
                    minor_code::unspecified, CompletionStatus::completed_maybe);
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return false;
    if (pr == 0) continue;
    const ssize_t n = ::recv(fd_, data.data() + read, data.size() - read, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv", minor_code::connection_lost,
                  CompletionStatus::completed_maybe);
    }
    if (n == 0) {
      if (eof_ok && read == 0) return false;
      throw COMM_FAILURE("connection closed mid-frame",
                         minor_code::connection_lost,
                         CompletionStatus::completed_maybe);
    }
    read += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_frame(MessageType type, const CdrOutputStream& body) {
  write_all(encode_frame(type, body));
}

FrameBuilder Socket::start_frame(MessageType type, std::size_t size_hint) {
  FrameBuilder frame(type, std::move(scratch_));
  if (size_hint > 0) frame.body().reserve(size_hint);
  return frame;
}

void Socket::finish_frame(FrameBuilder& frame) {
  std::vector<std::byte> bytes = frame.finish();
  write_all(bytes);
  scratch_ = std::move(bytes);  // reclaim the capacity for the next frame
}

bool Socket::recv_frame(MessageHeader& header, std::vector<std::byte>& body,
                        const std::atomic<bool>* stop, double timeout_s) {
  std::array<std::byte, MessageHeader::kEncodedSize> head_bytes;
  if (!read_all(head_bytes, /*eof_ok=*/true, stop, timeout_s)) return false;
  header = MessageHeader::decode(head_bytes);
  body.resize(header.body_length);
  if (header.body_length > 0) {
    if (!read_all(body, /*eof_ok=*/false, stop, timeout_s)) return false;
  }
  return true;
}

bool Socket::wait_readable(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr < 0) {
    if (errno == EINTR) return false;
    throw_errno("poll", minor_code::connection_lost,
                CompletionStatus::completed_maybe);
  }
  return pr > 0;  // POLLHUP/POLLERR count: the next read reports the close
}

// --- multiplexed client connection ------------------------------------------

/// Reply handle for a pipelined request, completed leader/followers-style:
/// get() reads the socket itself when no other caller is, and otherwise
/// waits for a sibling leader to demux its reply (or to hand leadership
/// over).
class TcpMuxPendingReply final : public PendingReply {
 public:
  TcpMuxPendingReply(std::shared_ptr<TcpConnection> connection,
                     std::shared_ptr<TcpConnection::Waiter> waiter,
                     std::uint64_t request_id, double timeout_s)
      : connection_(std::move(connection)),
        waiter_(std::move(waiter)),
        request_id_(request_id),
        deadline_(timeout_s > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(timeout_s))
                      : std::chrono::steady_clock::time_point::max()) {}

  ~TcpMuxPendingReply() override {
    // Never consumed: abandon the waiter so a late reply is discarded
    // instead of accumulating forever in the connection's demux table.
    if (!consumed_) abandon();
  }

  bool ready() override {
    if (waiter_->done.load(std::memory_order_acquire)) return true;
    // No dedicated reader thread exists, so a poll-only caller must drain
    // the socket itself for its reply to ever complete: briefly take
    // leadership (if free) and demux whatever frames are already buffered.
    std::unique_lock lock(connection_->mu_);
    if (connection_->leader_active_ ||
        connection_->broken_.load(std::memory_order_acquire))
      return waiter_->done.load(std::memory_order_acquire);
    connection_->leader_active_ = true;
    connection_->drain_available_locked(lock);
    connection_->leader_active_ = false;
    connection_->promote_follower_locked();
    return waiter_->done.load(std::memory_order_acquire);
  }

  ReplyMessage get() override {
    consumed_ = true;
    std::unique_lock lock(connection_->mu_);
    for (;;) {
      if (waiter_->done.load(std::memory_order_acquire)) {
        lock.unlock();
        return consume();
      }
      if (!connection_->leader_active_) {
        // Leader: read the socket directly — a lone caller gets its reply
        // with no extra thread hop; with siblings in flight, demux theirs
        // along the way.
        connection_->leader_active_ = true;
        const bool completed = connection_->lead(lock, waiter_, deadline_);
        connection_->leader_active_ = false;
        connection_->promote_follower_locked();
        if (waiter_->done.load(std::memory_order_acquire)) {
          lock.unlock();
          return consume();
        }
        if (!completed) return timeout(lock);
        continue;
      }
      // Follower: wait for the leader to demux our reply or to hand the
      // socket over.
      waiter_->blocked = true;
      const bool woken = waiter_->cv.wait_until(lock, deadline_, [this] {
        return waiter_->done.load(std::memory_order_acquire) ||
               !connection_->leader_active_;
      });
      waiter_->blocked = false;
      if (!woken) return timeout(lock);
    }
  }

 private:
  ReplyMessage consume() {
    mux_metrics().inflight.add(-1);
    if (waiter_->error) std::rethrow_exception(waiter_->error);
    return std::move(waiter_->reply);
  }

  /// Abandon this call only (deadline expired, reply still pending).  The
  /// connection and every other in-flight call on it stay healthy; the next
  /// leader discards our late reply when (if) it arrives, reaping the
  /// abandoned-call entry it leaves behind.
  [[noreturn]] ReplyMessage timeout(std::unique_lock<std::mutex>& lock) {
    if (connection_->waiters_.erase(request_id_) > 0)
      connection_->abandoned_.insert(request_id_);
    lock.unlock();
    mux_metrics().inflight.add(-1);
    throw TIMEOUT("no reply within the request timeout",
                  minor_code::unspecified, CompletionStatus::completed_maybe);
  }

  void abandon() noexcept {
    std::lock_guard lock(connection_->mu_);
    if (!waiter_->done.load(std::memory_order_acquire) &&
        connection_->waiters_.erase(request_id_) > 0)
      connection_->abandoned_.insert(request_id_);
    mux_metrics().inflight.add(-1);
  }

  std::shared_ptr<TcpConnection> connection_;
  std::shared_ptr<TcpConnection::Waiter> waiter_;
  std::uint64_t request_id_;
  std::chrono::steady_clock::time_point deadline_;
  bool consumed_ = false;
};

namespace {

/// Client half of the session handshake: sends hello, waits for accept.
SessionAccept client_handshake(Socket& socket, std::uint64_t session_id,
                               std::uint64_t highest_reply_seq,
                               double timeout_s) {
  CdrOutputStream hello_body;
  SessionHello{session_id, highest_reply_seq}.encode_body(hello_body);
  socket.send_frame(MessageType::session_hello, hello_body);
  MessageHeader header;
  std::vector<std::byte> body;
  if (!socket.recv_frame(header, body, nullptr, timeout_s))
    throw COMM_FAILURE("connection closed during session handshake",
                       minor_code::connection_lost,
                       CompletionStatus::completed_no);
  if (header.type != MessageType::session_accept)
    throw MARSHAL("unexpected message type in session handshake");
  CdrInputStream in(body, header.byte_order);
  return SessionAccept::decode_body(in);
}

}  // namespace

std::shared_ptr<TcpConnection> TcpConnection::open(
    const std::string& host, std::uint16_t port,
    const TcpClientOptions& options) {
  auto connection = std::shared_ptr<TcpConnection>(
      new TcpConnection(Socket::connect(host, port, options.connect_timeout_s)));
  connection->peer_ = host + ":" + std::to_string(port);
  connection->host_ = host;
  connection->port_ = port;
  connection->options_ = options;
  obs::flight_event(obs::FlightEvent::conn_open, connection->peer_);
  if (options.enable_sessions) {
    const SessionAccept accept = client_handshake(
        connection->socket_, 0, 0, options.connect_timeout_s);
    if (!accept.ok)
      throw COMM_FAILURE("server refused session", minor_code::connect_failed,
                         CompletionStatus::completed_no);
    connection->session_active_ = true;
    connection->session_id_ = accept.session_id;
    connection->retransmit_ =
        std::make_unique<RetransmitBuffer>(options.session_retransmit_limit);
    session_metrics().active.add(1);
  }
  return connection;
}

std::uint64_t TcpConnection::session_id() const {
  std::lock_guard lock(mu_);
  return session_id_;
}

std::size_t TcpConnection::retransmit_buffered() const {
  std::lock_guard lock(mu_);
  return retransmit_ ? retransmit_->size() : 0;
}

bool TcpConnection::session_active() const {
  std::lock_guard lock(mu_);
  return session_active_;
}

TcpConnection::TcpConnection(Socket socket) : socket_(std::move(socket)) {
  touch();
}

TcpConnection::~TcpConnection() { close(); }

void TcpConnection::touch() noexcept {
  last_used_.store(monotonic_seconds(), std::memory_order_relaxed);
}

std::size_t TcpConnection::in_flight() const {
  std::lock_guard lock(mu_);
  return waiters_.size();
}

double TcpConnection::last_used() const {
  return last_used_.load(std::memory_order_relaxed);
}

void TcpConnection::write_frame(const RequestMessage& request) {
  std::lock_guard lock(write_mu_);
  if (!retransmit_) {
    // Sessions off: the original zero-copy scratch path, byte-identical
    // frames.
    FrameBuilder frame = socket_.start_frame(MessageType::request,
                                             request.encoded_size_estimate());
    request.encode_body(frame.body());
    socket_.finish_frame(frame);
    return;
  }
  // Session path: stamp seq/ack, encode into an owned buffer and append it
  // to the retransmit buffer *before* the write — a mid-write connection
  // loss then just leaves the frame for the resume replay.  Holding
  // write_mu_ across assignment and write keeps wire order equal to seq
  // order, which the server's cumulative duplicate check depends on.
  std::vector<std::byte> bytes;
  {
    std::lock_guard state(mu_);
    RequestMessage stamped = request;
    const std::uint64_t seq = next_send_seq_++;
    attach_session_context(stamped, SessionContext{seq, highest_reply_seq_});
    FrameBuilder frame(MessageType::request);
    frame.body().reserve(stamped.encoded_size_estimate());
    stamped.encode_body(frame.body());
    bytes = frame.finish();
    if (retransmit_->full()) overflow_evict_locked();
    retransmit_->append(seq, request.request_id, bytes);
  }
  try {
    socket_.send_bytes(bytes);
  } catch (const Exception&) {
    // The frame is safely buffered: kick the socket so the leader notices
    // the loss and runs the resume protocol; the caller's waiter stays
    // registered and completes through the replay.
    if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  }
}

void TcpConnection::overflow_evict_locked() {
  auto victim = retransmit_->evict_oldest();
  if (!victim) return;
  session_metrics().overflow_failures.inc();
  if (obs::events_wanted()) {
    obs::publish_event(obs::Topic::session_state, /*host=*/"", /*key=*/peer_,
                       {obs::str_field("state", "overflow"),
                        obs::int_field("session", session_id_),
                        obs::int_field("request", victim->request_id)});
  }
  auto it = waiters_.find(victim->request_id);
  if (it == waiters_.end()) return;  // oneway or already completed
  const std::shared_ptr<Waiter> owner = std::move(it->second);
  waiters_.erase(it);
  abandoned_.insert(victim->request_id);  // its late reply counts as late
  owner->error = std::make_exception_ptr(COMM_FAILURE(
      "session retransmit buffer overflow: oldest in-flight call failed",
      minor_code::session_overflow, CompletionStatus::completed_maybe));
  owner->done.store(true, std::memory_order_release);
  owner->cv.notify_one();
}

std::unique_ptr<PendingReply> TcpConnection::send(const RequestMessage& request,
                                                  double timeout_s) {
  auto waiter = std::make_shared<Waiter>();
  {
    std::lock_guard lock(mu_);
    if (broken_.load(std::memory_order_acquire))
      throw COMM_FAILURE("connection already failed",
                         minor_code::connection_lost,
                         CompletionStatus::completed_no);
    if (!waiters_.empty()) mux_metrics().pipelined.inc();
    waiters_.emplace(request.request_id, waiter);
  }
  mux_metrics().inflight.add(1);
  touch();
  try {
    write_frame(request);
  } catch (...) {
    // Nothing of this request reached the peer coherently; unregister
    // ourselves with COMPLETED_NO and fail the *other* in-flight calls with
    // COMPLETED_MAYBE (their requests were already on the wire).
    {
      std::lock_guard lock(mu_);
      waiters_.erase(request.request_id);
      fail_all_locked(std::make_exception_ptr(
          COMM_FAILURE("connection failed while another request was writing",
                       minor_code::connection_lost,
                       CompletionStatus::completed_maybe)));
    }
    mux_metrics().inflight.add(-1);
    throw COMM_FAILURE("connection lost while sending request",
                       minor_code::connection_lost,
                       CompletionStatus::completed_no);
  }
  return std::make_unique<TcpMuxPendingReply>(
      shared_from_this(), std::move(waiter), request.request_id, timeout_s);
}

void TcpConnection::send_oneway(const RequestMessage& request) {
  if (broken_.load(std::memory_order_acquire))
    throw COMM_FAILURE("connection already failed", minor_code::connection_lost,
                       CompletionStatus::completed_no);
  touch();
  try {
    write_frame(request);
  } catch (...) {
    std::lock_guard lock(mu_);
    fail_all_locked(std::make_exception_ptr(
        COMM_FAILURE("connection failed while another request was writing",
                     minor_code::connection_lost,
                     CompletionStatus::completed_maybe)));
    throw;
  }
}

void TcpConnection::fail_all_locked(const std::exception_ptr& error) {
  // A connection-level failure is a *batched* failure: every in-flight call
  // on this connection sees the same COMM_FAILURE (the FT layer recovers
  // once and re-issues the batch against the new target).
  const bool first = !broken_.exchange(true, std::memory_order_acq_rel);
  const std::size_t victims = waiters_.size();
  if (victims > 0) mux_metrics().batch_failed.inc(victims);
  if (first) obs::flight_event(obs::FlightEvent::conn_close, peer_, victims);
  for (auto& [id, waiter] : waiters_) {
    waiter->error = error;
    waiter->done.store(true, std::memory_order_release);
    waiter->cv.notify_one();
  }
  waiters_.clear();
  abandoned_.clear();
  if (session_active_) {
    session_active_ = false;
    session_metrics().active.add(-1);
  }
  if (retransmit_) retransmit_->ack(UINT64_MAX);  // release the buffered bytes
  // A batch of in-flight calls going down together is the canonical "what
  // just happened" moment — flush the flight recorder to any installed sink.
  if (victims > 1) obs::flight_auto_dump("batched COMM_FAILURE on " + peer_);
}

bool TcpConnection::read_one_locked(
    std::unique_lock<std::mutex>& lock,
    std::chrono::steady_clock::time_point deadline) {
  lock.unlock();
  std::exception_ptr failure;
  ReplyMessage reply;
  bool have_reply = false;
  try {
    MessageHeader header;
    std::vector<std::byte> body;
    if (!socket_.recv_frame(header, body)) {
      failure = std::make_exception_ptr(COMM_FAILURE(
          "server closed connection", minor_code::connection_lost,
          CompletionStatus::completed_maybe));
    } else if (header.type != MessageType::reply) {
      failure = std::make_exception_ptr(
          MARSHAL("unexpected message type in reply stream"));
    } else {
      CdrInputStream in(body, header.byte_order);
      reply = ReplyMessage::decode_body(in);
      have_reply = true;
      touch();
    }
  } catch (const Exception&) {
    failure = std::current_exception();
  }
  lock.lock();
  if (!have_reply) {
    return handle_failure_locked(lock, failure, deadline);
  }
  if (reply.has_session) {
    if (reply.session_seq <= highest_reply_seq_) {
      // A replayed reply we already consumed before the connection cut.
      mux_metrics().discarded.inc();
      mux_metrics().discarded_duplicate.inc();
      return true;
    }
    highest_reply_seq_ = reply.session_seq;
    if (retransmit_) retransmit_->ack(reply.session_ack);  // cumulative
  }
  auto it = waiters_.find(reply.request_id);
  if (it == waiters_.end()) {
    // Late (timed-out/abandoned) or stray reply: ignore it.  Every waiter
    // is completed exactly once.  An abandoned call's entry is reaped here,
    // when its discarded reply finally arrives.
    mux_metrics().discarded.inc();
    if (abandoned_.erase(reply.request_id) > 0)
      mux_metrics().discarded_late.inc();
    else
      mux_metrics().discarded_duplicate.inc();
    return true;
  }
  const std::shared_ptr<Waiter> owner = std::move(it->second);
  waiters_.erase(it);
  owner->reply = std::move(reply);
  owner->done.store(true, std::memory_order_release);
  owner->cv.notify_one();  // wake exactly the caller this reply is for
  return true;
}

bool TcpConnection::handle_failure_locked(
    std::unique_lock<std::mutex>& lock, const std::exception_ptr& failure,
    std::chrono::steady_clock::time_point deadline) {
  if (resume_locked(lock, deadline)) return true;
  if (session_active_) {
    // Resume was tried and lost (attempts budget, caller deadline, or the
    // server rejected the stale session): fire the batched-failure path with
    // a minor code the FT proxy can attribute to an exhausted resume.
    if (obs::events_wanted()) {
      obs::publish_event(obs::Topic::session_state, /*host=*/"",
                         /*key=*/peer_,
                         {obs::str_field("state", "resume_failed"),
                          obs::int_field("session", session_id_)});
    }
    fail_all_locked(std::make_exception_ptr(COMM_FAILURE(
        "session resume failed; falling back to batched failure",
        minor_code::session_resume_failed, CompletionStatus::completed_maybe)));
  } else {
    fail_all_locked(failure);
  }
  return false;
}

bool TcpConnection::resume_locked(
    std::unique_lock<std::mutex>& lock,
    std::chrono::steady_clock::time_point deadline) {
  if (!session_active_ || closing_.load(std::memory_order_acquire))
    return false;
  // Only the leader reaches this point (leader_active_ excludes concurrent
  // resumers and no other thread reads the socket); writers that hit the
  // dead socket meanwhile have already parked their frames in the
  // retransmit buffer, so they are covered by the replay below.
  for (int attempt = 1; attempt <= options_.resume_attempts; ++attempt) {
    if (closing_.load(std::memory_order_acquire)) return false;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    const std::uint64_t session_id = session_id_;
    const std::uint64_t hello_ack = highest_reply_seq_;
    lock.unlock();
    Socket fresh;
    SessionAccept accept;
    bool connected = false;
    try {
      double budget = options_.connect_timeout_s;
      if (deadline != std::chrono::steady_clock::time_point::max()) {
        const double remaining =
            std::chrono::duration<double>(deadline -
                                          std::chrono::steady_clock::now())
                .count();
        if (remaining > 0)
          budget = budget > 0 ? std::min(budget, remaining) : remaining;
      }
      fresh = Socket::connect(host_, port_, budget);
      accept = client_handshake(fresh, session_id, hello_ack, budget);
      connected = true;
    } catch (const Exception&) {
      // Connect refused/timed out or the handshake broke: retry after a
      // pause (below), within the attempts and deadline budgets.
    }
    if (connected && !accept.ok) {
      // The server no longer knows this session (restart, table cull, or a
      // gapped reply buffer): resuming cannot be exactly-once, so give up
      // immediately and let the batched-failure path fire.
      lock.lock();
      session_metrics().resume_failures.inc();
      return false;
    }
    if (connected) {
      // Swap the socket and replay the unacknowledged tail.  Lock order is
      // write_mu_ -> mu_, so mu_ stays dropped until both are taken; no
      // writer can interleave a new frame before the replayed ones.
      bool replay_ok = true;
      std::size_t replayed = 0;
      {
        std::lock_guard writer(write_mu_);
        std::lock_guard state(mu_);
        try {
          for (const SessionFrame* frame :
               retransmit_->after(accept.highest_request_seq)) {
            fresh.send_bytes(frame->bytes);
            ++replayed;
          }
          socket_ = std::move(fresh);
        } catch (const Exception&) {
          replay_ok = false;  // the fresh socket died too: next attempt
        }
      }
      lock.lock();
      if (!replay_ok) continue;
      if (closing_.load(std::memory_order_acquire)) return false;
      session_metrics().resumes.inc();
      if (replayed > 0) session_metrics().retransmitted.inc(replayed);
      obs::flight_event(obs::FlightEvent::session_resume, peer_, session_id_,
                        replayed);
      if (obs::events_wanted()) {
        obs::publish_event(obs::Topic::session_state, /*host=*/"",
                           /*key=*/peer_,
                           {obs::str_field("state", "resumed"),
                            obs::int_field("session", session_id_),
                            obs::int_field("frames", replayed)});
      }
      touch();
      return true;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.resume_backoff_s));
    lock.lock();
  }
  session_metrics().resume_failures.inc();
  return false;
}

bool TcpConnection::lead(std::unique_lock<std::mutex>& lock,
                         const std::shared_ptr<Waiter>& waiter,
                         std::chrono::steady_clock::time_point deadline) {
  while (!waiter->done.load(std::memory_order_acquire)) {
    if (closing_.load(std::memory_order_acquire)) {
      fail_all_locked(std::make_exception_ptr(
          COMM_FAILURE("connection closed", minor_code::connection_lost,
                       CompletionStatus::completed_maybe)));
      return true;
    }
    // Poll in bounded slices so close() and this caller's deadline are
    // honored *between* frames; once data is available, commit to reading
    // the whole frame — abandoning one mid-read would lose stream sync for
    // every other call on the connection.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    int slice_ms = kPollIntervalMs;
    if (deadline != std::chrono::steady_clock::time_point::max()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      slice_ms = static_cast<int>(std::min<long long>(slice_ms,
                                                      std::max<long long>(
                                                          1, remaining)));
    }
    lock.unlock();
    bool readable = false;
    std::exception_ptr failure;
    try {
      readable = socket_.wait_readable(slice_ms);
    } catch (const Exception&) {
      failure = std::current_exception();
    }
    lock.lock();
    if (failure) {
      if (handle_failure_locked(lock, failure, deadline)) continue;
      return true;
    }
    if (readable && !read_one_locked(lock, deadline)) return true;
  }
  return true;
}

void TcpConnection::drain_available_locked(std::unique_lock<std::mutex>& lock) {
  for (;;) {
    lock.unlock();
    bool readable = false;
    std::exception_ptr failure;
    try {
      readable = socket_.wait_readable(0);
    } catch (const Exception&) {
      failure = std::current_exception();
    }
    lock.lock();
    if (failure) {
      handle_failure_locked(lock, failure,
                            std::chrono::steady_clock::time_point::max());
      return;
    }
    if (!readable ||
        !read_one_locked(lock, std::chrono::steady_clock::time_point::max()))
      return;
  }
}

void TcpConnection::promote_follower_locked() {
  for (auto& [id, waiter] : waiters_) {
    if (waiter->blocked) {
      waiter->cv.notify_one();
      return;
    }
  }
}

void TcpConnection::close() {
  closing_.store(true, std::memory_order_release);
  // shutdown() (not close()) aborts an in-progress leader read or sender
  // write without releasing the fd, so neither can race a reused fd; the
  // Socket destructor closes it once the last shared_ptr drops.
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  std::lock_guard lock(mu_);
  fail_all_locked(std::make_exception_ptr(
      COMM_FAILURE("connection closed", minor_code::connection_lost,
                   CompletionStatus::completed_maybe)));
}

// --- client transport -------------------------------------------------------

TcpClientTransport::~TcpClientTransport() {
  std::map<TargetKey, std::shared_ptr<TcpConnection>> connections;
  {
    std::lock_guard lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& [key, connection] : connections) connection->close();
  mux_metrics().connections.add(-static_cast<double>(connections.size()));
}

std::size_t TcpClientTransport::connection_count() const {
  std::lock_guard lock(conn_mu_);
  return connections_.size();
}

std::shared_ptr<TcpConnection> TcpClientTransport::connection_for(
    const IOR& target, bool* fresh) {
  const TargetKey key{target.host, target.port};
  std::vector<std::shared_ptr<TcpConnection>> retired;
  std::shared_ptr<TcpConnection> existing;
  {
    std::lock_guard lock(conn_mu_);
    const double now = monotonic_seconds();
    // Sweep broken and idle-expired connections (health check + idle TTL).
    for (auto it = connections_.begin(); it != connections_.end();) {
      const auto& connection = it->second;
      const bool expired = options_.idle_ttl_s > 0 &&
                           connection->in_flight() == 0 &&
                           now - connection->last_used() > options_.idle_ttl_s;
      if (!connection->healthy() || expired) {
        if (connection->healthy()) {
          mux_metrics().idle_closed.inc();
          obs::flight_event(obs::FlightEvent::conn_evict, connection->peer());
        }
        retired.push_back(connection);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto it = connections_.find(key);
    if (it != connections_.end()) {
      existing = it->second;
    } else if (connections_.size() >= options_.max_connections) {
      // Soft socket cap: evict the least-recently-used *idle* connection
      // before opening another.  Busy connections are never culled, so the
      // cap can be exceeded transiently — calls are never failed for lack of
      // a socket.
      auto lru = connections_.end();
      for (auto cand = connections_.begin(); cand != connections_.end(); ++cand)
        if (cand->second->in_flight() == 0 &&
            (lru == connections_.end() ||
             cand->second->last_used() < lru->second->last_used()))
          lru = cand;
      if (lru != connections_.end()) {
        mux_metrics().idle_closed.inc();
        obs::flight_event(obs::FlightEvent::conn_evict, lru->second->peer());
        retired.push_back(lru->second);
        connections_.erase(lru);
      }
    }
  }
  // close() takes the connection's own lock to fail in-flight calls — keep
  // it outside conn_mu_ so other targets' lookups never stall behind it.
  for (auto& dead : retired) dead->close();
  mux_metrics().connections.add(-static_cast<double>(retired.size()));
  if (existing) {
    *fresh = false;
    return existing;
  }

  // Connect without holding conn_mu_ (a slow or dead host must not stall
  // calls to other targets).  If we lose the race with another opener, adopt
  // the connection that won.
  auto opened = TcpConnection::open(target.host, target.port, options_);
  std::shared_ptr<TcpConnection> loser;
  {
    std::lock_guard lock(conn_mu_);
    auto [it, inserted] = connections_.emplace(key, opened);
    if (!inserted) {
      if (it->second->healthy()) {
        loser = std::move(opened);
        *fresh = false;
        opened = it->second;
      } else {
        loser = std::move(it->second);
        it->second = opened;
        *fresh = true;
      }
    } else {
      *fresh = true;
      mux_metrics().connections.add(1);
    }
  }
  if (loser) loser->close();
  return opened;
}

void TcpClientTransport::drop_connection(
    const IOR& target, const std::shared_ptr<TcpConnection>& dead) {
  {
    std::lock_guard lock(conn_mu_);
    auto it = connections_.find({target.host, target.port});
    if (it == connections_.end() || it->second != dead) return;
    connections_.erase(it);
    mux_metrics().connections.add(-1);
  }
  dead->close();
}

std::unique_ptr<PendingReply> TcpClientTransport::send_multiplexed(
    const IOR& target, const RequestMessage& request) {
  std::string trace_detail;
  if (obs::tracing_enabled())
    trace_detail = request.operation + " -> " + target.host + ":" +
                   std::to_string(target.port);
  obs::Span span("transport.send", trace_detail);
  for (int attempt = 0;; ++attempt) {
    bool fresh = false;
    std::shared_ptr<TcpConnection> connection = connection_for(target, &fresh);
    try {
      if (!request.response_expected) {
        connection->send_oneway(request);
        return std::make_unique<ImmediateReply>(
            ReplyMessage::make_result(request.request_id, {}));
      }
      return connection->send(request, options_.request_timeout_s);
    } catch (const COMM_FAILURE& e) {
      drop_connection(target, connection);
      // A reused connection can turn out stale (server restarted, idle reset)
      // with nothing sent — retry exactly once on a fresh socket.  A fresh
      // connection failing, or anything sent, propagates.
      if (fresh || attempt > 0 || e.completed() != CompletionStatus::completed_no)
        throw;
    }
  }
}

namespace {

/// Legacy deferred TCP reply: the round trip runs on a helper thread (one
/// thread per deferred call — the cost the multiplexed mode removes).
class TcpPendingReply final : public PendingReply {
 public:
  explicit TcpPendingReply(std::function<ReplyMessage()> round_trip)
      : future_(std::async(std::launch::async, std::move(round_trip))) {}

  bool ready() override {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  ReplyMessage get() override { return future_.get(); }

 private:
  std::future<ReplyMessage> future_;
};

}  // namespace

std::unique_ptr<PendingReply> TcpClientTransport::send(const IOR& target,
                                                       RequestMessage request) {
  if (options_.multiplex) return send_multiplexed(target, request);
  return std::make_unique<TcpPendingReply>(
      [this, target, request = std::move(request)]() {
        return round_trip(target, request);
      });
}

ReplyMessage TcpClientTransport::invoke(const IOR& target,
                                        RequestMessage request) {
  if (options_.multiplex) return send_multiplexed(target, request)->get();
  return round_trip(target, request);
}

// --- legacy serialized client (multiplex = false; benchmark baseline) -------

ReplyMessage TcpClientTransport::round_trip(const IOR& target,
                                            const RequestMessage& request) {
  std::string trace_detail;
  if (obs::tracing_enabled())
    trace_detail = request.operation + " -> " + target.host + ":" +
                   std::to_string(target.port);
  obs::Span span("transport.roundtrip", trace_detail);
  Socket socket = checkout(target.host, target.port);
  FrameBuilder frame = socket.start_frame(MessageType::request,
                                          request.encoded_size_estimate());
  request.encode_body(frame.body());
  socket.finish_frame(frame);
  if (!request.response_expected) {
    checkin(target.host, target.port, std::move(socket));
    return ReplyMessage::make_result(request.request_id, {});
  }
  MessageHeader header;
  std::vector<std::byte> reply_bytes;
  if (!socket.recv_frame(header, reply_bytes, nullptr,
                         options_.request_timeout_s))
    throw COMM_FAILURE("server closed connection", minor_code::connection_lost,
                       CompletionStatus::completed_maybe);
  if (header.type != MessageType::reply)
    throw MARSHAL("unexpected message type in reply");
  CdrInputStream in(reply_bytes, header.byte_order);
  ReplyMessage reply = ReplyMessage::decode_body(in);
  checkin(target.host, target.port, std::move(socket));
  return reply;
}

Socket TcpClientTransport::checkout(const std::string& host,
                                    std::uint16_t port) {
  {
    std::lock_guard lock(pool_mu_);
    auto it = pool_.find({host, port});
    if (it != pool_.end() && !it->second.empty()) {
      Socket socket = std::move(it->second.back());
      it->second.pop_back();
      return socket;
    }
  }
  return Socket::connect(host, port, options_.connect_timeout_s);
}

void TcpClientTransport::checkin(const std::string& host, std::uint16_t port,
                                 Socket socket) {
  constexpr std::size_t kMaxPooledPerTarget = 8;
  std::lock_guard lock(pool_mu_);
  auto& sockets = pool_[{host, port}];
  if (sockets.size() < kMaxPooledPerTarget) sockets.push_back(std::move(socket));
}

// --- server -----------------------------------------------------------------

void TcpServerEndpoint::Connection::write_reply(
    const ReplyMessage& reply) noexcept {
  std::lock_guard lock(write_mu);
  if (dead.load(std::memory_order_acquire)) return;
  try {
    FrameBuilder frame =
        socket.start_frame(MessageType::reply, reply.encoded_size_estimate());
    reply.encode_body(frame.body());
    socket.finish_frame(frame);
  } catch (...) {
    // Peer is gone; let the receive loop notice and wind the connection
    // down.  Never close the fd from a writer thread.
    dead.store(true, std::memory_order_release);
  }
}

void TcpServerEndpoint::Connection::send_frame_bytes(
    std::vector<std::byte> bytes) noexcept {
  std::lock_guard lock(write_mu);
  if (dead.load(std::memory_order_acquire)) return;
  try {
    socket.send_bytes(bytes);
  } catch (...) {
    dead.store(true, std::memory_order_release);
  }
}

TcpServerEndpoint::TcpServerEndpoint(const std::string& host,
                                     std::uint16_t port,
                                     TcpServerOptions options)
    : host_(host), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw_errno("socket", minor_code::connect_failed,
                CompletionStatus::completed_no);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw COMM_FAILURE("bad listen address '" + host + "'",
                       minor_code::connect_failed,
                       CompletionStatus::completed_no);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind " + host + ":" + std::to_string(port),
                minor_code::connect_failed, CompletionStatus::completed_no);
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen", minor_code::connect_failed,
                CompletionStatus::completed_no);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

TcpServerEndpoint::~TcpServerEndpoint() { stop(); }

void TcpServerEndpoint::start(std::shared_ptr<ObjectAdapter> adapter) {
  adapter_ = std::move(adapter);
  if (options_.reactor) {
    reactor_ = std::make_unique<Reactor>(
        listen_fd_, adapter_, sessions_,
        ReactorOptions{options_.io_threads, options_.idle_timeout_s});
    // Back-pressure seam: a full pool makes the reactor stop reading the
    // stalled connections; this callback wakes it once capacity frees up.
    if (DispatchPool* pool = adapter_->dispatch_pool())
      pool->set_space_callback(
          [reactor = reactor_.get()] { reactor->notify_pool_space(); });
    reactor_->start();
    return;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpServerEndpoint::stop() {
  if (stopping_.exchange(true)) return;
  if (reactor_) {
    reactor_->stop();
    if (adapter_)
      if (DispatchPool* pool = adapter_->dispatch_pool())
        pool->set_space_callback(nullptr);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& worker : workers)
    if (worker.joinable()) worker.join();
}

void TcpServerEndpoint::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE)
        // Out of file descriptors: drop this client and keep accepting —
        // the poll interval above is the natural backoff.  Exiting the
        // loop would turn a transient fd shortage into a dead endpoint.
        log::emit(log::Level::warning, "transport",
                  "accept failed (out of file descriptors); retrying");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(workers_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    auto connection = std::make_shared<Connection>(Socket(fd));
    mux_metrics().connections.add(1);
    workers_.emplace_back([this, connection = std::move(connection)]() mutable {
      connection_loop(std::move(connection));
      mux_metrics().connections.add(-1);
    });
  }
}

void TcpServerEndpoint::connection_loop(std::shared_ptr<Connection> connection) {
  // Receive loop: read and decode only.  Servant execution happens on the
  // adapter's dispatch pool (FIFO per object key); completions write replies
  // back under the connection's write mutex, in whatever order dispatch
  // finishes.  The completion's shared_ptr keeps the socket open until the
  // last queued reply for this connection has been written.
  MessageHeader header;
  std::vector<std::byte> body;
  std::shared_ptr<ServerSession> session;
  while (!stopping_.load(std::memory_order_relaxed) &&
         !connection->dead.load(std::memory_order_acquire)) {
    try {
      if (!connection->socket.recv_frame(header, body, &stopping_)) return;
      if (header.type == MessageType::close_connection) return;
      if (header.type == MessageType::session_hello) {
        CdrInputStream in(body, header.byte_order);
        const SessionHello hello = SessionHello::decode_body(in);
        // Shared with the reactor path: accept/reject + replay are written
        // under the session mutex through the ServerConn seam, so both
        // modes produce identical wire behaviour.
        session = server_detail::handle_session_hello(sessions_, hello,
                                                      connection);
        continue;
      }
      if (header.type != MessageType::request) {
        std::lock_guard lock(connection->write_mu);
        CdrOutputStream empty;
        connection->socket.send_frame(MessageType::message_error, empty);
        return;
      }
      CdrInputStream in(body, header.byte_order);
      RequestMessage request = RequestMessage::decode_body(in);
      if (session && !server_detail::note_session_request(session, request))
        continue;  // replayed duplicate: suppressed, never re-executed
      DispatchPool::Completion done;
      if (request.response_expected) {
        const std::shared_ptr<ServerConn> carrier = connection;
        if (session)
          done = [session, carrier](ReplyMessage reply) {
            server_detail::write_session_reply(session, carrier,
                                               std::move(reply));
          };
        else
          done = [carrier](ReplyMessage reply) { carrier->write_reply(reply); };
      }
      // May block when the pool is at capacity: the receive loop then stops
      // reading and TCP flow control pushes back to the client (bounded
      // server memory under overload).
      adapter_->dispatch_async(std::move(request), std::move(done));
    } catch (const Exception&) {
      // Framing/marshal error on this connection: drop it.  The client sees
      // COMM_FAILURE, which is exactly what a real ORB produces.
      return;
    }
  }
}

}  // namespace corba
