// Common Data Representation (CDR) streams.
//
// CDR is CORBA's on-the-wire encoding: primitive types are aligned to their
// natural size and written in the sender's byte order; a flag in the message
// header tells the receiver whether to swap.  This implementation supports
// both byte orders, CDR alignment rules, strings (length-prefixed,
// NUL-terminated) and octet sequences, and is bounds-checked on input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "orb/exceptions.hpp"

namespace corba {

enum class ByteOrder : std::uint8_t { big_endian = 0, little_endian = 1 };

/// Byte order of the machine we are running on.
ByteOrder native_byte_order() noexcept;

/// Output stream producing a CDR-encoded byte buffer.
class CdrOutputStream {
 public:
  explicit CdrOutputStream(ByteOrder order = native_byte_order());

  /// Reuses `recycled`'s capacity (its content is discarded) — the hot
  /// invoke path hands the same scratch buffer through encode/send cycles
  /// so steady-state message assembly performs no allocation.
  explicit CdrOutputStream(std::vector<std::byte>&& recycled,
                           ByteOrder order = native_byte_order());

  ByteOrder byte_order() const noexcept { return order_; }
  /// Bytes written since the alignment origin (== the CDR body size).
  std::size_t size() const noexcept { return buffer_.size() - origin_; }

  /// Pre-sizes the underlying buffer (size-hint reserve before encode).
  void reserve(std::size_t n) { buffer_.reserve(origin_ + n); }

  /// Makes the current position offset 0 for alignment purposes.  Frame
  /// assembly writes the fixed header first and rebases, so the body's CDR
  /// alignment matches a receiver that decodes the body on its own.
  void rebase_alignment() noexcept { origin_ = buffer_.size(); }

  void write_octet(std::uint8_t v);
  void write_bool(bool v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i16(std::int16_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  /// CDR string: u32 length including NUL, characters, NUL.
  void write_string(std::string_view v);
  /// Octet sequence: u32 length, raw bytes.
  void write_blob(std::span<const std::byte> v);
  void write_blob(std::span<const std::uint8_t> v);
  /// Sequence of doubles: u32 count, 8-byte-aligned payload.
  void write_f64_seq(std::span<const double> v);

  /// Raw bytes with no length prefix and no alignment (header assembly).
  void write_raw(std::span<const std::byte> v);

  /// Inserts padding so the next value starts at `alignment` (power of two).
  void align(std::size_t alignment);

  const std::vector<std::byte>& buffer() const noexcept { return buffer_; }
  std::vector<std::byte> take_buffer() noexcept { return std::move(buffer_); }

 private:
  template <typename T>
  void write_scalar(T v);

  std::vector<std::byte> buffer_;
  std::size_t origin_ = 0;
  ByteOrder order_;
};

/// Bounds-checked input stream over a CDR-encoded buffer.  The stream does
/// not own the buffer; callers keep it alive for the stream's lifetime.
class CdrInputStream {
 public:
  CdrInputStream(std::span<const std::byte> data,
                 ByteOrder order = native_byte_order());

  ByteOrder byte_order() const noexcept { return order_; }
  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t read_octet();
  bool read_bool();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int16_t read_i16();
  std::int32_t read_i32();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<std::byte> read_blob();
  std::vector<double> read_f64_seq();

  /// Zero-copy blob read: a view into the underlying buffer, valid only
  /// while that buffer lives.  Restore paths that parse-and-discard use
  /// this instead of read_blob() to skip the per-message copy.
  std::span<const std::byte> read_blob_view();

  /// Zero-copy f64-sequence read.  When the payload is native-order and
  /// 8-byte aligned in memory the returned span aliases the buffer and
  /// `scratch` is untouched; otherwise the values are decoded into
  /// `scratch` (reused across calls) and the span points there.
  std::span<const double> read_f64_view(std::vector<double>& scratch);

  /// Reads `n` raw bytes with no alignment.
  std::span<const std::byte> read_raw(std::size_t n);

  void align(std::size_t alignment);

 private:
  template <typename T>
  T read_scalar();
  void require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  ByteOrder order_;
};

}  // namespace corba
