#include "orb/message.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace corba {

std::array<std::byte, MessageHeader::kEncodedSize> MessageHeader::encode()
    const {
  std::array<std::byte, kEncodedSize> out{};
  out[0] = static_cast<std::byte>(kMagic[0]);
  out[1] = static_cast<std::byte>(kMagic[1]);
  out[2] = static_cast<std::byte>(kMagic[2]);
  out[3] = static_cast<std::byte>(kMagic[3]);
  out[4] = static_cast<std::byte>(kVersionMajor);
  out[5] = static_cast<std::byte>(kVersionMinor);
  out[6] = static_cast<std::byte>(byte_order);
  out[7] = static_cast<std::byte>(type);
  // Body length is always little-endian in the header, independent of the
  // body's byte-order flag, so framing code never needs to branch.
  out[8] = static_cast<std::byte>(body_length & 0xff);
  out[9] = static_cast<std::byte>((body_length >> 8) & 0xff);
  out[10] = static_cast<std::byte>((body_length >> 16) & 0xff);
  out[11] = static_cast<std::byte>((body_length >> 24) & 0xff);
  return out;
}

MessageHeader MessageHeader::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < kEncodedSize)
    throw MARSHAL("short message header");
  if (static_cast<char>(bytes[0]) != kMagic[0] ||
      static_cast<char>(bytes[1]) != kMagic[1] ||
      static_cast<char>(bytes[2]) != kMagic[2] ||
      static_cast<char>(bytes[3]) != kMagic[3])
    throw MARSHAL("bad message magic");
  if (static_cast<std::uint8_t>(bytes[4]) != kVersionMajor)
    throw MARSHAL("unsupported protocol version");
  MessageHeader h;
  const auto order = static_cast<std::uint8_t>(bytes[6]);
  if (order > 1) throw MARSHAL("bad byte-order flag");
  h.byte_order = static_cast<ByteOrder>(order);
  const auto type = static_cast<std::uint8_t>(bytes[7]);
  if (type > static_cast<std::uint8_t>(MessageType::session_accept))
    throw MARSHAL("bad message type");
  h.type = static_cast<MessageType>(type);
  h.body_length = static_cast<std::uint32_t>(bytes[8]) |
                  (static_cast<std::uint32_t>(bytes[9]) << 8) |
                  (static_cast<std::uint32_t>(bytes[10]) << 16) |
                  (static_cast<std::uint32_t>(bytes[11]) << 24);
  return h;
}

void RequestMessage::encode_body(CdrOutputStream& out) const {
  out.write_u64(request_id);
  out.write_blob(std::span<const std::byte>(object_key.bytes));
  out.write_string(operation);
  out.write_bool(response_expected);
  if (arguments.size() >= UINT32_MAX)
    throw MARSHAL("too many arguments");
  out.write_u32(static_cast<std::uint32_t>(arguments.size()));
  for (const Value& v : arguments) v.encode(out);
  // Service contexts are a tail-optional extension: an empty list writes
  // nothing, so untraced messages are byte-identical to the pre-slot format
  // (and old decoders keep working on them).
  if (service_contexts.empty()) return;
  if (service_contexts.size() >= UINT32_MAX)
    throw MARSHAL("too many service contexts");
  out.write_u32(static_cast<std::uint32_t>(service_contexts.size()));
  for (const ServiceContext& ctx : service_contexts) {
    out.write_u32(ctx.id);
    out.write_blob(std::span<const std::byte>(ctx.data));
  }
}

RequestMessage RequestMessage::decode_body(CdrInputStream& in) {
  RequestMessage req;
  req.request_id = in.read_u64();
  req.object_key.bytes = in.read_blob();
  req.operation = in.read_string();
  req.response_expected = in.read_bool();
  const std::uint32_t argc = in.read_u32();
  if (argc > in.remaining())
    throw MARSHAL("argument count exceeds buffer");
  req.arguments.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i)
    req.arguments.push_back(Value::decode(in));
  if (!in.at_end()) {
    const std::uint32_t ctxc = in.read_u32();
    if (ctxc > in.remaining())
      throw MARSHAL("service-context count exceeds buffer");
    req.service_contexts.reserve(ctxc);
    for (std::uint32_t i = 0; i < ctxc; ++i) {
      ServiceContext ctx;
      ctx.id = in.read_u32();
      ctx.data = in.read_blob();
      req.service_contexts.push_back(std::move(ctx));
    }
  }
  return req;
}

std::size_t RequestMessage::encoded_size_estimate() const noexcept {
  std::size_t n = MessageHeader::kEncodedSize + 8 + 5 +
                  object_key.bytes.size() + 5 + operation.size() + 1 + 4;
  for (const Value& v : arguments) n += v.encoded_size_estimate();
  if (!service_contexts.empty()) {
    n += 4;  // the tail-optional slot count
    for (const ServiceContext& ctx : service_contexts)
      n += 4 + 5 + ctx.data.size();
  }
  return n;
}

void attach_trace_context(RequestMessage& request,
                          const obs::TraceContext& context) {
  CdrOutputStream payload(ByteOrder::little_endian);
  payload.write_u64(context.trace_id);
  payload.write_u64(context.span_id);
  payload.write_u64(context.parent_span_id);
  for (ServiceContext& ctx : request.service_contexts) {
    if (ctx.id == kTraceContextSlot) {
      ctx.data = payload.take_buffer();
      return;
    }
  }
  request.service_contexts.push_back(
      ServiceContext{kTraceContextSlot, payload.take_buffer()});
}

void attach_session_context(RequestMessage& request,
                            const SessionContext& context) {
  CdrOutputStream payload(ByteOrder::little_endian);
  payload.write_u64(context.seq);
  payload.write_u64(context.ack);
  for (ServiceContext& ctx : request.service_contexts) {
    if (ctx.id == kSessionContextSlot) {
      ctx.data = payload.take_buffer();
      return;
    }
  }
  request.service_contexts.push_back(
      ServiceContext{kSessionContextSlot, payload.take_buffer()});
}

std::optional<SessionContext> extract_session_context(
    const RequestMessage& request) {
  for (const ServiceContext& ctx : request.service_contexts) {
    if (ctx.id != kSessionContextSlot) continue;
    if (ctx.data.size() < 16) return std::nullopt;  // malformed: ignore
    CdrInputStream in(ctx.data, ByteOrder::little_endian);
    SessionContext out;
    out.seq = in.read_u64();
    out.ack = in.read_u64();
    return out;
  }
  return std::nullopt;
}

void SessionHello::encode_body(CdrOutputStream& out) const {
  out.write_u64(session_id);
  out.write_u64(highest_reply_seq);
}

SessionHello SessionHello::decode_body(CdrInputStream& in) {
  SessionHello hello;
  hello.session_id = in.read_u64();
  hello.highest_reply_seq = in.read_u64();
  return hello;
}

void SessionAccept::encode_body(CdrOutputStream& out) const {
  out.write_bool(ok);
  out.write_u64(session_id);
  out.write_u64(highest_request_seq);
}

SessionAccept SessionAccept::decode_body(CdrInputStream& in) {
  SessionAccept accept;
  accept.ok = in.read_bool();
  accept.session_id = in.read_u64();
  accept.highest_request_seq = in.read_u64();
  return accept;
}

std::optional<obs::TraceContext> extract_trace_context(
    const RequestMessage& request) {
  for (const ServiceContext& ctx : request.service_contexts) {
    if (ctx.id != kTraceContextSlot) continue;
    if (ctx.data.size() < 24) return std::nullopt;  // malformed: ignore
    CdrInputStream in(ctx.data, ByteOrder::little_endian);
    obs::TraceContext out;
    out.trace_id = in.read_u64();
    out.span_id = in.read_u64();
    out.parent_span_id = in.read_u64();
    return out;
  }
  return std::nullopt;
}

void ReplyMessage::encode_body(CdrOutputStream& out) const {
  out.write_u64(request_id);
  out.write_octet(static_cast<std::uint8_t>(status));
  switch (status) {
    case ReplyStatus::no_exception:
      result.encode(out);
      break;
    case ReplyStatus::user_exception:
      out.write_string(exception_id);
      out.write_string(exception_detail);
      break;
    case ReplyStatus::system_exception:
      out.write_string(exception_id);
      out.write_string(exception_detail);
      out.write_u32(exception_minor);
      out.write_octet(static_cast<std::uint8_t>(completion));
      break;
  }
  // Session seq/ack is a tail-optional extension like a request's service
  // contexts: with sessions off nothing is written and the reply stays
  // byte-identical to the pre-session format.
  if (!has_session) return;
  out.write_u64(session_seq);
  out.write_u64(session_ack);
}

ReplyMessage ReplyMessage::decode_body(CdrInputStream& in) {
  ReplyMessage rep;
  rep.request_id = in.read_u64();
  const auto status = in.read_octet();
  if (status > static_cast<std::uint8_t>(ReplyStatus::system_exception))
    throw MARSHAL("bad reply status");
  rep.status = static_cast<ReplyStatus>(status);
  switch (rep.status) {
    case ReplyStatus::no_exception:
      rep.result = Value::decode(in);
      break;
    case ReplyStatus::user_exception:
      rep.exception_id = in.read_string();
      rep.exception_detail = in.read_string();
      break;
    case ReplyStatus::system_exception: {
      rep.exception_id = in.read_string();
      rep.exception_detail = in.read_string();
      rep.exception_minor = in.read_u32();
      const auto completion = in.read_octet();
      if (completion > static_cast<std::uint8_t>(CompletionStatus::completed_maybe))
        throw MARSHAL("bad completion status");
      rep.completion = static_cast<CompletionStatus>(completion);
      break;
    }
  }
  if (!in.at_end()) {
    rep.has_session = true;
    rep.session_seq = in.read_u64();
    rep.session_ack = in.read_u64();
  }
  return rep;
}

std::size_t ReplyMessage::encoded_size_estimate() const noexcept {
  return MessageHeader::kEncodedSize + 8 + 1 + result.encoded_size_estimate() +
         exception_id.size() + exception_detail.size() +
         (has_session ? 24 : 0);
}

Value ReplyMessage::result_or_throw() const {
  switch (status) {
    case ReplyStatus::no_exception:
      return result;
    case ReplyStatus::user_exception:
      UserExceptionRegistry::instance().raise(exception_id, exception_detail);
    case ReplyStatus::system_exception:
      raise_system_exception(exception_id, exception_detail, exception_minor,
                             completion);
  }
  throw INTERNAL("corrupt reply status");
}

ReplyMessage ReplyMessage::make_result(std::uint64_t request_id, Value result) {
  ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = ReplyStatus::no_exception;
  rep.result = std::move(result);
  return rep;
}

ReplyMessage ReplyMessage::make_system_exception(std::uint64_t request_id,
                                                 const SystemException& e) {
  ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = ReplyStatus::system_exception;
  rep.exception_id = e.repo_id();
  rep.exception_detail = e.detail();
  rep.exception_minor = e.minor();
  rep.completion = e.completed();
  return rep;
}

ReplyMessage ReplyMessage::make_user_exception(std::uint64_t request_id,
                                               const UserException& e) {
  ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = ReplyStatus::user_exception;
  rep.exception_id = e.repo_id();
  rep.exception_detail = e.detail();
  return rep;
}

UserExceptionRegistry& UserExceptionRegistry::instance() {
  static UserExceptionRegistry registry;
  return registry;
}

void UserExceptionRegistry::register_exception(std::string repo_id,
                                               Thrower thrower) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const auto& e) { return e.first == repo_id; });
  if (it == entries_.end()) entries_.emplace_back(std::move(repo_id), thrower);
}

void UserExceptionRegistry::raise(const std::string& repo_id,
                                  const std::string& detail) const {
  for (const auto& [id, thrower] : entries_) {
    if (id == repo_id) thrower(detail);
  }
  throw UnknownUserException(repo_id, detail);
}

FrameBuilder::FrameBuilder(MessageType type, std::vector<std::byte>&& recycled,
                           ByteOrder order)
    : type_(type), stream_(std::move(recycled), order) {
  static constexpr std::array<std::byte, MessageHeader::kEncodedSize>
      kPlaceholder{};
  stream_.write_raw(kPlaceholder);
  stream_.rebase_alignment();
}

std::vector<std::byte> FrameBuilder::finish() {
  MessageHeader header;
  header.type = type_;
  header.byte_order = stream_.byte_order();
  if (stream_.size() > UINT32_MAX) throw MARSHAL("message body too large");
  header.body_length = static_cast<std::uint32_t>(stream_.size());
  const auto head = header.encode();
  std::vector<std::byte> frame = stream_.take_buffer();
  std::memcpy(frame.data(), head.data(), head.size());
  return frame;
}

std::vector<std::byte> encode_frame(MessageType type,
                                    const CdrOutputStream& body) {
  MessageHeader header;
  header.type = type;
  header.byte_order = body.byte_order();
  if (body.size() > UINT32_MAX) throw MARSHAL("message body too large");
  header.body_length = static_cast<std::uint32_t>(body.size());
  const auto head = header.encode();
  std::vector<std::byte> frame;
  frame.reserve(head.size() + body.size());
  frame.insert(frame.end(), head.begin(), head.end());
  frame.insert(frame.end(), body.buffer().begin(), body.buffer().end());
  return frame;
}

}  // namespace corba
