#include "orb/dii.hpp"

#include "obs/trace.hpp"
#include "orb/exceptions.hpp"

namespace corba {

Request::Request(ObjectRef target, std::string operation)
    : target_(std::move(target)), operation_(std::move(operation)) {}

Request& Request::add_argument(Value v) {
  if (state_ != State::idle)
    throw BAD_INV_ORDER("add_argument after send", minor_code::unspecified,
                        CompletionStatus::completed_no);
  arguments_.push_back(std::move(v));
  return *this;
}

void Request::invoke() {
  // The DII span wraps send + response so the underlying rpc.send /
  // transport spans parent under one dynamic invocation.
  obs::Span span("rpc.dii", operation_);
  send_deferred();
  get_response();
}

void Request::send_deferred() {
  if (state_ != State::idle)
    throw BAD_INV_ORDER("request already sent", minor_code::unspecified,
                        CompletionStatus::completed_no);
  pending_ = target_.send(operation_, arguments_);
  state_ = State::sent;
}

bool Request::poll_response() {
  if (state_ == State::completed) return true;
  if (state_ != State::sent)
    throw BAD_INV_ORDER("poll_response before send_deferred",
                        minor_code::unspecified,
                        CompletionStatus::completed_no);
  return pending_->ready();
}

void Request::get_response() {
  if (state_ == State::completed) return;
  if (state_ != State::sent)
    throw BAD_INV_ORDER("get_response before send_deferred",
                        minor_code::unspecified,
                        CompletionStatus::completed_no);
  std::unique_ptr<PendingReply> pending = std::move(pending_);
  // Transport errors and carried exceptions both propagate; the request
  // drops back to idle so a fault-tolerant caller may reset and re-send.
  state_ = State::idle;
  ReplyMessage reply = pending->get();
  result_ = reply.result_or_throw();
  state_ = State::completed;
}

const Value& Request::return_value() const {
  if (state_ != State::completed)
    throw BAD_INV_ORDER("return_value before completion",
                        minor_code::unspecified,
                        CompletionStatus::completed_no);
  return result_;
}

void Request::reset() {
  pending_.reset();
  result_ = Value();
  state_ = State::idle;
}

void Request::set_target(ObjectRef target) {
  if (state_ == State::sent)
    throw BAD_INV_ORDER("set_target while request in flight",
                        minor_code::unspecified,
                        CompletionStatus::completed_no);
  target_ = std::move(target);
}

}  // namespace corba
