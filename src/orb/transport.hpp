// Client transport abstraction and the in-process transport.
//
// A ClientTransport delivers a RequestMessage to the adapter named by an IOR
// and produces a PendingReply.  The split into send()/PendingReply is what
// makes CORBA's deferred-synchronous DII possible: send() never blocks on
// the reply, and get() completes it.  Three transports implement this
// interface: the in-process transport below, the TCP transport
// (tcp_transport.hpp) and the simulator transport (sim/sim_transport.hpp),
// which adds virtual time, load and failures.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "orb/ior.hpp"
#include "orb/message.hpp"
#include "orb/object_adapter.hpp"

namespace corba {

/// Handle to an in-flight request.
class PendingReply {
 public:
  virtual ~PendingReply() = default;

  /// Non-blocking: true once get() will not block.
  virtual bool ready() = 0;

  /// Waits for and returns the reply.  Throws transport-level system
  /// exceptions (COMM_FAILURE etc.); exceptions raised by the *server* are
  /// carried inside the ReplyMessage instead.  Call at most once.
  virtual ReplyMessage get() = 0;
};

/// Delivers requests addressed by IORs.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Starts the invocation; never blocks on the reply.
  virtual std::unique_ptr<PendingReply> send(const IOR& target,
                                             RequestMessage request) = 0;

  /// Synchronous round trip; default implementation completes send().
  virtual ReplyMessage invoke(const IOR& target, RequestMessage request);
};

/// A PendingReply that is complete on construction.
class ImmediateReply final : public PendingReply {
 public:
  explicit ImmediateReply(ReplyMessage reply) : reply_(std::move(reply)) {}
  bool ready() override { return true; }
  ReplyMessage get() override { return std::move(reply_); }

 private:
  ReplyMessage reply_;
};

/// A PendingReply that throws a stored system exception from get().
class FailedReply final : public PendingReply {
 public:
  explicit FailedReply(std::exception_ptr error) : error_(std::move(error)) {}
  bool ready() override { return true; }
  [[noreturn]] ReplyMessage get() override { std::rethrow_exception(error_); }

 private:
  std::exception_ptr error_;
};

/// Registry of in-process endpoints.  Every ORB participating in the same
/// "virtual network" shares one instance; the endpoint name in an inproc IOR
/// selects the target adapter.  Adapters are held weakly so a shut-down ORB
/// simply disappears from the network (clients then see COMM_FAILURE, the
/// same observable behaviour as a crashed remote process).
class InProcessNetwork {
 public:
  void bind(const std::string& endpoint, std::weak_ptr<ObjectAdapter> adapter);
  void unbind(const std::string& endpoint);

  /// Returns the adapter or nullptr when the endpoint is unknown or gone.
  std::shared_ptr<ObjectAdapter> find(const std::string& endpoint) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<ObjectAdapter>> endpoints_;
};

/// Transport delivering requests through an InProcessNetwork.  Requests and
/// replies are round-tripped through their CDR encoding so the marshaling
/// path is exercised identically to a socket transport.
class InProcessTransport final : public ClientTransport {
 public:
  explicit InProcessTransport(std::shared_ptr<InProcessNetwork> network);

  std::unique_ptr<PendingReply> send(const IOR& target,
                                     RequestMessage request) override;

 private:
  std::shared_ptr<InProcessNetwork> network_;
};

/// Encodes and re-decodes a request as the wire would.  Shared by the
/// in-process and simulator transports.
RequestMessage roundtrip_through_cdr(const RequestMessage& request);
ReplyMessage roundtrip_through_cdr(const ReplyMessage& reply);

}  // namespace corba
