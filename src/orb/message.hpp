// GIOP-lite message layer.
//
// CORBA's General Inter-ORB Protocol frames requests and replies with a
// fixed header (magic, version, byte-order flag, message type, body length)
// followed by a CDR body.  This module implements the same structure with a
// reduced message set: Request, Reply, CloseConnection and MessageError.
// Replies carry one of three statuses exactly like GIOP: NO_EXCEPTION,
// USER_EXCEPTION or SYSTEM_EXCEPTION.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "orb/cdr.hpp"
#include "orb/exceptions.hpp"
#include "orb/ior.hpp"
#include "orb/value.hpp"

namespace corba {

enum class MessageType : std::uint8_t {
  request = 0,
  reply = 1,
  close_connection = 2,
  message_error = 3,
  /// Resumable-session handshake (client -> server, first frame on a
  /// connection when sessions are enabled).
  session_hello = 4,
  /// Handshake answer (server -> client).
  session_accept = 5,
};

/// Fixed 12-byte message header (wire layout mirrors GIOP 1.0).
struct MessageHeader {
  static constexpr std::array<char, 4> kMagic = {'M', 'O', 'R', 'B'};
  static constexpr std::uint8_t kVersionMajor = 1;
  static constexpr std::uint8_t kVersionMinor = 0;
  static constexpr std::size_t kEncodedSize = 12;

  MessageType type = MessageType::request;
  ByteOrder byte_order = native_byte_order();
  std::uint32_t body_length = 0;

  /// Encodes into exactly kEncodedSize bytes.
  std::array<std::byte, kEncodedSize> encode() const;
  /// Throws MARSHAL on bad magic/version.
  static MessageHeader decode(std::span<const std::byte> bytes);
};

/// Out-of-band per-request metadata, mirroring GIOP's service contexts: a
/// numeric slot id plus an opaque CDR-encoded payload.  Receivers skip slots
/// they do not understand, so new slots are forward compatible.
struct ServiceContext {
  std::uint32_t id = 0;
  std::vector<std::byte> data;
};

/// Service-context slot carrying an obs::TraceContext (three u64: trace id,
/// span id, parent span id, always little-endian regardless of the carrying
/// message's byte order).
inline constexpr std::uint32_t kTraceContextSlot = 1;

/// Service-context slot carrying a SessionContext (two u64: session sequence
/// number of this request, cumulative ack of received replies; always
/// little-endian like the trace slot).
inline constexpr std::uint32_t kSessionContextSlot = 2;

/// Per-request session metadata piggybacked on normal traffic: `seq` orders
/// this request within its session, `ack` acknowledges every reply with a
/// session sequence number <= ack (cumulative), letting the server evict
/// those frames from its retransmit buffer.
struct SessionContext {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
};

/// First frame a session-enabled client sends on a (re)connected socket.
/// session_id == 0 asks for a fresh session; a nonzero id resumes an
/// existing one, and highest_reply_seq tells the server which buffered
/// replies the client already has (the rest are replayed).
struct SessionHello {
  std::uint64_t session_id = 0;
  std::uint64_t highest_reply_seq = 0;

  void encode_body(CdrOutputStream& out) const;
  static SessionHello decode_body(CdrInputStream& in);
};

/// Server's handshake answer.  ok == false rejects a stale/unknown session
/// (the client falls back to the batched-failure path); on success
/// highest_request_seq tells the client which buffered requests the server
/// already received, so only the missing tail is retransmitted.
struct SessionAccept {
  bool ok = true;
  std::uint64_t session_id = 0;
  std::uint64_t highest_request_seq = 0;

  void encode_body(CdrOutputStream& out) const;
  static SessionAccept decode_body(CdrInputStream& in);
};

/// An invocation request: target object key + operation + tagged arguments.
struct RequestMessage {
  std::uint64_t request_id = 0;
  ObjectKey object_key;
  std::string operation;
  ValueSeq arguments;
  /// When false the client does not expect a reply (CORBA "oneway").
  bool response_expected = true;
  /// Optional out-of-band slots.  Encoded tail-optionally: an empty list
  /// contributes zero wire bytes (the pre-slot encoding), so enabling
  /// tracing is the only thing that changes a message's size.
  std::vector<ServiceContext> service_contexts;

  void encode_body(CdrOutputStream& out) const;
  static RequestMessage decode_body(CdrInputStream& in);

  /// Rough wire size, used by the simulator's network model.
  std::size_t encoded_size_estimate() const noexcept;
};

/// Appends `context` to the request's service contexts under
/// kTraceContextSlot (replacing any slot already there).
void attach_trace_context(RequestMessage& request,
                          const obs::TraceContext& context);

/// Decodes the kTraceContextSlot payload, if present and well-formed.
std::optional<obs::TraceContext> extract_trace_context(
    const RequestMessage& request);

/// Appends `context` to the request's service contexts under
/// kSessionContextSlot (replacing any slot already there).
void attach_session_context(RequestMessage& request,
                            const SessionContext& context);

/// Decodes the kSessionContextSlot payload, if present and well-formed.
std::optional<SessionContext> extract_session_context(
    const RequestMessage& request);

enum class ReplyStatus : std::uint8_t {
  no_exception = 0,
  user_exception = 1,
  system_exception = 2,
};

/// Reply to a request: a result value or an exception description.
struct ReplyMessage {
  std::uint64_t request_id = 0;
  ReplyStatus status = ReplyStatus::no_exception;
  Value result;               ///< valid when status == no_exception
  std::string exception_id;   ///< repository id for exceptions
  std::string exception_detail;
  std::uint32_t exception_minor = 0;
  CompletionStatus completion = CompletionStatus::completed_yes;
  /// Tail-optional session fields (resumable sessions): when has_session is
  /// false nothing extra is written, so session-free replies stay
  /// byte-identical to the pre-session wire format.  session_seq orders this
  /// reply within the session; session_ack cumulatively acknowledges every
  /// request with seq <= session_ack.
  bool has_session = false;
  std::uint64_t session_seq = 0;
  std::uint64_t session_ack = 0;

  void encode_body(CdrOutputStream& out) const;
  static ReplyMessage decode_body(CdrInputStream& in);

  std::size_t encoded_size_estimate() const noexcept;

  /// Returns the result, or throws the carried exception (system exceptions
  /// are rethrown as their concrete type; user exceptions go through the
  /// UserExceptionRegistry).
  Value result_or_throw() const;

  static ReplyMessage make_result(std::uint64_t request_id, Value result);
  static ReplyMessage make_system_exception(std::uint64_t request_id,
                                            const SystemException& e);
  static ReplyMessage make_user_exception(std::uint64_t request_id,
                                          const UserException& e);
};

/// Registry mapping user-exception repository ids to throw functions so that
/// stubs can rethrow the concrete exception type declared by an interface.
/// Interfaces register their exceptions at static-init time via
/// RegisterUserException<E>.
class UserExceptionRegistry {
 public:
  using Thrower = void (*)(const std::string& detail);

  static UserExceptionRegistry& instance();

  void register_exception(std::string repo_id, Thrower thrower);
  /// Throws the registered exception, or UnknownUserException.
  [[noreturn]] void raise(const std::string& repo_id,
                          const std::string& detail) const;

 private:
  UserExceptionRegistry() = default;
  std::vector<std::pair<std::string, Thrower>> entries_;
};

/// Registers exception type E (constructible from a detail string) for id
/// E::static_repo_id().  Instantiate as a namespace-scope object.
template <typename E>
struct RegisterUserException {
  RegisterUserException() {
    UserExceptionRegistry::instance().register_exception(
        std::string(E::static_repo_id()),
        +[](const std::string& detail) -> void { throw E(detail); });
  }
};

/// Serializes header + body into one buffer (TCP transport).
std::vector<std::byte> encode_frame(MessageType type,
                                    const CdrOutputStream& body);

/// Zero-copy frame assembly: the header placeholder is written first into a
/// (possibly recycled) buffer, CDR alignment is rebased so the body encodes
/// exactly as a standalone stream would, and finish() patches the header in
/// place — the body is never copied, unlike encode_frame().  Call
/// `body().reserve(estimate)` before encoding to avoid regrowth.
class FrameBuilder {
 public:
  explicit FrameBuilder(MessageType type,
                        std::vector<std::byte>&& recycled = {},
                        ByteOrder order = native_byte_order());

  CdrOutputStream& body() noexcept { return stream_; }

  /// Patches the header and surrenders the finished frame; the builder is
  /// spent afterwards.
  std::vector<std::byte> finish();

 private:
  MessageType type_;
  CdrOutputStream stream_;
};

}  // namespace corba
