// GIOP-lite message layer.
//
// CORBA's General Inter-ORB Protocol frames requests and replies with a
// fixed header (magic, version, byte-order flag, message type, body length)
// followed by a CDR body.  This module implements the same structure with a
// reduced message set: Request, Reply, CloseConnection and MessageError.
// Replies carry one of three statuses exactly like GIOP: NO_EXCEPTION,
// USER_EXCEPTION or SYSTEM_EXCEPTION.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "orb/cdr.hpp"
#include "orb/exceptions.hpp"
#include "orb/ior.hpp"
#include "orb/value.hpp"

namespace corba {

enum class MessageType : std::uint8_t {
  request = 0,
  reply = 1,
  close_connection = 2,
  message_error = 3,
};

/// Fixed 12-byte message header (wire layout mirrors GIOP 1.0).
struct MessageHeader {
  static constexpr std::array<char, 4> kMagic = {'M', 'O', 'R', 'B'};
  static constexpr std::uint8_t kVersionMajor = 1;
  static constexpr std::uint8_t kVersionMinor = 0;
  static constexpr std::size_t kEncodedSize = 12;

  MessageType type = MessageType::request;
  ByteOrder byte_order = native_byte_order();
  std::uint32_t body_length = 0;

  /// Encodes into exactly kEncodedSize bytes.
  std::array<std::byte, kEncodedSize> encode() const;
  /// Throws MARSHAL on bad magic/version.
  static MessageHeader decode(std::span<const std::byte> bytes);
};

/// Out-of-band per-request metadata, mirroring GIOP's service contexts: a
/// numeric slot id plus an opaque CDR-encoded payload.  Receivers skip slots
/// they do not understand, so new slots are forward compatible.
struct ServiceContext {
  std::uint32_t id = 0;
  std::vector<std::byte> data;
};

/// Service-context slot carrying an obs::TraceContext (three u64: trace id,
/// span id, parent span id, always little-endian regardless of the carrying
/// message's byte order).
inline constexpr std::uint32_t kTraceContextSlot = 1;

/// An invocation request: target object key + operation + tagged arguments.
struct RequestMessage {
  std::uint64_t request_id = 0;
  ObjectKey object_key;
  std::string operation;
  ValueSeq arguments;
  /// When false the client does not expect a reply (CORBA "oneway").
  bool response_expected = true;
  /// Optional out-of-band slots.  Encoded tail-optionally: an empty list
  /// contributes zero wire bytes (the pre-slot encoding), so enabling
  /// tracing is the only thing that changes a message's size.
  std::vector<ServiceContext> service_contexts;

  void encode_body(CdrOutputStream& out) const;
  static RequestMessage decode_body(CdrInputStream& in);

  /// Rough wire size, used by the simulator's network model.
  std::size_t encoded_size_estimate() const noexcept;
};

/// Appends `context` to the request's service contexts under
/// kTraceContextSlot (replacing any slot already there).
void attach_trace_context(RequestMessage& request,
                          const obs::TraceContext& context);

/// Decodes the kTraceContextSlot payload, if present and well-formed.
std::optional<obs::TraceContext> extract_trace_context(
    const RequestMessage& request);

enum class ReplyStatus : std::uint8_t {
  no_exception = 0,
  user_exception = 1,
  system_exception = 2,
};

/// Reply to a request: a result value or an exception description.
struct ReplyMessage {
  std::uint64_t request_id = 0;
  ReplyStatus status = ReplyStatus::no_exception;
  Value result;               ///< valid when status == no_exception
  std::string exception_id;   ///< repository id for exceptions
  std::string exception_detail;
  std::uint32_t exception_minor = 0;
  CompletionStatus completion = CompletionStatus::completed_yes;

  void encode_body(CdrOutputStream& out) const;
  static ReplyMessage decode_body(CdrInputStream& in);

  std::size_t encoded_size_estimate() const noexcept;

  /// Returns the result, or throws the carried exception (system exceptions
  /// are rethrown as their concrete type; user exceptions go through the
  /// UserExceptionRegistry).
  Value result_or_throw() const;

  static ReplyMessage make_result(std::uint64_t request_id, Value result);
  static ReplyMessage make_system_exception(std::uint64_t request_id,
                                            const SystemException& e);
  static ReplyMessage make_user_exception(std::uint64_t request_id,
                                          const UserException& e);
};

/// Registry mapping user-exception repository ids to throw functions so that
/// stubs can rethrow the concrete exception type declared by an interface.
/// Interfaces register their exceptions at static-init time via
/// RegisterUserException<E>.
class UserExceptionRegistry {
 public:
  using Thrower = void (*)(const std::string& detail);

  static UserExceptionRegistry& instance();

  void register_exception(std::string repo_id, Thrower thrower);
  /// Throws the registered exception, or UnknownUserException.
  [[noreturn]] void raise(const std::string& repo_id,
                          const std::string& detail) const;

 private:
  UserExceptionRegistry() = default;
  std::vector<std::pair<std::string, Thrower>> entries_;
};

/// Registers exception type E (constructible from a detail string) for id
/// E::static_repo_id().  Instantiate as a namespace-scope object.
template <typename E>
struct RegisterUserException {
  RegisterUserException() {
    UserExceptionRegistry::instance().register_exception(
        std::string(E::static_repo_id()),
        +[](const std::string& detail) -> void { throw E(detail); });
  }
};

/// Serializes header + body into one buffer (TCP transport).
std::vector<std::byte> encode_frame(MessageType type,
                                    const CdrOutputStream& body);

/// Zero-copy frame assembly: the header placeholder is written first into a
/// (possibly recycled) buffer, CDR alignment is rebased so the body encodes
/// exactly as a standalone stream would, and finish() patches the header in
/// place — the body is never copied, unlike encode_frame().  Call
/// `body().reserve(estimate)` before encoding to avoid regrowth.
class FrameBuilder {
 public:
  explicit FrameBuilder(MessageType type,
                        std::vector<std::byte>&& recycled = {},
                        ByteOrder order = native_byte_order());

  CdrOutputStream& body() noexcept { return stream_; }

  /// Patches the header and surrenders the finished frame; the builder is
  /// spent afterwards.
  std::vector<std::byte> finish();

 private:
  MessageType type_;
  CdrOutputStream stream_;
};

}  // namespace corba
