// Interoperable Object References.
//
// An IOR names one CORBA object: the repository id of its most-derived
// interface plus a transport profile (protocol, address, object key).  Like
// real CORBA, references can be stringified into an opaque "IOR:<hex>" form
// (hex-encoded CDR) that survives being passed through files, command lines
// or other ORBs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "orb/cdr.hpp"

namespace corba {

/// Opaque per-adapter identifier of an object.
struct ObjectKey {
  std::vector<std::byte> bytes;

  friend auto operator<=>(const ObjectKey&, const ObjectKey&) = default;

  /// Human-readable rendering (keys are generated as printable strings).
  std::string to_string() const;
  static ObjectKey from_string(std::string_view s);
  bool empty() const noexcept { return bytes.empty(); }
};

struct ObjectKeyHash {
  std::size_t operator()(const ObjectKey& k) const noexcept;
};

/// Transport protocols understood by this ORB.
namespace protocol {
/// In-process endpoint registry (used by the simulated cluster).
inline constexpr std::string_view inproc = "inproc";
/// TCP sockets (GIOP-lite framing).
inline constexpr std::string_view tcp = "tcp";
}  // namespace protocol

/// Interoperable object reference.  `host` is the endpoint name for inproc
/// profiles and an IP/hostname for tcp profiles.
struct IOR {
  std::string type_id;  ///< repository id, e.g. "IDL:corbaft/OptWorker:1.0"
  std::string protocol;
  std::string host;
  std::uint16_t port = 0;
  ObjectKey key;

  friend bool operator==(const IOR&, const IOR&) = default;

  bool is_nil() const noexcept { return protocol.empty() && key.empty(); }

  void encode(CdrOutputStream& out) const;
  static IOR decode(CdrInputStream& in);

  /// "IOR:<hex of CDR encoding>"; throws INV_OBJREF on parse failure.
  std::string to_string() const;
  static IOR from_string(std::string_view s);

  /// Short human-readable form for logs: "protocol://host:port/key".
  std::string to_display_string() const;
};

}  // namespace corba
