#include "orb/cdr.hpp"

#include <bit>

namespace corba {

namespace {

template <typename T>
T byteswap_integral(T v) noexcept {
  static_assert(std::is_integral_v<T>);
  if constexpr (sizeof(T) == 1) {
    return v;
  } else if constexpr (sizeof(T) == 2) {
    return static_cast<T>(__builtin_bswap16(static_cast<std::uint16_t>(v)));
  } else if constexpr (sizeof(T) == 4) {
    return static_cast<T>(__builtin_bswap32(static_cast<std::uint32_t>(v)));
  } else {
    return static_cast<T>(__builtin_bswap64(static_cast<std::uint64_t>(v)));
  }
}

}  // namespace

ByteOrder native_byte_order() noexcept {
  return std::endian::native == std::endian::little ? ByteOrder::little_endian
                                                    : ByteOrder::big_endian;
}

CdrOutputStream::CdrOutputStream(ByteOrder order) : order_(order) {
  buffer_.reserve(128);
}

CdrOutputStream::CdrOutputStream(std::vector<std::byte>&& recycled,
                                 ByteOrder order)
    : buffer_(std::move(recycled)), order_(order) {
  buffer_.clear();
}

void CdrOutputStream::align(std::size_t alignment) {
  const std::size_t misalign = (buffer_.size() - origin_) % alignment;
  if (misalign != 0) buffer_.resize(buffer_.size() + (alignment - misalign));
}

template <typename T>
void CdrOutputStream::write_scalar(T v) {
  align(sizeof(T));
  if constexpr (std::is_floating_point_v<T>) {
    using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
    Bits bits;
    std::memcpy(&bits, &v, sizeof(T));
    if (order_ != native_byte_order()) bits = byteswap_integral(bits);
    const std::size_t off = buffer_.size();
    buffer_.resize(off + sizeof(T));
    std::memcpy(buffer_.data() + off, &bits, sizeof(T));
  } else {
    if (order_ != native_byte_order()) v = byteswap_integral(v);
    const std::size_t off = buffer_.size();
    buffer_.resize(off + sizeof(T));
    std::memcpy(buffer_.data() + off, &v, sizeof(T));
  }
}

void CdrOutputStream::write_octet(std::uint8_t v) { write_scalar(v); }
void CdrOutputStream::write_bool(bool v) {
  write_octet(v ? std::uint8_t{1} : std::uint8_t{0});
}
void CdrOutputStream::write_u16(std::uint16_t v) { write_scalar(v); }
void CdrOutputStream::write_u32(std::uint32_t v) { write_scalar(v); }
void CdrOutputStream::write_u64(std::uint64_t v) { write_scalar(v); }
void CdrOutputStream::write_i16(std::int16_t v) { write_scalar(v); }
void CdrOutputStream::write_i32(std::int32_t v) { write_scalar(v); }
void CdrOutputStream::write_i64(std::int64_t v) { write_scalar(v); }
void CdrOutputStream::write_f32(float v) { write_scalar(v); }
void CdrOutputStream::write_f64(double v) { write_scalar(v); }

void CdrOutputStream::write_string(std::string_view v) {
  if (v.size() >= UINT32_MAX)
    throw MARSHAL("string too long", minor_code::unspecified,
                  CompletionStatus::completed_no);
  write_u32(static_cast<std::uint32_t>(v.size() + 1));
  const std::size_t off = buffer_.size();
  buffer_.resize(off + v.size() + 1);
  if (!v.empty()) std::memcpy(buffer_.data() + off, v.data(), v.size());
  buffer_[off + v.size()] = std::byte{0};
}

void CdrOutputStream::write_blob(std::span<const std::byte> v) {
  if (v.size() >= UINT32_MAX)
    throw MARSHAL("blob too long", minor_code::unspecified,
                  CompletionStatus::completed_no);
  write_u32(static_cast<std::uint32_t>(v.size()));
  write_raw(v);
}

void CdrOutputStream::write_blob(std::span<const std::uint8_t> v) {
  write_blob(std::as_bytes(v));
}

void CdrOutputStream::write_f64_seq(std::span<const double> v) {
  if (v.size() >= UINT32_MAX)
    throw MARSHAL("sequence too long", minor_code::unspecified,
                  CompletionStatus::completed_no);
  write_u32(static_cast<std::uint32_t>(v.size()));
  if (v.empty()) return;
  align(8);
  if (order_ == native_byte_order()) {
    write_raw(std::as_bytes(v));
  } else {
    for (double d : v) write_f64(d);
  }
}

void CdrOutputStream::write_raw(std::span<const std::byte> v) {
  if (v.empty()) return;  // an empty span's data() may be null (UB in memcpy)
  const std::size_t off = buffer_.size();
  buffer_.resize(off + v.size());
  std::memcpy(buffer_.data() + off, v.data(), v.size());
}

CdrInputStream::CdrInputStream(std::span<const std::byte> data, ByteOrder order)
    : data_(data), order_(order) {}

void CdrInputStream::require(std::size_t n) const {
  if (remaining() < n)
    throw MARSHAL("truncated CDR buffer", minor_code::unspecified,
                  CompletionStatus::completed_maybe);
}

void CdrInputStream::align(std::size_t alignment) {
  const std::size_t misalign = pos_ % alignment;
  if (misalign != 0) {
    require(alignment - misalign);
    pos_ += alignment - misalign;
  }
}

template <typename T>
T CdrInputStream::read_scalar() {
  align(sizeof(T));
  require(sizeof(T));
  if constexpr (std::is_floating_point_v<T>) {
    using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
    Bits bits;
    std::memcpy(&bits, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if (order_ != native_byte_order()) bits = byteswap_integral(bits);
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  } else {
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if (order_ != native_byte_order()) v = byteswap_integral(v);
    return v;
  }
}

std::uint8_t CdrInputStream::read_octet() { return read_scalar<std::uint8_t>(); }
bool CdrInputStream::read_bool() { return read_octet() != 0; }
std::uint16_t CdrInputStream::read_u16() { return read_scalar<std::uint16_t>(); }
std::uint32_t CdrInputStream::read_u32() { return read_scalar<std::uint32_t>(); }
std::uint64_t CdrInputStream::read_u64() { return read_scalar<std::uint64_t>(); }
std::int16_t CdrInputStream::read_i16() { return read_scalar<std::int16_t>(); }
std::int32_t CdrInputStream::read_i32() { return read_scalar<std::int32_t>(); }
std::int64_t CdrInputStream::read_i64() { return read_scalar<std::int64_t>(); }
float CdrInputStream::read_f32() { return read_scalar<float>(); }
double CdrInputStream::read_f64() { return read_scalar<double>(); }

std::string CdrInputStream::read_string() {
  const std::uint32_t len = read_u32();
  if (len == 0)
    throw MARSHAL("CDR string with zero length", minor_code::unspecified,
                  CompletionStatus::completed_maybe);
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
  if (data_[pos_ + len - 1] != std::byte{0})
    throw MARSHAL("CDR string missing NUL terminator", minor_code::unspecified,
                  CompletionStatus::completed_maybe);
  pos_ += len;
  return s;
}

std::vector<std::byte> CdrInputStream::read_blob() {
  const std::uint32_t len = read_u32();
  require(len);
  std::vector<std::byte> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                           data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return v;
}

std::vector<double> CdrInputStream::read_f64_seq() {
  const std::uint32_t count = read_u32();
  std::vector<double> v;
  if (count == 0) return v;
  align(8);
  require(static_cast<std::size_t>(count) * sizeof(double));
  v.resize(count);
  if (order_ == native_byte_order()) {
    std::memcpy(v.data(), data_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
  } else {
    for (auto& d : v) d = read_f64();
  }
  return v;
}

std::span<const std::byte> CdrInputStream::read_blob_view() {
  const std::uint32_t len = read_u32();
  return read_raw(len);
}

std::span<const double> CdrInputStream::read_f64_view(
    std::vector<double>& scratch) {
  const std::uint32_t count = read_u32();
  if (count == 0) return {};
  align(8);
  require(static_cast<std::size_t>(count) * sizeof(double));
  const std::byte* payload = data_.data() + pos_;
  if (order_ == native_byte_order() &&
      reinterpret_cast<std::uintptr_t>(payload) % alignof(double) == 0) {
    pos_ += count * sizeof(double);
    return {reinterpret_cast<const double*>(payload), count};
  }
  scratch.resize(count);
  if (order_ == native_byte_order()) {
    std::memcpy(scratch.data(), payload, count * sizeof(double));
    pos_ += count * sizeof(double);
  } else {
    for (auto& d : scratch) d = read_f64();
  }
  return {scratch.data(), scratch.size()};
}

std::span<const std::byte> CdrInputStream::read_raw(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace corba
