#include "orb/server_conn.hpp"

#include <sys/resource.h>

#include <mutex>
#include <string>

#include "orb/log.hpp"

namespace corba {
namespace server_detail {

void write_session_reply(const std::shared_ptr<ServerSession>& session,
                         const std::shared_ptr<ServerConn>& fallback,
                         ReplyMessage reply) noexcept {
  try {
    // Lock order: session->mu, then the connection's write mutex (inside
    // send_frame_bytes).
    std::lock_guard slock(session->mu);
    reply.has_session = true;
    reply.session_seq = session->next_reply_seq++;
    reply.session_ack = session->highest_request_seq;
    CdrOutputStream body;
    reply.encode_body(body);
    std::vector<std::byte> frame = encode_frame(MessageType::reply, body);
    // Buffer before writing: a write failure (or a dead connection) leaves
    // the frame for the next resume's replay instead of losing the reply.
    if (session->replies.full()) {
      session->replies.evict_oldest();
      session->gapped = true;  // replay can no longer cover the hole
    }
    session->replies.append(reply.session_seq, reply.request_id, frame);
    auto connection =
        std::static_pointer_cast<ServerConn>(session->carrier.lock());
    if (!connection) connection = fallback;
    if (!connection || connection->is_dead())
      return;  // buffered; the replay will deliver it
    connection->send_frame_bytes(std::move(frame));
  } catch (...) {
    // Encoding failed: nothing sensible to do from a completion thread.
  }
}

std::shared_ptr<ServerSession> handle_session_hello(
    SessionTable& table, const SessionHello& hello,
    const std::shared_ptr<ServerConn>& connection) {
  std::shared_ptr<ServerSession> session =
      hello.session_id == 0 ? table.create() : table.find(hello.session_id);
  SessionAccept accept;
  accept.ok = false;
  std::size_t replayed = 0;
  if (session) {
    std::lock_guard slock(session->mu);
    if (session->gapped) {
      session.reset();  // reply buffer has a hole: resume is unsafe
    } else {
      accept.ok = true;
      accept.session_id = session->id;
      accept.highest_request_seq = session->highest_request_seq;
      // The carrier is stored as a type-erased ServerConn so completions in
      // either receive mode route replies to the session's live socket.
      session->carrier = std::static_pointer_cast<void>(connection);
      session->replies.ack(hello.highest_reply_seq);
      // Write accept + replay while still holding session->mu so a
      // completing dispatch cannot interleave a new reply before the
      // replayed ones.
      CdrOutputStream accept_body;
      accept.encode_body(accept_body);
      connection->send_frame_bytes(
          encode_frame(MessageType::session_accept, accept_body));
      for (const SessionFrame* frame :
           session->replies.after(hello.highest_reply_seq)) {
        connection->send_frame_bytes(frame->bytes);
        ++replayed;
      }
    }
  }
  if (!accept.ok) {
    // Unknown/stale session (restart, table cull) or a gapped reply buffer:
    // an exactly-once resume is impossible — reject and let the client fall
    // back to the batched-failure path.
    CdrOutputStream accept_body;
    accept.encode_body(accept_body);
    connection->send_frame_bytes(
        encode_frame(MessageType::session_accept, accept_body));
  }
  if (replayed > 0) session_metrics().replayed_replies.inc(replayed);
  return session;
}

bool note_session_request(const std::shared_ptr<ServerSession>& session,
                          const RequestMessage& request) {
  const auto ctx = extract_session_context(request);
  if (!ctx) return true;
  std::lock_guard slock(session->mu);
  session->replies.ack(ctx->ack);  // piggybacked cumulative ack
  if (ctx->seq <= session->highest_request_seq) {
    // Replayed duplicate: the request already executed (or still is).  Its
    // reply reaches the client through the session's reply buffer — the
    // hello replay carried it, or the in-flight completion will land on the
    // resumed connection — so the duplicate is suppressed, never
    // re-executed.
    session_metrics().duplicates_suppressed.inc();
    return false;
  }
  session->highest_request_seq = ctx->seq;
  return true;
}

}  // namespace server_detail

std::size_t raise_nofile_soft_limit(std::size_t want) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  const rlim_t target =
      limit.rlim_max == RLIM_INFINITY
          ? static_cast<rlim_t>(want)
          : std::min<rlim_t>(static_cast<rlim_t>(want), limit.rlim_max);
  if (limit.rlim_cur < target) {
    rlimit raised = limit;
    raised.rlim_cur = target;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  const auto result = static_cast<std::size_t>(
      limit.rlim_cur == RLIM_INFINITY ? want : limit.rlim_cur);
  if (result < want && log::enabled())
    log::emit(log::Level::warning, "transport",
              "RLIMIT_NOFILE soft limit " + std::to_string(result) +
                  " is below the requested " + std::to_string(want) +
                  "; connection-heavy workloads may hit EMFILE");
  return result;
}

}  // namespace corba
