// Resumable-session bookkeeping shared by the TCP client and server.
//
// A session outlives the TCP connection that carries it: each side keeps a
// bounded retransmit buffer of the frames it has sent but the peer has not
// yet acknowledged (acks piggyback on normal traffic and are cumulative).
// When a connection drops, the client reconnects to the *same* endpoint with
// its session id, the two sides exchange highest-received sequence numbers,
// and only the missing tail of frames is replayed — in-flight calls then
// complete exactly-once without waking the fault-tolerance layer.  The
// buffers here are deliberately lock-free of their own: the owner serializes
// access (TcpConnection's mutexes on the client, the per-session mutex on
// the server).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"

namespace corba {

/// Session-layer counters and gauges (shared by the real TCP transport and
/// the deterministic simulator mirror).
struct SessionMetrics {
  obs::Counter& resumes = obs::MetricsRegistry::global().counter(
      "transport.session.resumes_total");
  obs::Counter& resume_failures = obs::MetricsRegistry::global().counter(
      "transport.session.resume_failures_total");
  obs::Counter& retransmitted = obs::MetricsRegistry::global().counter(
      "transport.session.retransmitted_frames_total");
  obs::Counter& replayed_replies = obs::MetricsRegistry::global().counter(
      "transport.session.replayed_replies_total");
  obs::Counter& duplicates_suppressed = obs::MetricsRegistry::global().counter(
      "transport.session.duplicates_suppressed_total");
  obs::Counter& overflow_failures = obs::MetricsRegistry::global().counter(
      "transport.session.overflow_failures_total");
  obs::Gauge& active =
      obs::MetricsRegistry::global().gauge("transport.session.active");
  obs::Gauge& buffered_bytes = obs::MetricsRegistry::global().gauge(
      "transport.session.retransmit_buffer_bytes");
};

SessionMetrics& session_metrics();

/// One unacknowledged frame held for possible retransmission.  `bytes` is
/// the full encoded frame (header included) so replay is a raw write.
struct SessionFrame {
  std::uint64_t seq = 0;
  std::uint64_t request_id = 0;  ///< 0 for reply frames
  std::vector<std::byte> bytes;
};

/// Bounded deque of unacknowledged frames, evicted by cumulative ack.  Not
/// thread-safe — the owner serializes access.
class RetransmitBuffer {
 public:
  explicit RetransmitBuffer(std::size_t limit) : limit_(limit) {}
  ~RetransmitBuffer() { release_gauge(); }

  RetransmitBuffer(const RetransmitBuffer&) = delete;
  RetransmitBuffer& operator=(const RetransmitBuffer&) = delete;

  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }
  std::size_t limit() const noexcept { return limit_; }
  std::size_t bytes() const noexcept { return bytes_; }
  /// True when append() would exceed the hard cap.
  bool full() const noexcept { return frames_.size() >= limit_; }

  void append(std::uint64_t seq, std::uint64_t request_id,
              std::vector<std::byte> bytes);

  /// Cumulative ack: drops every frame with seq <= ack.  Returns how many
  /// frames were evicted.
  std::size_t ack(std::uint64_t ack_seq);

  /// Pops the oldest frame (the overflow victim).
  std::optional<SessionFrame> evict_oldest();

  /// Frames with seq > peer_highest, oldest first (the replay set after a
  /// resume handshake).  Pointers are valid until the next mutation.
  std::vector<const SessionFrame*> after(std::uint64_t peer_highest) const;

 private:
  void release_gauge() noexcept;

  std::deque<SessionFrame> frames_;
  std::size_t limit_;
  std::size_t bytes_ = 0;
};

/// Server-side session state, owned by the endpoint's SessionTable and
/// adopted by whichever connection last presented the session's hello.
struct ServerSession {
  explicit ServerSession(std::uint64_t session_id, std::size_t reply_limit)
      : id(session_id), replies(reply_limit) {}

  const std::uint64_t id;
  std::mutex mu;  ///< guards everything below
  /// Highest request seq received (cumulative: in-order per connection
  /// epoch, and replay restarts from here).
  std::uint64_t highest_request_seq = 0;
  std::uint64_t next_reply_seq = 1;
  RetransmitBuffer replies;
  /// True once an *unacknowledged* reply was evicted on overflow: the replay
  /// set has a hole, so a resume against this session must be rejected.
  bool gapped = false;
  /// The transport's current connection for this session (type-erased: the
  /// endpoint's Connection is private to the transport).  Updated on every
  /// hello, so completions route replies to the resumed socket.
  std::weak_ptr<void> carrier;
};

/// Endpoint-wide session registry.  Sessions survive connection loss; they
/// die with the endpoint (a restarted server therefore rejects old ids —
/// the stale-session path that falls back to batched failure).
class SessionTable {
 public:
  explicit SessionTable(std::size_t reply_limit, std::size_t max_sessions = 256)
      : reply_limit_(reply_limit), max_sessions_(max_sessions) {}

  std::shared_ptr<ServerSession> create();
  std::shared_ptr<ServerSession> find(std::uint64_t id) const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::size_t reply_limit_;
  std::size_t max_sessions_;
  /// Ordered by id == creation order, so cap eviction drops the oldest.
  std::map<std::uint64_t, std::shared_ptr<ServerSession>> sessions_;
};

}  // namespace corba
