// Dynamic Invocation Interface: request objects.
//
// The paper's manager/worker parallelism relies on CORBA's
// deferred-synchronous invocation model: "request objects offer methods to
// asynchronously initiate methods of the server object and fetch the
// corresponding results at a later time" (§3).  Request mirrors the
// CORBA::Request API: build arguments, invoke() synchronously or
// send_deferred(), then poll_response()/get_response().  The fault-tolerance
// layer wraps these in request proxies (ft/request_proxy.hpp), which need
// reset()/set_target() to re-issue a request against a recovered service.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "orb/orb.hpp"

namespace corba {

class Request {
 public:
  Request(ObjectRef target, std::string operation);

  Request(Request&&) = default;
  Request& operator=(Request&&) = default;

  const ObjectRef& target() const noexcept { return target_; }
  const std::string& operation() const noexcept { return operation_; }
  const ValueSeq& arguments() const noexcept { return arguments_; }

  /// Appends an argument.  Only valid before the request is sent.
  Request& add_argument(Value v);

  /// Synchronous execution; afterwards return_value() is available.
  /// Throws carried exceptions directly.
  void invoke();

  /// Starts the invocation without waiting.  BAD_INV_ORDER if already sent.
  void send_deferred();

  /// True once get_response() will not block.  BAD_INV_ORDER before send.
  bool poll_response();

  /// Completes the invocation: waits, then either stores the result or
  /// throws the carried exception.  Idempotent after completion.
  void get_response();

  /// Result of a completed invocation (BAD_INV_ORDER before completion).
  const Value& return_value() const;

  bool completed() const noexcept { return state_ == State::completed; }

  /// Re-arms the request for re-sending (clears any pending/completed
  /// state).  The argument list is preserved.
  void reset();

  /// Retargets the request (used after fault recovery re-resolves the
  /// service).  Only valid while not in flight.
  void set_target(ObjectRef target);

 private:
  enum class State { idle, sent, completed };

  ObjectRef target_;
  std::string operation_;
  ValueSeq arguments_;
  std::unique_ptr<PendingReply> pending_;
  Value result_;
  State state_ = State::idle;
};

}  // namespace corba
