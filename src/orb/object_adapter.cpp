#include "orb/object_adapter.hpp"

#include <atomic>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/exceptions.hpp"

namespace corba {

namespace {

std::uint64_t next_adapter_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

obs::Counter& dispatch_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("orb.dispatches_total");
  return counter;
}

// Adopts the request's wire trace context as the thread's ambient context so
// the servant-dispatch span (and any nested client calls the servant makes)
// parent under the remote caller's span; restores on scope exit.
class WireTraceScope {
 public:
  explicit WireTraceScope(const RequestMessage& request) {
    if (!obs::tracing_enabled()) return;
    if (auto wire = extract_trace_context(request)) {
      adopted_ = true;
      saved_ = obs::exchange_current_trace(*wire);
    }
  }
  ~WireTraceScope() {
    if (adopted_) obs::exchange_current_trace(saved_);
  }

 private:
  bool adopted_ = false;
  obs::TraceContext saved_;
};

}  // namespace

void Servant::check_arity(std::string_view op, const ValueSeq& args,
                          std::size_t n) {
  if (args.size() != n)
    throw BAD_PARAM(std::string(op) + ": expected " + std::to_string(n) +
                        " arguments, got " + std::to_string(args.size()),
                    minor_code::unspecified, CompletionStatus::completed_no);
}

ObjectAdapter::ObjectAdapter(EndpointProfile profile)
    : profile_(std::move(profile)),
      adapter_id_(profile_.adapter_id ? profile_.adapter_id
                                      : next_adapter_id()) {}

IOR ObjectAdapter::make_ior(const std::shared_ptr<Servant>& servant,
                            ObjectKey key) const {
  IOR ior;
  ior.type_id = std::string(servant->repo_id());
  ior.protocol = profile_.protocol;
  ior.host = profile_.host;
  ior.port = profile_.port;
  ior.key = std::move(key);
  return ior;
}

IOR ObjectAdapter::activate(std::shared_ptr<Servant> servant,
                            std::string_view name_hint) {
  if (!servant) throw BAD_PARAM("null servant");
  std::lock_guard lock(mu_);
  std::string key_text = name_hint.empty() ? "obj" : std::string(name_hint);
  key_text += "#a" + std::to_string(adapter_id_) + "." +
              std::to_string(next_key_++);
  ObjectKey key = ObjectKey::from_string(key_text);
  auto [it, inserted] = servants_.emplace(key, std::move(servant));
  if (!inserted) throw INTERNAL("generated object key collided");
  return make_ior(it->second, key);
}

IOR ObjectAdapter::activate_with_key(ObjectKey key,
                                     std::shared_ptr<Servant> servant) {
  if (!servant) throw BAD_PARAM("null servant");
  if (key.empty()) throw BAD_PARAM("empty object key");
  std::lock_guard lock(mu_);
  auto [it, inserted] = servants_.emplace(std::move(key), std::move(servant));
  if (!inserted)
    throw BAD_PARAM("object key already active: " + it->first.to_string());
  return make_ior(it->second, it->first);
}

void ObjectAdapter::deactivate(const ObjectKey& key) {
  std::lock_guard lock(mu_);
  servants_.erase(key);
}

std::shared_ptr<Servant> ObjectAdapter::find(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  auto it = servants_.find(key);
  return it == servants_.end() ? nullptr : it->second;
}

std::size_t ObjectAdapter::active_count() const {
  std::lock_guard lock(mu_);
  return servants_.size();
}

void ObjectAdapter::enable_dispatch_pool(DispatchPool::Options options) {
  std::lock_guard lock(pool_mu_);
  if (pool_) {
    if (pool_->threads() != options.threads)
      throw BAD_INV_ORDER("dispatch pool already started",
                          minor_code::unspecified,
                          CompletionStatus::completed_no);
    return;
  }
  pool_ = std::make_unique<DispatchPool>(
      options, [this](const RequestMessage& request) { return dispatch(request); });
}

void ObjectAdapter::dispatch_async(RequestMessage request,
                                   DispatchPool::Completion done) {
  // pool_ is written once under pool_mu_ before any endpoint thread runs and
  // never reset, so the lock-free read here is race-free in practice; the
  // pool outlives every connection loop (stop_dispatch_pool only drains).
  if (DispatchPool* pool = pool_.get()) {
    pool->submit(std::move(request), std::move(done));
    return;
  }
  ReplyMessage reply = dispatch(request);
  if (request.response_expected && done) done(std::move(reply));
}

void ObjectAdapter::stop_dispatch_pool() {
  std::unique_lock lock(pool_mu_);
  DispatchPool* pool = pool_.get();
  lock.unlock();
  if (pool) pool->stop();
}

ReplyMessage ObjectAdapter::dispatch(const RequestMessage& request) noexcept {
  try {
    dispatch_counter().inc();
    WireTraceScope wire_scope(request);
    obs::Span span("servant.dispatch", request.operation);
    std::shared_ptr<Servant> servant = find(request.object_key);
    if (!servant)
      throw OBJECT_NOT_EXIST("no servant for key " +
                                 request.object_key.to_string(),
                             minor_code::unspecified,
                             CompletionStatus::completed_no);
    // Implicit object operations, answered by the adapter.
    if (request.operation == "_is_a") {
      Servant::check_arity("_is_a", request.arguments, 1);
      return ReplyMessage::make_result(
          request.request_id,
          Value(request.arguments[0].as_string() == servant->repo_id()));
    }
    if (request.operation == "_interface") {
      return ReplyMessage::make_result(request.request_id,
                                       Value(std::string(servant->repo_id())));
    }
    if (request.operation == "_ping") {
      return ReplyMessage::make_result(request.request_id, Value());
    }
    Value result = servant->dispatch(request.operation, request.arguments);
    return ReplyMessage::make_result(request.request_id, std::move(result));
  } catch (const UserException& e) {
    return ReplyMessage::make_user_exception(request.request_id, e);
  } catch (const SystemException& e) {
    return ReplyMessage::make_system_exception(request.request_id, e);
  } catch (const std::exception& e) {
    return ReplyMessage::make_system_exception(
        request.request_id,
        INTERNAL(std::string("servant threw: ") + e.what(),
                 minor_code::unspecified, CompletionStatus::completed_maybe));
  } catch (...) {
    return ReplyMessage::make_system_exception(
        request.request_id,
        INTERNAL("servant threw unknown exception", minor_code::unspecified,
                 CompletionStatus::completed_maybe));
  }
}

}  // namespace corba
