// Real-socket transport (GIOP-lite over TCP).
//
// The server endpoint is a classic thread-per-connection CORBA server: an
// acceptor thread plus one worker thread per client connection, each running
// a read-dispatch-write loop against the object adapter.  The client side
// keeps a small pool of connections per (host, port) and serializes one
// request per connection at a time.  Deferred-synchronous sends run the
// round trip on a helper thread so the caller can keep working, which is how
// the DII layer gets real parallelism in socket mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "orb/transport.hpp"

namespace corba {

/// RAII socket with framed message I/O.  Throws COMM_FAILURE on errors.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static Socket connect(const std::string& host, std::uint16_t port);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Writes an entire frame (header + body).
  void send_frame(MessageType type, const CdrOutputStream& body);

  /// Zero-copy frame path: start_frame hands out a FrameBuilder backed by
  /// this socket's scratch buffer (pre-sized to `size_hint`); finish_frame
  /// writes it and reclaims the buffer, so steady-state sends on one
  /// connection allocate nothing.
  FrameBuilder start_frame(MessageType type, std::size_t size_hint = 0);
  void finish_frame(FrameBuilder& frame);

  /// Reads one frame.  Returns false on orderly peer close before a header;
  /// throws COMM_FAILURE on mid-frame errors and TIMEOUT when `timeout_s`
  /// (> 0) elapses first.  `stop` (optional) aborts the wait and returns
  /// false when set.
  bool recv_frame(MessageHeader& header, std::vector<std::byte>& body,
                  const std::atomic<bool>* stop = nullptr,
                  double timeout_s = 0);

 private:
  void write_all(std::span<const std::byte> data);
  bool read_all(std::span<std::byte> data, bool eof_ok,
                const std::atomic<bool>* stop, double timeout_s);

  int fd_ = -1;
  /// Recycled through start_frame/finish_frame; capacity follows the
  /// largest frame this connection has sent.
  std::vector<std::byte> scratch_;
};

/// Client transport over TCP with per-target connection pooling.
class TcpClientTransport final : public ClientTransport {
 public:
  /// `request_timeout_s` bounds the wait for each reply (0 = unbounded);
  /// expiry raises TIMEOUT/COMPLETED_MAYBE and drops the connection.
  explicit TcpClientTransport(double request_timeout_s = 0)
      : request_timeout_s_(request_timeout_s) {}

  std::unique_ptr<PendingReply> send(const IOR& target,
                                     RequestMessage request) override;
  ReplyMessage invoke(const IOR& target, RequestMessage request) override;

 private:
  friend class TcpPendingReply;
  ReplyMessage round_trip(const IOR& target, const RequestMessage& request);

  Socket checkout(const std::string& host, std::uint16_t port);
  void checkin(const std::string& host, std::uint16_t port, Socket socket);

  double request_timeout_s_ = 0;
  std::mutex pool_mu_;
  std::map<std::pair<std::string, std::uint16_t>, std::vector<Socket>> pool_;
};

/// Server endpoint: accepts connections and dispatches into an adapter.
class TcpServerEndpoint {
 public:
  /// Binds and listens immediately (port 0 selects an ephemeral port).
  TcpServerEndpoint(const std::string& host, std::uint16_t port);
  ~TcpServerEndpoint();

  TcpServerEndpoint(const TcpServerEndpoint&) = delete;
  TcpServerEndpoint& operator=(const TcpServerEndpoint&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Starts the acceptor loop dispatching into `adapter`.
  void start(std::shared_ptr<ObjectAdapter> adapter);

  /// Stops accepting, closes connections, joins all threads.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void connection_loop(Socket socket);

  std::string host_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::shared_ptr<ObjectAdapter> adapter_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace corba
