// Real-socket transport (GIOP-lite over TCP).
//
// Client side: one shared, **multiplexed** connection per (host, port).
// Concurrent synchronous calls and DII deferred requests are pipelined onto
// the same socket — a frame is written per request (serialized by a write
// mutex) and ReplyMessages are demuxed back to the waiting callers by
// request id (the wire format has always carried it, so messages stay
// byte-identical).  Demultiplexing follows the leader/followers pattern: the
// connection owns no reader thread — instead, one blocked caller at a time
// (the leader) reads the socket, delivering siblings' replies to their
// waiters and promoting a follower to leader when its own reply arrives.  A
// lone synchronous caller therefore reads its own reply directly, with the
// same syscall profile (and latency) as a dedicated per-call socket, while
// deep pipelines still pay only one thread wakeup per reply.  A
// connection-level failure fails every in-flight call on that connection
// with COMM_FAILURE/COMPLETED_MAYBE — the fault-tolerance layer's recovery
// path is built to absorb such batched failures.  The legacy serialized mode
// (a pool checkout per call, one outstanding request per socket, a helper
// thread per deferred send) is kept behind TcpClientOptions::multiplex =
// false as the benchmark baseline.
//
// Server side: two receive paths behind one semantics seam (server_conn.hpp).
// The default is the epoll reactor (reactor.hpp): a fixed set of
// TcpServerOptions::io_threads event loops serving any number of
// non-blocking connections, frames assembled incrementally and handed to
// the object adapter's bounded dispatch thread pool (dispatch_pool.hpp).
// The legacy path (reactor = false; bench baseline) spends an acceptor
// thread plus one blocking *receive loop* per connection.  In both modes
// the receive side only reads and decodes frames; servant execution happens
// on the dispatch pool, whose completions write replies back — possibly out
// of order — serialized per connection.  Requests for one object stay FIFO;
// requests for different objects and connections no longer block each
// other.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "orb/server_conn.hpp"
#include "orb/session.hpp"
#include "orb/transport.hpp"

namespace corba {

class Reactor;

/// RAII socket with framed message I/O.  Throws COMM_FAILURE on errors.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects with a non-blocking connect + EINTR-safe poll so `timeout_s`
  /// (> 0) bounds the TCP handshake — a black-holed SYN respects the
  /// caller's deadline budget instead of the kernel default.  0 = unbounded.
  static Socket connect(const std::string& host, std::uint16_t port,
                        double timeout_s = 0);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Writes an entire frame (header + body).
  void send_frame(MessageType type, const CdrOutputStream& body);

  /// Writes pre-encoded frame bytes (session retransmit/replay path).
  void send_bytes(std::span<const std::byte> data) { write_all(data); }

  /// Zero-copy frame path: start_frame hands out a FrameBuilder backed by
  /// this socket's scratch buffer (pre-sized to `size_hint`); finish_frame
  /// writes it and reclaims the buffer, so steady-state sends on one
  /// connection allocate nothing.  Callers multiplexing one socket across
  /// threads must serialize start_frame..finish_frame externally.
  FrameBuilder start_frame(MessageType type, std::size_t size_hint = 0);
  void finish_frame(FrameBuilder& frame);

  /// Reads one frame.  Returns false on orderly peer close before a header;
  /// throws COMM_FAILURE on mid-frame errors and TIMEOUT when `timeout_s`
  /// (> 0) elapses first.  `stop` (optional) aborts the wait and returns
  /// false when set.
  bool recv_frame(MessageHeader& header, std::vector<std::byte>& body,
                  const std::atomic<bool>* stop = nullptr,
                  double timeout_s = 0);

  /// Polls for readability for up to `timeout_ms` (0 = just check).  Throws
  /// COMM_FAILURE on poll errors; a hangup reports readable so the next read
  /// surfaces the close.
  bool wait_readable(int timeout_ms);

 private:
  void write_all(std::span<const std::byte> data);
  bool read_all(std::span<std::byte> data, bool eof_ok,
                const std::atomic<bool>* stop, double timeout_s);

  int fd_ = -1;
  /// Recycled through start_frame/finish_frame; capacity follows the
  /// largest frame this connection has sent.
  std::vector<std::byte> scratch_;
};

/// Client-transport tuning.
struct TcpClientOptions {
  /// Bounds the wait for each reply (0 = unbounded).  Expiry raises
  /// TIMEOUT/COMPLETED_MAYBE; in multiplexed mode the timed-out call is
  /// abandoned (its late reply is discarded) but the connection — and every
  /// other in-flight call on it — lives on.
  double request_timeout_s = 0;

  /// One shared pipelined connection per target (the default) vs the legacy
  /// serialized pool (one outstanding call per socket; benchmark baseline).
  bool multiplex = true;

  /// Idle multiplexed connections (no in-flight calls) older than this are
  /// closed on the next connection lookup; 0 disables the TTL.
  double idle_ttl_s = 30.0;

  /// Soft cap on open sockets held by this transport: when exceeded, the
  /// least-recently-used *idle* connection is closed before a new one is
  /// opened.  Connections with calls in flight are never culled, so the cap
  /// can be exceeded transiently under load.
  std::size_t max_connections = 64;

  // --- resumable sessions ---------------------------------------------------
  /// Negotiate a session per connection and stamp every request/reply with a
  /// session sequence number, so a lost connection is *resumed* (reconnect
  /// to the same endpoint + replay of unacknowledged frames) instead of
  /// batch-failing every in-flight call.  Off by default; when off the wire
  /// bytes are identical to the pre-session format.
  bool enable_sessions = false;

  /// Hard cap on unacknowledged request frames buffered for retransmission.
  /// Appending beyond it fails the *oldest* in-flight call with
  /// COMM_FAILURE (minor_code::session_overflow).
  std::size_t session_retransmit_limit = 256;

  /// Reconnect attempts before a resume is abandoned and the batched
  /// COMM_FAILURE path (minor_code::session_resume_failed) fires.
  int resume_attempts = 3;

  /// Pause between reconnect attempts.
  double resume_backoff_s = 0.05;

  /// Bound on each (re)connect's TCP handshake and on the session
  /// handshake's reply wait; 0 = unbounded.
  double connect_timeout_s = 10.0;
};

/// One multiplexed connection: a socket, a write mutex, and leader/followers
/// demultiplexing — the first blocked caller reads the socket and routes
/// replies to per-request waiters by request id.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Opens the socket and, when options.enable_sessions is set, performs the
  /// session handshake (hello/accept) before returning.
  static std::shared_ptr<TcpConnection> open(const std::string& host,
                                             std::uint16_t port,
                                             const TcpClientOptions& options =
                                                 TcpClientOptions{});
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Writes the request frame and returns a handle completed when a caller
  /// (this one or a pipelined sibling acting as leader) reads the reply.
  /// `timeout_s` > 0 bounds the wait inside PendingReply::get().
  std::unique_ptr<PendingReply> send(const RequestMessage& request,
                                     double timeout_s);

  /// Writes a request frame without registering a waiter (oneway).
  void send_oneway(const RequestMessage& request);

  /// False once the connection failed (peer close, reset, protocol error);
  /// a dead connection is never reused — this is the health check that
  /// replaces "fail the first call on a stale socket".
  bool healthy() const noexcept {
    return !broken_.load(std::memory_order_acquire);
  }

  std::size_t in_flight() const;
  /// Monotonic-clock seconds of the last send or reply (idle-TTL input).
  double last_used() const;

  /// "host:port" label of the peer (flight-recorder subjects, diagnostics).
  const std::string& peer() const noexcept { return peer_; }

  /// Negotiated session id (0 when sessions are off), frames currently held
  /// for retransmission, and whether the session is still live — telemetry
  /// and test hooks.
  std::uint64_t session_id() const;
  std::size_t retransmit_buffered() const;
  bool session_active() const;

  /// Fails all in-flight calls with COMM_FAILURE; a caller mid-read is
  /// kicked out by shutting the socket down.
  void close();

 private:
  friend class TcpMuxPendingReply;

  struct Waiter {
    /// Release-stored after reply/error are filled in; acquire-loaded by the
    /// waiting caller, so a reply demuxed by a sibling leader is consumed
    /// without retaking the connection lock.
    std::atomic<bool> done{false};
    /// Per-waiter wakeup (guarded by the connection's mu_): the leader
    /// notifies exactly the caller whose reply arrived, so deep pipelines
    /// don't thundering-herd every blocked caller on every reply.
    std::condition_variable cv;
    /// True while the owning caller is blocked in get() as a follower
    /// (guarded by mu_) — leadership handoff targets a blocked waiter.
    bool blocked = false;
    ReplyMessage reply;
    std::exception_ptr error;
  };

  explicit TcpConnection(Socket socket);
  /// Leader loop: reads frames, demuxing each reply to its waiter, until
  /// `waiter` completes (returns true) or `deadline` expires between frames
  /// (returns false).  Call with mu_ held and leader_active_ set; returns
  /// with mu_ held.  Connection failures fail all in-flight calls.
  bool lead(std::unique_lock<std::mutex>& lock,
            const std::shared_ptr<Waiter>& waiter,
            std::chrono::steady_clock::time_point deadline);
  /// Reads exactly one frame (blocking) and demuxes it.  Call with mu_ held
  /// and leader_active_ set; returns with mu_ held.  Returns false after a
  /// connection failure (every in-flight call has been failed); with a live
  /// session the failure is first given to resume_locked, bounded by
  /// `deadline` (the leader's per-call deadline budget).
  bool read_one_locked(std::unique_lock<std::mutex>& lock,
                       std::chrono::steady_clock::time_point deadline);
  /// Drains frames already buffered on the socket without blocking between
  /// them (ready()-polling progress).  Locking contract as read_one_locked.
  void drain_available_locked(std::unique_lock<std::mutex>& lock);
  /// Wakes one blocked follower to take over reading (call with mu_ held,
  /// after clearing leader_active_).
  void promote_follower_locked();
  /// Marks the connection broken and fails every registered waiter.
  void fail_all_locked(const std::exception_ptr& error);
  /// Resume protocol (leader only, mu_ held): reconnect to the same
  /// endpoint, re-present the session id, exchange highest-received sequence
  /// numbers and replay the unacknowledged tail.  Returns true when the
  /// connection is live again; false when the attempts budget, `deadline`,
  /// or a server-side session rejection ends the resume (the caller then
  /// fires the batched-failure path).
  bool resume_locked(std::unique_lock<std::mutex>& lock,
                     std::chrono::steady_clock::time_point deadline);
  /// Read-side failure funnel: try resume first, fall back to fail_all.
  /// Returns true when the connection was resumed.
  bool handle_failure_locked(std::unique_lock<std::mutex>& lock,
                             const std::exception_ptr& failure,
                             std::chrono::steady_clock::time_point deadline);
  /// Fails the oldest buffered call when the retransmit buffer is at its
  /// hard cap (mu_ held).
  void overflow_evict_locked();
  void write_frame(const RequestMessage& request);
  void touch() noexcept;

  Socket socket_;
  std::string peer_;  ///< "host:port", set once at open()
  std::string host_;  ///< reconnect target (sessions)
  std::uint16_t port_ = 0;
  TcpClientOptions options_;
  std::mutex write_mu_;               ///< serializes frames on the socket
  mutable std::mutex mu_;  ///< waiters_, leadership, broken bookkeeping
  std::unordered_map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;
  /// Request ids abandoned by their caller (timeout or dropped handle),
  /// guarded by mu_: the entry is reaped when the late reply arrives, and
  /// tells the late/duplicate discard reasons apart.
  std::unordered_set<std::uint64_t> abandoned_;
  /// True while some caller is reading the socket as leader (guarded by mu_).
  bool leader_active_ = false;
  std::atomic<bool> broken_{false};
  std::atomic<bool> closing_{false};
  std::atomic<double> last_used_{0.0};

  // Session state (guarded by mu_; writers reach it holding write_mu_ then
  // mu_, so sequence assignment and the socket write stay atomic and wire
  // order equals seq order).
  bool session_active_ = false;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_send_seq_ = 1;
  std::uint64_t highest_reply_seq_ = 0;
  std::unique_ptr<RetransmitBuffer> retransmit_;
};

/// Client transport over TCP (see file comment for the two modes).
class TcpClientTransport final : public ClientTransport {
 public:
  explicit TcpClientTransport(TcpClientOptions options = {})
      : options_(options) {}
  /// Back-compat constructor: timeout only.
  explicit TcpClientTransport(double request_timeout_s)
      : options_{.request_timeout_s = request_timeout_s} {}
  ~TcpClientTransport();

  std::unique_ptr<PendingReply> send(const IOR& target,
                                     RequestMessage request) override;
  ReplyMessage invoke(const IOR& target, RequestMessage request) override;

  const TcpClientOptions& options() const noexcept { return options_; }
  /// Open multiplexed connections (telemetry / tests).
  std::size_t connection_count() const;

 private:
  using TargetKey = std::pair<std::string, std::uint16_t>;

  /// Returns a healthy shared connection, opening (and, under the socket
  /// cap, culling idle connections) as needed.  `fresh` reports whether the
  /// connection was just opened (callers retry once on a stale reused one).
  std::shared_ptr<TcpConnection> connection_for(const IOR& target, bool* fresh);
  void drop_connection(const IOR& target,
                       const std::shared_ptr<TcpConnection>& dead);
  std::unique_ptr<PendingReply> send_multiplexed(const IOR& target,
                                                 const RequestMessage& request);

  // Legacy serialized mode.
  ReplyMessage round_trip(const IOR& target, const RequestMessage& request);
  Socket checkout(const std::string& host, std::uint16_t port);
  void checkin(const std::string& host, std::uint16_t port, Socket socket);

  TcpClientOptions options_;
  mutable std::mutex conn_mu_;
  std::map<TargetKey, std::shared_ptr<TcpConnection>> connections_;
  std::mutex pool_mu_;  ///< legacy mode socket pool
  std::map<TargetKey, std::vector<Socket>> pool_;
};

/// Server-endpoint tuning.
struct TcpServerOptions {
  /// Receive path: the epoll reactor (default — io_threads event loops
  /// serving any number of connections; reactor.hpp) vs the legacy
  /// thread-per-connection blocking receive loop (the bench baseline).
  /// Both feed the same dispatch pool with identical wire semantics.
  bool reactor = true;

  /// Reactor event-loop threads (>= 1); the receive-side thread budget.
  std::size_t io_threads = 2;

  /// listen(2) backlog: pending-connect queue depth before the kernel
  /// refuses new SYNs (connect storms deeper than this see timeouts).
  int listen_backlog = 256;

  /// Reactor-only: harvest connections idle (no bytes in, no replies out)
  /// for this long, in seconds; 0 disables harvesting.
  double idle_timeout_s = 0;
};

/// Server endpoint: accepts connections and dispatches into an adapter.
class TcpServerEndpoint {
 public:
  /// Binds and listens immediately (port 0 selects an ephemeral port).
  TcpServerEndpoint(const std::string& host, std::uint16_t port,
                    TcpServerOptions options = {});
  ~TcpServerEndpoint();

  TcpServerEndpoint(const TcpServerEndpoint&) = delete;
  TcpServerEndpoint& operator=(const TcpServerEndpoint&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Starts the acceptor loop dispatching into `adapter`.
  void start(std::shared_ptr<ObjectAdapter> adapter);

  /// Stops accepting, closes connections, joins all threads.  Idempotent.
  void stop();

 private:
  /// Legacy-mode write side of one server connection, shared with the
  /// dispatch pool's completions (which may run after the receive loop
  /// exited); the socket closes when the last completion releases it.  The
  /// reactor mode uses ReactorConn (reactor.cpp) behind the same ServerConn
  /// seam, so session/reply semantics are identical in both modes.
  struct Connection final : ServerConn {
    explicit Connection(Socket s) : socket(std::move(s)) {}
    Socket socket;
    std::mutex write_mu;
    std::atomic<bool> dead{false};

    /// Serialized, best-effort reply write; marks the connection dead on
    /// failure instead of throwing (the reader loop then stops).
    void write_reply(const ReplyMessage& reply) noexcept override;
    /// Serialized, best-effort raw-frame write (session accept/replay and
    /// buffered-reply frames).
    void send_frame_bytes(std::vector<std::byte> bytes) noexcept override;
    bool is_dead() const noexcept override {
      return dead.load(std::memory_order_acquire);
    }
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);

  std::string host_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  TcpServerOptions options_;
  std::shared_ptr<ObjectAdapter> adapter_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::unique_ptr<Reactor> reactor_;
  /// Sessions survive connection loss but die with the endpoint — a
  /// restarted server rejects old session ids (the stale-session path).
  SessionTable sessions_{/*reply_limit=*/256};
};

}  // namespace corba
