#include "orb/orb.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/exceptions.hpp"
#include "orb/tcp_transport.hpp"

namespace corba {

namespace {

// Pre-registered handles (see obs/metrics.hpp): the per-call cost with no
// exporter installed is one relaxed atomic increment.
struct OrbMetrics {
  obs::Counter& requests =
      obs::MetricsRegistry::global().counter("orb.requests_total");
  obs::Counter& async_requests =
      obs::MetricsRegistry::global().counter("orb.async_requests_total");
  obs::Counter& oneways =
      obs::MetricsRegistry::global().counter("orb.oneways_total");
  obs::Histogram& latency =
      obs::MetricsRegistry::global().histogram("orb.request_latency_s");
};

OrbMetrics& orb_metrics() {
  static OrbMetrics metrics;
  return metrics;
}

}  // namespace

ObjectRef::ObjectRef(std::shared_ptr<ORB> orb, IOR ior)
    : orb_(std::move(orb)), ior_(std::move(ior)) {}

Value ObjectRef::invoke(std::string_view op, ValueSeq args) const {
  auto orb = orb_.lock();
  if (!orb || ior_.is_nil())
    throw BAD_INV_ORDER("invoke on nil reference", minor_code::unspecified,
                        CompletionStatus::completed_no);
  return orb->invoke(ior_, op, std::move(args));
}

std::unique_ptr<PendingReply> ObjectRef::send(std::string_view op,
                                              ValueSeq args) const {
  auto orb = orb_.lock();
  if (!orb || ior_.is_nil())
    throw BAD_INV_ORDER("send on nil reference", minor_code::unspecified,
                        CompletionStatus::completed_no);
  return orb->send(ior_, op, std::move(args));
}

void ObjectRef::invoke_oneway(std::string_view op, ValueSeq args) const {
  auto orb = orb_.lock();
  if (!orb || ior_.is_nil())
    throw BAD_INV_ORDER("invoke_oneway on nil reference",
                        minor_code::unspecified,
                        CompletionStatus::completed_no);
  orb->send_oneway(ior_, op, std::move(args));
}

bool ObjectRef::is_a(std::string_view repo_id) const {
  return invoke("_is_a", {Value(std::string(repo_id))}).as_bool();
}

bool ObjectRef::ping() const noexcept {
  try {
    invoke("_ping", {});
    return true;
  } catch (const SystemException&) {
    return false;
  }
}

Value ObjectRef::to_value() const {
  if (is_nil()) return Value();
  return Value(ior_.to_string());
}

ObjectRef ObjectRef::from_value(const std::shared_ptr<ORB>& orb,
                                const Value& v) {
  if (v.is_nil()) return ObjectRef();
  if (!orb) throw BAD_PARAM("from_value requires an ORB");
  return orb->make_ref(IOR::from_string(v.as_string()));
}

ORB::ORB(OrbConfig config) : config_(std::move(config)) {}

std::shared_ptr<ORB> ORB::init(OrbConfig config) {
  if (config.endpoint_name.empty())
    throw BAD_PARAM("OrbConfig.endpoint_name must not be empty");
  if (!config.network && !config.client_transport_override && !config.enable_tcp)
    throw BAD_PARAM("OrbConfig requires a network, transport override or TCP");
  auto orb = std::shared_ptr<ORB>(new ORB(std::move(config)));
  orb->start();
  return orb;
}

void ORB::start() {
  EndpointProfile profile;
  profile.adapter_id = config_.adapter_id;
  if (config_.enable_tcp) {
    TcpServerOptions server_options;
    server_options.reactor = config_.reactor;
    server_options.io_threads = config_.io_threads;
    server_options.listen_backlog = config_.listen_backlog;
    server_options.idle_timeout_s = config_.server_idle_timeout_s;
    tcp_server_ = std::make_unique<TcpServerEndpoint>(
        config_.tcp_host, config_.tcp_port, server_options);
    profile.protocol = std::string(protocol::tcp);
    profile.host = config_.tcp_host;
    profile.port = tcp_server_->port();
  } else {
    profile.protocol = std::string(protocol::inproc);
    profile.host = config_.endpoint_name;
    profile.port = 0;
  }
  adapter_ = std::make_shared<ObjectAdapter>(std::move(profile));
  if (config_.enable_tcp && config_.dispatch_threads > 0)
    adapter_->enable_dispatch_pool(
        {config_.dispatch_threads, config_.dispatch_queue_limit});
  if (tcp_server_) tcp_server_->start(adapter_);
  if (config_.network) {
    config_.network->bind(config_.endpoint_name, adapter_);
    inproc_transport_ =
        std::make_shared<InProcessTransport>(config_.network);
  }
  if (config_.enable_tcp)
    tcp_transport_ = std::make_shared<TcpClientTransport>(config_.tcp_client);
}

ORB::~ORB() { shutdown(); }

void ORB::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Receive loops first (they may be blocked on pool backpressure, which the
  // still-running pool resolves), then drain the pool itself.
  if (tcp_server_) tcp_server_->stop();
  if (adapter_) adapter_->stop_dispatch_pool();
  if (config_.network) config_.network->unbind(config_.endpoint_name);
}

std::uint16_t ORB::tcp_port() const noexcept {
  return tcp_server_ ? tcp_server_->port() : 0;
}

ObjectRef ORB::activate(std::shared_ptr<Servant> servant,
                        std::string_view name_hint) {
  IOR ior = adapter_->activate(std::move(servant), name_hint);
  return ObjectRef(shared_from_this(), std::move(ior));
}

ObjectRef ORB::make_ref(IOR ior) {
  return ObjectRef(shared_from_this(), std::move(ior));
}

ClientTransport& ORB::transport_for(const IOR& target) {
  if (config_.client_transport_override)
    return *config_.client_transport_override;
  if (target.protocol == protocol::inproc) {
    if (!inproc_transport_)
      throw COMM_FAILURE("ORB has no in-process network",
                         minor_code::endpoint_unknown,
                         CompletionStatus::completed_no);
    return *inproc_transport_;
  }
  if (target.protocol == protocol::tcp) {
    if (!tcp_transport_) {
      // Lazily create a TCP client transport: a pure-client ORB may talk to
      // TCP servers without exposing a TCP endpoint itself.
      std::lock_guard lock(initial_refs_mu_);
      if (!tcp_transport_)
        tcp_transport_ = std::make_shared<TcpClientTransport>(config_.tcp_client);
    }
    return *tcp_transport_;
  }
  throw INV_OBJREF("unknown protocol '" + target.protocol + "'");
}

std::unique_ptr<PendingReply> ORB::send(const IOR& target, std::string_view op,
                                        ValueSeq args) {
  if (shut_down_.load())
    throw BAD_INV_ORDER("ORB has been shut down", minor_code::unspecified,
                        CompletionStatus::completed_no);
  RequestMessage req;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.object_key = target.key;
  req.operation = std::string(op);
  req.arguments = std::move(args);
  orb_metrics().async_requests.inc();
  // Deferred sends record only the start edge; the reply is demuxed inside
  // the transport and has no hook back into the recorder.
  obs::flight_event(obs::FlightEvent::rpc_start, req.operation, req.request_id);
  // The send span covers only request hand-off; the transport records the
  // round trip when the pending reply completes.
  obs::Span span("rpc.send", req.operation);
  if (span.active()) attach_trace_context(req, span.context());
  return transport_for(target).send(target, std::move(req));
}

Value ORB::invoke(const IOR& target, std::string_view op, ValueSeq args) {
  if (shut_down_.load())
    throw BAD_INV_ORDER("ORB has been shut down", minor_code::unspecified,
                        CompletionStatus::completed_no);
  RequestMessage req;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.object_key = target.key;
  req.operation = std::string(op);
  req.arguments = std::move(args);
  OrbMetrics& metrics = orb_metrics();
  metrics.requests.inc();
  obs::Span span("rpc.client", req.operation);
  if (span.active()) attach_trace_context(req, span.context());
  const bool timed = span.active();  // latency is sampled while tracing is on
  const double start = timed ? obs::now() : 0.0;
  const std::uint64_t request_id = req.request_id;
  const std::string operation = req.operation;  // survives the move below
  obs::flight_event(obs::FlightEvent::rpc_start, operation, request_id);
  ReplyMessage reply;
  try {
    reply = transport_for(target).invoke(target, std::move(req));
  } catch (...) {
    obs::flight_event(obs::FlightEvent::rpc_end, operation, request_id, 1);
    throw;
  }
  if (timed) metrics.latency.record(obs::now() - start);
  obs::flight_event(obs::FlightEvent::rpc_end, operation, request_id,
                    reply.status == ReplyStatus::no_exception ? 0 : 1);
  return reply.result_or_throw();
}

void ORB::send_oneway(const IOR& target, std::string_view op, ValueSeq args) {
  if (shut_down_.load())
    throw BAD_INV_ORDER("ORB has been shut down", minor_code::unspecified,
                        CompletionStatus::completed_no);
  RequestMessage req;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.object_key = target.key;
  req.operation = std::string(op);
  req.arguments = std::move(args);
  req.response_expected = false;
  orb_metrics().oneways.inc();
  obs::flight_event(obs::FlightEvent::rpc_start, req.operation, req.request_id);
  obs::Span span("rpc.oneway", req.operation);
  if (span.active()) attach_trace_context(req, span.context());
  // Best-effort: the pending handle is discarded; transports deliver without
  // producing a reply and delivery failures are intentionally silent.
  try {
    transport_for(target).send(target, std::move(req));
  } catch (const SystemException&) {
  }
}

std::string ORB::object_to_string(const ObjectRef& ref) const {
  if (ref.is_nil()) return "IOR:";
  return ref.ior().to_string();
}

ObjectRef ORB::string_to_object(std::string_view ior_string) {
  if (ior_string == "IOR:") return ObjectRef();
  return make_ref(IOR::from_string(ior_string));
}

void ORB::register_initial_reference(const std::string& name, ObjectRef ref) {
  std::lock_guard lock(initial_refs_mu_);
  initial_refs_[name] = std::move(ref);
}

ObjectRef ORB::resolve_initial_references(const std::string& name) {
  std::lock_guard lock(initial_refs_mu_);
  auto it = initial_refs_.find(name);
  if (it == initial_refs_.end())
    throw INV_OBJREF("no initial reference named '" + name + "'");
  return it->second;
}

std::vector<std::string> ORB::list_initial_services() const {
  std::lock_guard lock(initial_refs_mu_);
  std::vector<std::string> names;
  names.reserve(initial_refs_.size());
  for (const auto& [name, ref] : initial_refs_) names.push_back(name);
  return names;
}

}  // namespace corba
