// Minimal structured logging hook.
//
// Library components (recovery, fault detection, migration, transports)
// emit one-line events through this facade.  By default nothing is
// installed and emit() is a cheap no-op; applications install a sink to
// route events into their own logging.  A sink, not a stream: the library
// never decides formatting, destinations or filtering policy.
#pragma once

#include <functional>
#include <string_view>

namespace corba::log {

enum class Level { debug, info, warning, error };

std::string_view to_string(Level level) noexcept;

/// Receives every emitted event.  Invoked with NO internal lock held, so a
/// sink may safely emit() again (directly or through code it calls) — but
/// it must be thread-safe itself, and may still run concurrently with (or
/// briefly after) a set_sink()/clear_sink() that replaces it.
using Sink =
    std::function<void(Level, std::string_view component, std::string_view message)>;

/// Installs (replaces) the process-wide sink.  Thread-safe.
void set_sink(Sink sink);

/// Removes the sink; emit() becomes a no-op again.
void clear_sink();

/// True while a sink is installed (lets callers skip message formatting).
bool enabled() noexcept;

/// Routes one event to the sink, if any.
void emit(Level level, std::string_view component, std::string_view message);

}  // namespace corba::log
