// Minimal structured logging hook.
//
// Library components (recovery, fault detection, migration, transports)
// emit one-line events through this facade.  By default nothing is
// installed and emit() is a cheap no-op; applications install a sink to
// route events into their own logging.  A sink, not a stream: the library
// never decides formatting, destinations or filtering policy.
#pragma once

#include <functional>
#include <string_view>

namespace corba::log {

enum class Level { debug, info, warning, error };

std::string_view to_string(Level level) noexcept;

/// Receives every emitted event.  Called under an internal mutex: sinks
/// need no locking of their own but must not re-enter the logger.
using Sink =
    std::function<void(Level, std::string_view component, std::string_view message)>;

/// Installs (replaces) the process-wide sink.  Thread-safe.
void set_sink(Sink sink);

/// Removes the sink; emit() becomes a no-op again.
void clear_sink();

/// True while a sink is installed (lets callers skip message formatting).
bool enabled() noexcept;

/// Routes one event to the sink, if any.
void emit(Level level, std::string_view component, std::string_view message);

}  // namespace corba::log
