#include "orb/dispatch_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"

namespace corba {

namespace {

struct PoolMetrics {
  obs::Counter& dispatched = obs::MetricsRegistry::global().counter(
      "orb.dispatch_pool.dispatched_total");
  obs::Gauge& inflight =
      obs::MetricsRegistry::global().gauge("orb.dispatch_pool.inflight");
  obs::Histogram& queue_depth = obs::MetricsRegistry::global().histogram(
      "orb.dispatch_pool.queue_depth",
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  /// Time a request sat queued before a worker picked it up — the "where
  /// does latency come from" attribution for a saturated pool.
  obs::Histogram& queue_wait = obs::MetricsRegistry::global().histogram(
      "orb.dispatch_pool.queue_wait_s");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

// Wall (steady) clock, deliberately not obs::now(): pool workers run real
// threads even while a simulator's virtual clock is installed in the same
// process, and a virtual timestamp here would render nonsense waits.
double pool_monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DispatchPool::DispatchPool(Options options, Dispatch dispatch)
    : options_(options), dispatch_(std::move(dispatch)) {
  if (options_.threads < 1) throw BAD_PARAM("dispatch pool requires >= 1 thread");
  if (options_.queue_limit < 1)
    throw BAD_PARAM("dispatch pool requires a positive queue limit");
  if (!dispatch_) throw BAD_PARAM("dispatch pool requires a dispatch function");
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

DispatchPool::~DispatchPool() { stop(); }

void DispatchPool::submit(RequestMessage request, Completion done) {
  std::unique_lock lock(mu_);
  space_cv_.wait(lock,
                 [this] { return in_pool_ < options_.queue_limit || stopping_; });
  if (stopping_)
    throw BAD_INV_ORDER("dispatch pool is stopped", minor_code::unspecified,
                        CompletionStatus::completed_no);
  enqueue_locked(std::move(request), std::move(done));
}

bool DispatchPool::try_submit(RequestMessage& request, Completion& done) {
  std::lock_guard lock(mu_);
  if (stopping_)
    throw BAD_INV_ORDER("dispatch pool is stopped", minor_code::unspecified,
                        CompletionStatus::completed_no);
  if (in_pool_ >= options_.queue_limit) {
    space_wanted_ = true;  // arm the edge: ring once when capacity frees up
    return false;
  }
  enqueue_locked(std::move(request), std::move(done));
  return true;
}

void DispatchPool::set_space_callback(std::function<void()> callback) {
  std::lock_guard lock(mu_);
  space_callback_ = std::move(callback);
}

void DispatchPool::enqueue_locked(RequestMessage request, Completion done) {
  ++in_pool_;
  pool_metrics().queue_depth.record(static_cast<double>(in_pool_));
  obs::flight_event(obs::FlightEvent::dispatch_depth, request.operation,
                    in_pool_);
  auto [it, inserted] = keys_.try_emplace(request.object_key);
  it->second.waiting.push_back(
      Job{std::move(request), std::move(done), pool_monotonic_seconds()});
  // A key becomes runnable when its first job arrives; while a worker is
  // executing the key stays out of ready_ (the worker re-queues it).
  if (inserted) {
    ready_.push_back(it->first);
    work_cv_.notify_one();
  }
}

void DispatchPool::stop() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
    // A reactor loop parked on the space callback must wake to observe the
    // stop (its retried try_submit then throws and the connection unwinds).
    if (space_wanted_ && space_callback_) {
      space_wanted_ = false;
      space_callback_();
    }
  }
  // Serialized so concurrent stop() calls never race a join.
  std::lock_guard join_lock(join_mu_);
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

std::size_t DispatchPool::depth() const {
  std::lock_guard lock(mu_);
  return in_pool_;
}

std::uint64_t DispatchPool::dispatched() const {
  std::lock_guard lock(mu_);
  return dispatched_;
}

void DispatchPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return !ready_.empty() || (stopping_ && in_pool_ == 0);
    });
    if (ready_.empty()) return;  // stopping and fully drained
    ObjectKey key = std::move(ready_.front());
    ready_.pop_front();
    auto it = keys_.find(key);
    Job job = std::move(it->second.waiting.front());
    it->second.waiting.pop_front();

    pool_metrics().inflight.add(1);
    pool_metrics().queue_wait.record(
        std::max(0.0, pool_monotonic_seconds() - job.enqueued_at));
    lock.unlock();
    ReplyMessage reply = dispatch_(job.request);
    if (job.request.response_expected && job.done) {
      try {
        job.done(std::move(reply));
      } catch (...) {
        // Completion failures (connection torn down mid-dispatch) are the
        // client's COMM_FAILURE to observe, not the pool's problem.
      }
    }
    lock.lock();
    pool_metrics().inflight.add(-1);
    pool_metrics().dispatched.inc();
    ++dispatched_;
    --in_pool_;

    it = keys_.find(key);
    if (it->second.waiting.empty()) {
      keys_.erase(it);
    } else {
      // FIFO per key: the next job for this key becomes runnable only now
      // that its predecessor finished.
      ready_.push_back(key);
      work_cv_.notify_one();
    }
    space_cv_.notify_one();
    if (space_wanted_ && in_pool_ < options_.queue_limit) {
      // Cheap by contract (an eventfd write), so holding mu_ here is fine
      // and keeps the arm/ring sequence race-free.
      space_wanted_ = false;
      if (space_callback_) space_callback_();
    }
    if (stopping_ && in_pool_ == 0) work_cv_.notify_all();
  }
}

}  // namespace corba
