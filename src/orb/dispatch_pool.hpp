// Server-side dispatch thread pool.
//
// Decouples socket reads from servant execution: a receive loop per
// connection enqueues decoded requests and N workers dispatch them, so one
// slow method no longer blocks every other request behind it (head-of-line
// blocking) — only requests for the *same* object wait on each other.
//
// Ordering contract: requests are executed FIFO **per object key**, one at a
// time per key, preserving the single-threaded servant semantics the rest of
// the runtime was written against while letting distinct objects (and
// distinct connections) proceed in parallel.  Across keys the pool is FIFO
// too — keys become runnable in arrival order — but completion order is
// unconstrained, which is why replies carry request ids (the client transport
// demuxes them; see tcp_transport.hpp).
//
// The queue is bounded: submit() blocks when `queue_limit` requests are
// in the pool (queued + executing).  Blocking the connection's receive loop
// is deliberate — it stops reading the socket, TCP flow control pushes back
// to the sender, and an overloaded server degrades into backpressure instead
// of unbounded memory growth.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "orb/message.hpp"

namespace corba {

class DispatchPool {
 public:
  struct Options {
    /// Worker thread count (>= 1).
    std::size_t threads = 4;
    /// Maximum requests in the pool (queued + executing) before submit()
    /// blocks.
    std::size_t queue_limit = 1024;
  };

  /// Executes one request; must be callable from any worker thread and must
  /// not throw (ObjectAdapter::dispatch is noexcept).
  using Dispatch = std::function<ReplyMessage(const RequestMessage&)>;

  /// Invoked with the reply on a worker thread; exceptions are swallowed
  /// (a completion writing to a dead connection is normal during teardown).
  using Completion = std::function<void(ReplyMessage)>;

  DispatchPool(Options options, Dispatch dispatch);
  ~DispatchPool();

  DispatchPool(const DispatchPool&) = delete;
  DispatchPool& operator=(const DispatchPool&) = delete;

  /// Enqueues a request.  `done` may be empty (oneway).  Blocks while the
  /// pool is at queue_limit; throws BAD_INV_ORDER after stop().
  void submit(RequestMessage request, Completion done);

  /// Non-blocking submit for callers that must never park a thread (the
  /// reactor's I/O loops): returns false — leaving `request`/`done`
  /// untouched — when the pool is at queue_limit, and arms the space
  /// callback so the caller is poked once capacity frees up.  Throws
  /// BAD_INV_ORDER after stop().
  bool try_submit(RequestMessage& request, Completion& done);

  /// Installs the capacity notification used by try_submit: invoked (at
  /// most once per failed-try_submit episode) when the pool drops back
  /// below queue_limit, and on stop().  The callback runs with the pool
  /// lock held on a worker thread, so it must be cheap and lock-free — an
  /// eventfd write, not real work.  Set before the first try_submit.
  void set_space_callback(std::function<void()> callback);

  /// Drains every queued request, then joins the workers.  Idempotent.
  void stop();

  std::size_t threads() const noexcept { return options_.threads; }

  // --- telemetry -----------------------------------------------------------
  /// Requests currently in the pool (queued + executing).
  std::size_t depth() const;
  /// Requests executed so far.
  std::uint64_t dispatched() const;

 private:
  struct Job {
    RequestMessage request;
    Completion done;
    double enqueued_at = 0.0;  ///< steady-clock seconds; queue-wait metric
  };
  /// Per-object-key FIFO.  Present in keys_ iff it has waiting jobs or a
  /// worker is executing its head job.
  struct KeyQueue {
    std::deque<Job> waiting;
  };

  void worker_loop();
  void enqueue_locked(RequestMessage request, Completion done);

  Options options_;
  Dispatch dispatch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for runnable keys
  std::condition_variable space_cv_;  ///< submitters wait for capacity
  std::unordered_map<ObjectKey, KeyQueue, ObjectKeyHash> keys_;
  /// Keys with a runnable (not currently executing) head job, FIFO.
  std::deque<ObjectKey> ready_;
  std::size_t in_pool_ = 0;  ///< queued + executing
  std::uint64_t dispatched_ = 0;
  bool stopping_ = false;
  /// True after a try_submit bounced off queue_limit; cleared when the
  /// space callback fires (edge-triggered, so an idle pool never rings it).
  bool space_wanted_ = false;
  std::function<void()> space_callback_;
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace corba
