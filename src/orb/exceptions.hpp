// CORBA-style exception hierarchy.
//
// The CORBA specification distinguishes *system exceptions* (raised by the
// ORB runtime: communication failures, marshaling errors, missing objects)
// from *user exceptions* (declared in IDL and raised by servants).  Both are
// modelled here; system exceptions carry a completion status and a minor
// code exactly like their CORBA counterparts, because the fault-tolerance
// layer dispatches on them (COMM_FAILURE / TRANSIENT trigger recovery).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace corba {

/// Whether the remote operation had completed when the exception was raised.
/// Recovery logic uses this to decide whether a retry may duplicate work.
enum class CompletionStatus : std::uint8_t {
  completed_yes,
  completed_no,
  completed_maybe,
};

/// Returns the CORBA spelling ("COMPLETED_NO", ...) of a completion status.
std::string_view to_string(CompletionStatus status) noexcept;

/// Base class of all exceptions thrown by this library.
class Exception : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Base class of ORB-raised exceptions (CORBA "system exceptions").
class SystemException : public Exception {
 public:
  SystemException(std::string repo_id, std::string detail, std::uint32_t minor,
                  CompletionStatus completed);

  /// Repository id, e.g. "IDL:omg.org/CORBA/COMM_FAILURE:1.0".
  const std::string& repo_id() const noexcept { return repo_id_; }
  /// Implementation-specific minor code.
  std::uint32_t minor() const noexcept { return minor_; }
  CompletionStatus completed() const noexcept { return completed_; }
  /// Human readable detail (not part of the CORBA wire representation).
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::string repo_id_;
  std::string detail_;
  std::uint32_t minor_;
  CompletionStatus completed_;
};

// Minor codes used by this implementation.
namespace minor_code {
inline constexpr std::uint32_t unspecified = 0;
inline constexpr std::uint32_t connect_failed = 1;
inline constexpr std::uint32_t connection_lost = 2;
inline constexpr std::uint32_t host_down = 3;
inline constexpr std::uint32_t endpoint_unknown = 4;
inline constexpr std::uint32_t server_crashed = 5;
inline constexpr std::uint32_t session_resume_failed = 6;
inline constexpr std::uint32_t session_overflow = 7;
}  // namespace minor_code

#define CORBAFT_DEFINE_SYSTEM_EXCEPTION(NAME)                                \
  class NAME : public SystemException {                                      \
   public:                                                                   \
    explicit NAME(std::string detail = {},                                   \
                  std::uint32_t minor = minor_code::unspecified,             \
                  CompletionStatus completed =                               \
                      CompletionStatus::completed_maybe)                     \
        : SystemException("IDL:omg.org/CORBA/" #NAME ":1.0",                 \
                          std::move(detail), minor, completed) {}            \
    static constexpr std::string_view static_repo_id() {                     \
      return "IDL:omg.org/CORBA/" #NAME ":1.0";                              \
    }                                                                        \
  }

/// Communication failure: broken connection, dead host, crashed server.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(COMM_FAILURE);
/// Transient failure; the request may be retried.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(TRANSIENT);
/// The request's time-to-live expired before a reply arrived (a hung or
/// overloaded server; the call may or may not have executed).
CORBAFT_DEFINE_SYSTEM_EXCEPTION(TIMEOUT);
/// The object reference does not denote an existing object.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(OBJECT_NOT_EXIST);
/// An argument was invalid (also raised on Value type mismatches).
CORBAFT_DEFINE_SYSTEM_EXCEPTION(BAD_PARAM);
/// The operation name is not known by the target object.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(BAD_OPERATION);
/// The operation exists but is not implemented.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(NO_IMPLEMENT);
/// Error while marshaling or unmarshaling.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(MARSHAL);
/// Malformed object reference.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(INV_OBJREF);
/// Internal error in the ORB.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(INTERNAL);
/// Operation invoked on a nil reference or misused API.
CORBAFT_DEFINE_SYSTEM_EXCEPTION(BAD_INV_ORDER);

#undef CORBAFT_DEFINE_SYSTEM_EXCEPTION

/// Base class for IDL-declared exceptions raised by servants.  Skeletons
/// encode the repository id and detail into the reply; stubs rethrow a
/// matching registered subclass (see UserExceptionRegistry) or a plain
/// UnknownUserException.
class UserException : public Exception {
 public:
  UserException(std::string repo_id, std::string detail);

  const std::string& repo_id() const noexcept { return repo_id_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::string repo_id_;
  std::string detail_;
};

/// Raised on the client when a user exception arrives whose repository id
/// has no registered factory.
class UnknownUserException : public UserException {
 public:
  using UserException::UserException;
};

/// Rethrows the system exception named by `repo_id`; falls back to INTERNAL
/// for unknown ids.  Used by stubs when decoding reply messages.
[[noreturn]] void raise_system_exception(const std::string& repo_id,
                                         const std::string& detail,
                                         std::uint32_t minor,
                                         CompletionStatus completed);

}  // namespace corba
