#include "orb/value.hpp"

#include <limits>

namespace corba {

namespace {

constexpr int kMaxDecodeDepth = 64;

std::string_view kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::nil: return "nil";
    case Value::Kind::boolean: return "bool";
    case Value::Kind::int64: return "i64";
    case Value::Kind::uint64: return "u64";
    case Value::Kind::float64: return "f64";
    case Value::Kind::string: return "string";
    case Value::Kind::blob: return "blob";
    case Value::Kind::f64_seq: return "f64seq";
    case Value::Kind::sequence: return "seq";
  }
  return "?";
}

}  // namespace

Value::Kind Value::kind() const noexcept {
  return static_cast<Kind>(data_.index());
}

void Value::kind_error(Kind wanted) const {
  throw BAD_PARAM(std::string("value kind mismatch: have ") +
                      std::string(kind_name(kind())) + ", want " +
                      std::string(kind_name(wanted)),
                  minor_code::unspecified, CompletionStatus::completed_no);
}

bool Value::as_bool() const {
  if (const bool* v = std::get_if<bool>(&data_)) return *v;
  kind_error(Kind::boolean);
}

std::int64_t Value::as_i64() const {
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  if (const auto* v = std::get_if<std::uint64_t>(&data_)) {
    if (*v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
      return static_cast<std::int64_t>(*v);
  }
  kind_error(Kind::int64);
}

std::uint64_t Value::as_u64() const {
  if (const auto* v = std::get_if<std::uint64_t>(&data_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&data_)) {
    if (*v >= 0) return static_cast<std::uint64_t>(*v);
  }
  kind_error(Kind::uint64);
}

std::int32_t Value::as_i32() const {
  const std::int64_t v = as_i64();
  if (v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max())
    throw BAD_PARAM("integer out of 32-bit range", minor_code::unspecified,
                    CompletionStatus::completed_no);
  return static_cast<std::int32_t>(v);
}

std::uint32_t Value::as_u32() const {
  const std::uint64_t v = as_u64();
  if (v > std::numeric_limits<std::uint32_t>::max())
    throw BAD_PARAM("integer out of 32-bit range", minor_code::unspecified,
                    CompletionStatus::completed_no);
  return static_cast<std::uint32_t>(v);
}

double Value::as_f64() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&data_))
    return static_cast<double>(*v);
  if (const auto* v = std::get_if<std::uint64_t>(&data_))
    return static_cast<double>(*v);
  kind_error(Kind::float64);
}

const std::string& Value::as_string() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  kind_error(Kind::string);
}

const Blob& Value::as_blob() const {
  if (const auto* v = std::get_if<Blob>(&data_)) return *v;
  kind_error(Kind::blob);
}

const std::vector<double>& Value::as_f64_seq() const {
  if (const auto* v = std::get_if<std::vector<double>>(&data_)) return *v;
  kind_error(Kind::f64_seq);
}

const ValueSeq& Value::as_sequence() const {
  if (const auto* v = std::get_if<ValueSeq>(&data_)) return *v;
  kind_error(Kind::sequence);
}

ValueSeq& Value::as_sequence() {
  if (auto* v = std::get_if<ValueSeq>(&data_)) return *v;
  kind_error(Kind::sequence);
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

void Value::encode(CdrOutputStream& out) const {
  out.write_octet(static_cast<std::uint8_t>(kind()));
  switch (kind()) {
    case Kind::nil:
      break;
    case Kind::boolean:
      out.write_bool(std::get<bool>(data_));
      break;
    case Kind::int64:
      out.write_i64(std::get<std::int64_t>(data_));
      break;
    case Kind::uint64:
      out.write_u64(std::get<std::uint64_t>(data_));
      break;
    case Kind::float64:
      out.write_f64(std::get<double>(data_));
      break;
    case Kind::string:
      out.write_string(std::get<std::string>(data_));
      break;
    case Kind::blob:
      out.write_blob(std::span<const std::byte>(std::get<Blob>(data_)));
      break;
    case Kind::f64_seq:
      out.write_f64_seq(std::get<std::vector<double>>(data_));
      break;
    case Kind::sequence: {
      const auto& seq = std::get<ValueSeq>(data_);
      if (seq.size() >= UINT32_MAX)
        throw MARSHAL("sequence too long", minor_code::unspecified,
                      CompletionStatus::completed_no);
      out.write_u32(static_cast<std::uint32_t>(seq.size()));
      for (const Value& v : seq) v.encode(out);
      break;
    }
  }
}

Value Value::decode(CdrInputStream& in, int depth) {
  if (depth > kMaxDecodeDepth)
    throw MARSHAL("value nesting too deep", minor_code::unspecified,
                  CompletionStatus::completed_maybe);
  const auto tag = in.read_octet();
  switch (static_cast<Kind>(tag)) {
    case Kind::nil:
      return Value();
    case Kind::boolean:
      return Value(in.read_bool());
    case Kind::int64:
      return Value(in.read_i64());
    case Kind::uint64:
      return Value(in.read_u64());
    case Kind::float64:
      return Value(in.read_f64());
    case Kind::string:
      return Value(in.read_string());
    case Kind::blob:
      return Value(in.read_blob());
    case Kind::f64_seq:
      return Value(in.read_f64_seq());
    case Kind::sequence: {
      const std::uint32_t count = in.read_u32();
      // Each element takes at least one tag octet; reject counts that cannot
      // possibly fit in the remaining buffer (defends against hostile input).
      if (count > in.remaining())
        throw MARSHAL("sequence count exceeds buffer", minor_code::unspecified,
                      CompletionStatus::completed_maybe);
      ValueSeq seq;
      seq.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i)
        seq.push_back(decode(in, depth + 1));
      return Value(std::move(seq));
    }
  }
  throw MARSHAL("unknown value tag " + std::to_string(tag),
                minor_code::unspecified, CompletionStatus::completed_maybe);
}

std::string Value::to_debug_string() const {
  switch (kind()) {
    case Kind::nil:
      return "nil";
    case Kind::boolean:
      return std::get<bool>(data_) ? "true" : "false";
    case Kind::int64:
      return std::to_string(std::get<std::int64_t>(data_));
    case Kind::uint64:
      return std::to_string(std::get<std::uint64_t>(data_)) + "u";
    case Kind::float64:
      return std::to_string(std::get<double>(data_));
    case Kind::string:
      return "\"" + std::get<std::string>(data_) + "\"";
    case Kind::blob:
      return "blob[" + std::to_string(std::get<Blob>(data_).size()) + "]";
    case Kind::f64_seq:
      return "f64[" +
             std::to_string(std::get<std::vector<double>>(data_).size()) + "]";
    case Kind::sequence: {
      std::string s = "(";
      const auto& seq = std::get<ValueSeq>(data_);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i) s += ", ";
        s += seq[i].to_debug_string();
      }
      return s + ")";
    }
  }
  return "?";
}

std::size_t Value::encoded_size_estimate() const noexcept {
  switch (kind()) {
    case Kind::nil:
      return 1;
    case Kind::boolean:
      return 2;
    case Kind::int64:
    case Kind::uint64:
    case Kind::float64:
      return 9;
    case Kind::string:
      return 6 + std::get<std::string>(data_).size();
    case Kind::blob:
      return 5 + std::get<Blob>(data_).size();
    case Kind::f64_seq:
      return 5 + 8 * std::get<std::vector<double>>(data_).size();
    case Kind::sequence: {
      std::size_t n = 5;
      for (const Value& v : std::get<ValueSeq>(data_))
        n += v.encoded_size_estimate();
      return n;
    }
  }
  return 1;
}

}  // namespace corba
