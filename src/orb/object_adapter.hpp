// Object adapter: the server-side glue between object keys and servants.
//
// Plays the role of CORBA's POA in a reduced form: servants are activated
// under generated object keys, the adapter mints IORs for them, and incoming
// requests are dispatched to the servant with uniform exception-to-reply
// mapping.  Built-in operations (_is_a, _interface, _ping) are answered by
// the adapter itself, mirroring CORBA's implicit object operations.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "orb/dispatch_pool.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"
#include "orb/value.hpp"

namespace corba {

/// Transport identity of an adapter; copied into every IOR it mints.
struct EndpointProfile {
  std::string protocol;  ///< protocol::inproc or protocol::tcp
  std::string host;
  std::uint16_t port = 0;
  /// Id baked into generated object keys; 0 = allocate process-globally.
  std::uint64_t adapter_id = 0;
};

/// Base class of all servants.  Interface skeletons derive from this and
/// implement dispatch() by decoding tagged arguments into typed virtuals.
class Servant {
 public:
  virtual ~Servant() = default;

  /// Repository id of the most derived interface.
  virtual std::string_view repo_id() const noexcept = 0;

  /// Invokes `op` with tagged arguments; returns the tagged result.
  /// Throws BAD_OPERATION for unknown operations and UserException
  /// subclasses for IDL-declared errors.
  virtual Value dispatch(std::string_view op, const ValueSeq& args) = 0;

  /// Throws BAD_PARAM unless exactly `n` arguments were supplied.  Public so
  /// that the adapter and generic dispatch helpers can reuse it.
  static void check_arity(std::string_view op, const ValueSeq& args,
                          std::size_t n);
};

/// Thread-safe servant registry + request dispatcher.
class ObjectAdapter {
 public:
  explicit ObjectAdapter(EndpointProfile profile);

  ObjectAdapter(const ObjectAdapter&) = delete;
  ObjectAdapter& operator=(const ObjectAdapter&) = delete;

  const EndpointProfile& profile() const noexcept { return profile_; }

  /// Activates a servant under a fresh key and returns its IOR.  The hint
  /// becomes part of the key for debuggability.
  IOR activate(std::shared_ptr<Servant> servant, std::string_view name_hint = {});

  /// Activates a servant under a caller-chosen key (e.g. well-known service
  /// keys).  Throws BAD_PARAM if the key is already in use.
  IOR activate_with_key(ObjectKey key, std::shared_ptr<Servant> servant);

  /// Removes the servant; subsequent requests get OBJECT_NOT_EXIST.
  void deactivate(const ObjectKey& key);

  /// Returns the servant or nullptr.
  std::shared_ptr<Servant> find(const ObjectKey& key) const;

  std::size_t active_count() const;

  /// Dispatches a request to the target servant.  Never throws: all
  /// exceptions are converted into exception replies, mirroring how a real
  /// ORB isolates clients from server-side failures.
  ReplyMessage dispatch(const RequestMessage& request) noexcept;

  /// Starts the bounded dispatch thread pool used by dispatch_async().
  /// Idempotent; BAD_INV_ORDER if already started with different options.
  void enable_dispatch_pool(DispatchPool::Options options);

  /// Asynchronous dispatch: with a pool enabled the request is queued and a
  /// worker later invokes `done` (on its own thread, FIFO per object key);
  /// without one it runs inline on the caller.  `done` may be empty
  /// (oneway).  Blocks under backpressure when the pool is full.
  void dispatch_async(RequestMessage request, DispatchPool::Completion done);

  /// Drains and joins the pool.  Idempotent, safe without a pool.
  void stop_dispatch_pool();

  /// The pool, or nullptr when dispatch is inline.
  DispatchPool* dispatch_pool() const noexcept { return pool_.get(); }

 private:
  IOR make_ior(const std::shared_ptr<Servant>& servant, ObjectKey key) const;

  EndpointProfile profile_;
  mutable std::mutex mu_;
  std::unordered_map<ObjectKey, std::shared_ptr<Servant>, ObjectKeyHash>
      servants_;
  std::uint64_t next_key_ = 1;
  std::uint64_t adapter_id_;
  /// Created once by enable_dispatch_pool; guarded by pool_mu_ for creation,
  /// read lock-free afterwards (shared_ptr-like stability: never reset until
  /// destruction).
  mutable std::mutex pool_mu_;
  std::unique_ptr<DispatchPool> pool_;
};

}  // namespace corba
