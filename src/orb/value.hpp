// Self-describing value type used as the argument/result representation of
// all invocations.
//
// Real CORBA marshals arguments according to static IDL signatures; the
// Dynamic Invocation Interface then needs TypeCodes and Any to describe
// values at runtime.  This library uses one uniform representation instead:
// every argument is a tagged Value, CDR-encoded with a one-octet type tag.
// Statically typed stubs and skeletons convert between C++ types and Values
// at the API boundary, so client code keeps full type safety while DII,
// generic fault-tolerance proxies, and the naming service can handle
// requests generically.  (Documented as a deviation in DESIGN.md §2.)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "orb/cdr.hpp"
#include "orb/exceptions.hpp"

namespace corba {

class Value;
using ValueSeq = std::vector<Value>;
using Blob = std::vector<std::byte>;

/// Tagged dynamic value: nil, bool, i64, u64, f64, string, blob, a packed
/// double sequence, or a heterogeneous sequence of Values.
class Value {
 public:
  enum class Kind : std::uint8_t {
    nil = 0,
    boolean = 1,
    int64 = 2,
    uint64 = 3,
    float64 = 4,
    string = 5,
    blob = 6,
    f64_seq = 7,
    sequence = 8,
  };

  Value() noexcept : data_(Nil{}) {}
  Value(bool v) noexcept : data_(v) {}
  Value(std::int32_t v) noexcept : data_(static_cast<std::int64_t>(v)) {}
  Value(std::int64_t v) noexcept : data_(v) {}
  Value(std::uint32_t v) noexcept : data_(static_cast<std::uint64_t>(v)) {}
  Value(std::uint64_t v) noexcept : data_(v) {}
  Value(double v) noexcept : data_(v) {}
  Value(const char* v) : data_(std::string(v)) {}
  Value(std::string v) noexcept : data_(std::move(v)) {}
  Value(Blob v) noexcept : data_(std::move(v)) {}
  Value(std::vector<double> v) noexcept : data_(std::move(v)) {}
  Value(ValueSeq v) noexcept : data_(std::move(v)) {}

  static Value from_span(std::span<const double> v) {
    return Value(std::vector<double>(v.begin(), v.end()));
  }
  static Value from_bytes(std::span<const std::byte> v) {
    return Value(Blob(v.begin(), v.end()));
  }

  Kind kind() const noexcept;
  bool is_nil() const noexcept { return kind() == Kind::nil; }

  // Checked accessors: throw BAD_PARAM on kind mismatch.  Integer accessors
  // convert between signed/unsigned when the value is representable.
  bool as_bool() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  std::int32_t as_i32() const;
  std::uint32_t as_u32() const;
  double as_f64() const;
  const std::string& as_string() const;
  const Blob& as_blob() const;
  const std::vector<double>& as_f64_seq() const;
  const ValueSeq& as_sequence() const;
  ValueSeq& as_sequence();

  /// Deep structural equality.
  friend bool operator==(const Value& a, const Value& b);

  /// CDR encoding: one tag octet followed by the kind-specific payload.
  void encode(CdrOutputStream& out) const;
  static Value decode(CdrInputStream& in, int depth = 0);

  /// Compact single-line rendering for logs and error messages.
  std::string to_debug_string() const;

  /// Approximate size of the encoded representation, used by the simulator's
  /// network cost model.
  std::size_t encoded_size_estimate() const noexcept;

 private:
  struct Nil {
    friend bool operator==(const Nil&, const Nil&) { return true; }
  };
  using Data = std::variant<Nil, bool, std::int64_t, std::uint64_t, double,
                            std::string, Blob, std::vector<double>, ValueSeq>;
  Data data_;

  [[noreturn]] void kind_error(Kind wanted) const;
};

}  // namespace corba
