#include "orb/reactor.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/log.hpp"
#include "orb/object_adapter.hpp"
#include "orb/server_conn.hpp"

namespace corba {

namespace {

struct ReactorMetrics {
  obs::Counter& wakeups = obs::MetricsRegistry::global().counter(
      "transport.tcp.reactor.wakeups_total");
  obs::Counter& events = obs::MetricsRegistry::global().counter(
      "transport.tcp.reactor.events_total");
  obs::Counter& deferred_writes = obs::MetricsRegistry::global().counter(
      "transport.tcp.reactor.deferred_writes_total");
  obs::Counter& idle_harvested = obs::MetricsRegistry::global().counter(
      "transport.tcp.reactor.idle_harvested_total");
  obs::Gauge& registered = obs::MetricsRegistry::global().gauge(
      "transport.tcp.epoll_registered");
  /// Shared with the client transport: process-wide open TCP connections
  /// (the orbtop CONN column reads it through HealthReport).
  obs::Gauge& connections =
      obs::MetricsRegistry::global().gauge("transport.tcp.connections");
  /// Time one epoll batch spends being processed — how long every other
  /// ready connection on this loop waited.  A fat tail here is an I/O
  /// thread overloaded (or a servant sneaking work onto it), invisible in
  /// per-request latency until throughput collapses.
  obs::Histogram& loop_lag = obs::MetricsRegistry::global().histogram(
      "transport.tcp.reactor.loop_lag_s");
};

ReactorMetrics& reactor_metrics() {
  static ReactorMetrics metrics;
  return metrics;
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// recv() granularity per syscall.
constexpr std::size_t kReadChunk = 16 * 1024;
/// Per-connection byte cap per epoll wake: a firehose client cannot starve
/// its loop siblings (level-triggered EPOLLIN re-fires for the rest).
constexpr std::size_t kMaxReadPerWake = 256 * 1024;
/// Accept backoff after fd exhaustion (EMFILE/ENFILE).
constexpr double kAcceptBackoffS = 0.1;
/// Deadline-wheel sentinel "fd" for re-arming the listen socket.
constexpr int kListenRearmFd = -2;
/// Compact the read buffer once this much parsed prefix accumulates.
constexpr std::size_t kCompactThreshold = 64 * 1024;

}  // namespace

/// One reactor-owned server connection.  Read-side state (buffer, session,
/// stalled request) is touched only by the owning I/O thread; the write side
/// (pending-write queue, epoll interest mask) is shared with dispatch-pool
/// completion threads under `wmu`.
class ReactorConn final : public ServerConn,
                          public std::enable_shared_from_this<ReactorConn> {
 public:
  ReactorConn(int fd, Reactor* reactor, std::size_t loop_index)
      : fd_(fd), reactor_(reactor), loop_index_(loop_index) {}

  ~ReactorConn() override {
    if (fd_ >= 0) ::close(fd_);
  }

  ReactorConn(const ReactorConn&) = delete;
  ReactorConn& operator=(const ReactorConn&) = delete;

  void send_frame_bytes(std::vector<std::byte> bytes) noexcept override {
    std::lock_guard lock(wmu_);
    if (dead_.load(std::memory_order_acquire)) return;
    wq_.push_back(std::move(bytes));
    flush_locked();
  }

  void write_reply(const ReplyMessage& reply) noexcept override {
    try {
      CdrOutputStream body;
      reply.encode_body(body);
      send_frame_bytes(encode_frame(MessageType::reply, body));
    } catch (...) {
      // Encoding failed: nothing sensible to do from a completion thread.
    }
  }

  bool is_dead() const noexcept override {
    return dead_.load(std::memory_order_acquire);
  }

  /// Decoded request waiting out a full dispatch pool (EPOLLIN disarmed).
  /// Public so Reactor::Loop can park jobs orphaned by a reaped connection.
  struct StalledJob {
    RequestMessage request;
    DispatchPool::Completion done;
  };

 private:
  friend class Reactor;

  /// Drains the pending-write queue until empty or the socket would block
  /// (then arms EPOLLOUT).  Call with wmu_ held.
  void flush_locked() noexcept {
    while (!wq_.empty()) {
      const std::vector<std::byte>& head = wq_.front();
      while (woff_ < head.size()) {
        const ssize_t n = ::send(fd_, head.data() + woff_, head.size() - woff_,
                                 MSG_NOSIGNAL);
        if (n >= 0) {
          woff_ += static_cast<std::size_t>(n);
          continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!want_write_) {
            want_write_ = true;
            update_interest_locked();
            reactor_metrics().deferred_writes.inc();
          }
          return;
        }
        mark_dead_locked();
        return;
      }
      woff_ = 0;
      wq_.pop_front();
    }
    touch();
    if (want_write_) {
      want_write_ = false;
      update_interest_locked();
    }
    if (close_after_flush_) mark_dead_locked();
  }

  /// Re-publishes the EPOLLIN/EPOLLOUT interest mask (wmu_ held).  Both the
  /// I/O thread (back-pressure) and completion threads (deferred writes)
  /// change interest, which is why the mask lives under the write mutex.
  void update_interest_locked() noexcept {
    if (!registered_) return;
    epoll_event ev{};
    ev.events = (want_read_ ? EPOLLIN : 0u) | (want_write_ ? EPOLLOUT : 0u);
    ev.data.fd = fd_;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd_, &ev);
  }

  void mark_dead_locked() noexcept {
    if (dead_.exchange(true, std::memory_order_acq_rel)) return;
    wq_.clear();
    reactor_->request_reap(loop_index_, fd_);
  }

  void touch() noexcept {
    last_activity_.store(monotonic_seconds(), std::memory_order_relaxed);
  }

  const int fd_;
  Reactor* const reactor_;
  const std::size_t loop_index_;
  int epfd_ = -1;  ///< set at registration, before any writer can see us

  // --- read side: owning I/O thread only ------------------------------------
  std::vector<std::byte> rbuf_;
  std::size_t rlen_ = 0;  ///< valid bytes in rbuf_
  std::size_t rpos_ = 0;  ///< parse offset
  std::shared_ptr<ServerSession> session_;
  std::optional<StalledJob> stalled_;
  /// Set after answering an unknown message type with message_error: any
  /// further input is read (so HUP/EOF is still observed) but discarded,
  /// matching the legacy loop, which stops processing after a bad frame.
  bool discard_input_ = false;

  // --- write side: shared with completion threads under wmu_ ----------------
  std::mutex wmu_;
  std::deque<std::vector<std::byte>> wq_;
  std::size_t woff_ = 0;  ///< bytes of wq_.front() already written
  bool want_read_ = true;
  bool want_write_ = false;
  bool close_after_flush_ = false;
  bool registered_ = false;
  std::atomic<bool> dead_{false};
  std::atomic<double> last_activity_{0.0};
};

/// Per-I/O-thread state.  `conns`, `stalled` and the deadline wheel belong
/// to the owning thread; `pending_adds`/`pending_reaps` are the cross-thread
/// handoff, guarded by `mu` and signalled through the wake eventfd.
struct Reactor::Loop {
  std::size_t index = 0;
  int epfd = -1;
  int wake_fd = -1;
  int timer_fd = -1;
  std::thread thread;

  std::unordered_map<int, std::shared_ptr<ReactorConn>> conns;  ///< by fd
  std::vector<std::shared_ptr<ReactorConn>> stalled;
  /// Parked requests whose connection was reaped while the pool was still
  /// full; retried (ahead of `stalled`) on the next space callback so their
  /// replies reach the session replay buffer.
  std::vector<ReactorConn::StalledJob> orphans;
  /// Deadline wheel: absolute monotonic seconds -> connection fd (or the
  /// listen-rearm sentinel).  The timerfd is armed to the earliest entry.
  std::multimap<double, int> deadlines;
  double timer_armed_at = std::numeric_limits<double>::infinity();
  bool listen_paused = false;  ///< loop 0: EMFILE backoff in progress

  std::mutex mu;
  std::vector<std::shared_ptr<ReactorConn>> pending_adds;
  std::vector<int> pending_reaps;
  std::atomic<bool> retry_submits{false};
};

Reactor::Reactor(int listen_fd, std::shared_ptr<ObjectAdapter> adapter,
                 SessionTable& sessions, ReactorOptions options)
    : listen_fd_(listen_fd),
      adapter_(std::move(adapter)),
      sessions_(sessions),
      options_(options) {
  if (options_.io_threads < 1)
    throw BAD_PARAM("reactor requires >= 1 io thread");
}

Reactor::~Reactor() {
  stop();
  for (auto& loop : loops_) {
    if (loop->epfd >= 0) ::close(loop->epfd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    if (loop->timer_fd >= 0) ::close(loop->timer_fd);
  }
}

void Reactor::start() {
  if (started_) return;
  started_ = true;
  // The endpoint's listen socket is created blocking (the legacy accept loop
  // polls before each accept); the reactor accepts in bursts until EAGAIN,
  // so the fd itself must be non-blocking or loop 0 would park in accept4.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  loops_.reserve(options_.io_threads);
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    loop->timer_fd = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    if (loop->epfd < 0 || loop->wake_fd < 0 || loop->timer_fd < 0)
      throw COMM_FAILURE(std::string("reactor setup: ") + std::strerror(errno),
                         minor_code::unspecified,
                         CompletionStatus::completed_no);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    ev.data.fd = loop->timer_fd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->timer_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  // Loop 0 owns the listen socket — there is no separate acceptor thread;
  // io_threads IS the server's receive-side thread budget.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  for (auto& loop : loops_)
    loop->thread = std::thread([this, raw = loop.get()] { io_loop(*raw); });
}

void Reactor::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) wake(*loop);
  for (auto& loop : loops_)
    if (loop->thread.joinable()) loop->thread.join();
  for (auto& loop : loops_) {
    std::lock_guard lock(loop->mu);
    const auto registered = static_cast<double>(loop->conns.size());
    // pending_adds were counted at accept but never registered with epoll,
    // so they carry only the connections gauge.
    const auto open =
        registered + static_cast<double>(loop->pending_adds.size());
    if (registered > 0) reactor_metrics().registered.add(-registered);
    if (open > 0) reactor_metrics().connections.add(-open);
    // Dropping the map releases each connection; sockets with completions
    // still holding a reference stay open until the last reply is written.
    loop->conns.clear();
    loop->stalled.clear();
    loop->orphans.clear();
    loop->deadlines.clear();
    loop->pending_adds.clear();
    loop->pending_reaps.clear();
  }
}

void Reactor::notify_pool_space() noexcept {
  for (auto& loop : loops_) {
    loop->retry_submits.store(true, std::memory_order_release);
    wake(*loop);
  }
}

void Reactor::wake(Loop& loop) noexcept {
  if (loop.wake_fd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop.wake_fd, &one, sizeof(one));  // nonblocking; EAGAIN is fine
}

void Reactor::request_reap(std::size_t loop_index, int fd) noexcept {
  if (loop_index >= loops_.size()) return;
  Loop& loop = *loops_[loop_index];
  {
    std::lock_guard lock(loop.mu);
    loop.pending_reaps.push_back(fd);
  }
  wake(loop);
}

void Reactor::io_loop(Loop& loop) {
  std::vector<epoll_event> events(256);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(loop.epfd, events.data(), static_cast<int>(events.size()),
                     -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epfd gone: endpoint torn down
    }
    reactor_metrics().wakeups.inc();
    reactor_metrics().events.inc(static_cast<std::uint64_t>(n));
    const double batch_started = monotonic_seconds();
    bool woken = false;
    bool timer_fired = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(loop.wake_fd, &drain, sizeof(drain));
        woken = true;
        continue;
      }
      if (fd == loop.timer_fd) {
        std::uint64_t expirations = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(loop.timer_fd, &expirations, sizeof(expirations));
        timer_fired = true;
        continue;
      }
      if (fd == listen_fd_ && loop.index == 0) {
        handle_accept(loop);
        continue;
      }
      // Stale events for a connection reaped earlier in this batch miss the
      // lookup and are skipped — fds are never reused while still mapped,
      // because the connection owns its fd until the last reference drops.
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      const std::shared_ptr<ReactorConn> conn = it->second;
      if (events[i].events & EPOLLERR) {
        reap_conn(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        std::lock_guard lock(conn->wmu_);
        conn->flush_locked();
      }
      if (events[i].events & (EPOLLIN | EPOLLHUP)) {
        if (conn->stalled_) {
          // Interest is 0 while stalled, but HUP (like ERR) cannot be
          // masked out of epoll, and handle_readable must not consume
          // while a request is parked.  Reap instead of letting the
          // level-triggered HUP pin this loop at 100% CPU; the parked
          // request is salvaged for live sessions inside reap_conn.
          if (events[i].events & EPOLLHUP) reap_conn(loop, conn);
        } else {
          handle_readable(loop, conn);
        }
      }
      if (conn->is_dead()) reap_conn(loop, conn);
    }
    if (timer_fired) handle_timer(loop);
    // Cross-thread work *after* the events batch: a connection registered
    // here cannot alias a same-batch event for a just-freed fd.
    if (woken) handle_wake(loop);
    if (loop.retry_submits.exchange(false, std::memory_order_acq_rel))
      retry_stalled(loop);
    reactor_metrics().loop_lag.record(monotonic_seconds() - batch_started);
  }
}

void Reactor::handle_accept(Loop& loop) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of file descriptors: stop accepting for a beat instead of
        // spinning on the level-triggered listen event, and let in-flight
        // work (which may be on the verge of releasing fds) drain.
        log::emit(log::Level::warning, "reactor",
                  "accept failed (out of file descriptors); pausing accepts");
        if (!loop.listen_paused) {
          loop.listen_paused = true;
          ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
          schedule_deadline(loop, monotonic_seconds() + kAcceptBackoffS,
                            kListenRearmFd);
        }
        return;
      }
      if (errno == ECONNABORTED || errno == EPROTO)
        continue;  // the would-be client is already gone; keep accepting
      // Anything else (EBADF during teardown, EINVAL): bail out of the burst
      // rather than spin — level-triggered EPOLLIN re-fires if the listen
      // socket is still live and readable.
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    auto conn = std::make_shared<ReactorConn>(fd, this, target);
    conn->touch();
    reactor_metrics().connections.add(1);
    if (target == loop.index) {
      register_conn(loop, conn);
    } else {
      Loop& other = *loops_[target];
      {
        std::lock_guard lock(other.mu);
        other.pending_adds.push_back(std::move(conn));
      }
      wake(other);
    }
  }
}

void Reactor::register_conn(Loop& loop,
                            const std::shared_ptr<ReactorConn>& conn) {
  {
    std::lock_guard lock(conn->wmu_);
    conn->epfd_ = loop.epfd;
    conn->registered_ = true;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd_;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd_, &ev) != 0) {
    reactor_metrics().connections.add(-1);
    return;  // dropping the last reference closes the socket
  }
  loop.conns.emplace(conn->fd_, conn);
  reactor_metrics().registered.add(1);
  if (options_.idle_timeout_s > 0)
    schedule_deadline(loop, monotonic_seconds() + options_.idle_timeout_s,
                      conn->fd_);
}

void Reactor::reap_conn(Loop& loop, std::shared_ptr<ReactorConn> conn) {
  auto it = loop.conns.find(conn->fd_);
  if (it == loop.conns.end() || it->second != conn) return;
  ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd_, nullptr);
  {
    std::lock_guard lock(conn->wmu_);
    conn->registered_ = false;
  }
  loop.conns.erase(it);
  std::erase(loop.stalled, conn);
  reactor_metrics().registered.add(-1);
  reactor_metrics().connections.add(-1);
  if (conn->stalled_ && conn->session_) salvage_stalled(loop, *conn);
}

/// A reaped connection can hold a parked request whose seq the session has
/// already noted — the client's post-resume retransmit of that seq is
/// suppressed as a duplicate, so dropping the job here would lose the call
/// with no retry (the legacy blocking submit could never drop a noted
/// request).  Submit it anyway: the completion routes through
/// write_session_reply, which buffers into the session replay even though
/// this connection is gone.
void Reactor::salvage_stalled(Loop& loop, ReactorConn& conn) {
  ReactorConn::StalledJob job = std::move(*conn.stalled_);
  conn.stalled_.reset();
  DispatchPool* pool = adapter_->dispatch_pool();
  try {
    if (pool == nullptr) {
      adapter_->dispatch_async(std::move(job.request), std::move(job.done));
      return;
    }
    if (pool->try_submit(job.request, job.done)) return;
  } catch (const Exception&) {
    return;  // pool stopped: the endpoint is going down
  }
  // Pool still full: keep the job loop-side; the space callback retries it.
  loop.orphans.push_back(std::move(job));
}

void Reactor::handle_wake(Loop& loop) {
  std::vector<std::shared_ptr<ReactorConn>> adds;
  std::vector<int> reaps;
  {
    std::lock_guard lock(loop.mu);
    adds.swap(loop.pending_adds);
    reaps.swap(loop.pending_reaps);
  }
  for (const int fd : reaps) {
    auto it = loop.conns.find(fd);
    if (it != loop.conns.end() && it->second->is_dead())
      reap_conn(loop, it->second);
  }
  for (auto& conn : adds) register_conn(loop, conn);
}

void Reactor::handle_timer(Loop& loop) {
  const double now = monotonic_seconds();
  loop.timer_armed_at = std::numeric_limits<double>::infinity();
  while (!loop.deadlines.empty() && loop.deadlines.begin()->first <= now) {
    const int fd = loop.deadlines.begin()->second;
    loop.deadlines.erase(loop.deadlines.begin());
    if (fd == kListenRearmFd) {
      loop.listen_paused = false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      ::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
      continue;
    }
    auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) continue;
    // Copy, not reference: reap_conn erases the map entry this points into.
    const std::shared_ptr<ReactorConn> conn = it->second;
    const double expire =
        conn->last_activity_.load(std::memory_order_relaxed) +
        options_.idle_timeout_s;
    if (expire <= now && !conn->stalled_) {
      // Lazy wheel: entries are never removed on activity, just checked
      // against the connection's actual last-activity stamp here.
      reactor_metrics().idle_harvested.inc();
      reap_conn(loop, conn);
    } else {
      schedule_deadline(loop, std::max(expire, now + 0.001), fd);
    }
  }
  if (!loop.deadlines.empty())
    arm_timer(loop, loop.deadlines.begin()->first);
}

void Reactor::schedule_deadline(Loop& loop, double when, int fd) {
  loop.deadlines.emplace(when, fd);
  if (when < loop.timer_armed_at) arm_timer(loop, when);
}

void Reactor::arm_timer(Loop& loop, double when_mono_s) {
  loop.timer_armed_at = when_mono_s;
  const double delay = std::max(when_mono_s - monotonic_seconds(), 1e-3);
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(delay);
  spec.it_value.tv_nsec =
      static_cast<long>((delay - static_cast<double>(spec.it_value.tv_sec)) *
                        1e9);
  ::timerfd_settime(loop.timer_fd, 0, &spec, nullptr);
}

void Reactor::handle_readable(Loop& loop,
                              const std::shared_ptr<ReactorConn>& conn) {
  if (conn->stalled_) return;  // EPOLLIN is disarmed; stray level event
  std::size_t total = 0;
  bool eof = false;
  for (;;) {
    if (conn->rbuf_.size() - conn->rlen_ < kReadChunk)
      conn->rbuf_.resize(conn->rlen_ + kReadChunk);
    const ssize_t n = ::recv(conn->fd_, conn->rbuf_.data() + conn->rlen_,
                             conn->rbuf_.size() - conn->rlen_, 0);
    if (n > 0) {
      conn->rlen_ += static_cast<std::size_t>(n);
      total += static_cast<std::size_t>(n);
      if (total >= kMaxReadPerWake) break;  // fairness: let siblings run
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    reap_conn(loop, conn);
    return;
  }
  if (total > 0) {
    conn->touch();
    if (!parse_frames(loop, conn)) {
      reap_conn(loop, conn);
      return;
    }
  }
  if (eof) {
    // Orderly close: the receive side is done.  Like the legacy loop, the
    // socket itself stays open while dispatch-pool completions still hold
    // the connection — queued replies drain best-effort before the last
    // reference closes the fd.
    reap_conn(loop, conn);
  }
}

bool Reactor::parse_frames(Loop& loop,
                           const std::shared_ptr<ReactorConn>& conn) {
  try {
    while (!conn->stalled_ && !conn->discard_input_) {
      const std::size_t avail = conn->rlen_ - conn->rpos_;
      if (avail < MessageHeader::kEncodedSize) break;
      const std::span<const std::byte> head(conn->rbuf_.data() + conn->rpos_,
                                            MessageHeader::kEncodedSize);
      const MessageHeader header = MessageHeader::decode(head);  // may throw
      const std::size_t frame_size =
          MessageHeader::kEncodedSize + header.body_length;
      if (avail < frame_size) {
        // Partial frame: make room for the whole body up front so a big
        // frame arrives through one buffer growth, then wait for more bytes.
        if (conn->rbuf_.size() < conn->rpos_ + frame_size)
          conn->rbuf_.resize(conn->rpos_ + frame_size);
        break;
      }
      const std::span<const std::byte> body(
          conn->rbuf_.data() + conn->rpos_ + MessageHeader::kEncodedSize,
          header.body_length);
      // Consume before handling: a stalled request has already been decoded
      // out of the buffer, so the resume path must not see it again.
      conn->rpos_ += frame_size;
      if (!handle_frame(loop, conn, header, body)) return false;
    }
  } catch (const Exception&) {
    // Framing/marshal error: drop the connection.  The client sees
    // COMM_FAILURE, which is exactly what a real ORB produces.
    return false;
  }
  // After a message_error the legacy loop stops processing input entirely;
  // discard whatever valid frames were buffered behind the bad one.
  if (conn->discard_input_) conn->rpos_ = conn->rlen_;
  if (conn->rpos_ == conn->rlen_) {
    conn->rpos_ = conn->rlen_ = 0;
  } else if (conn->rpos_ >= kCompactThreshold) {
    std::memmove(conn->rbuf_.data(), conn->rbuf_.data() + conn->rpos_,
                 conn->rlen_ - conn->rpos_);
    conn->rlen_ -= conn->rpos_;
    conn->rpos_ = 0;
  }
  return true;
}

bool Reactor::handle_frame(Loop& loop,
                           const std::shared_ptr<ReactorConn>& conn,
                           const MessageHeader& header,
                           std::span<const std::byte> body) {
  switch (header.type) {
    case MessageType::close_connection:
      return false;
    case MessageType::session_hello: {
      CdrInputStream in(body, header.byte_order);
      const SessionHello hello = SessionHello::decode_body(in);
      conn->session_ =
          server_detail::handle_session_hello(sessions_, hello, conn);
      return !conn->is_dead();
    }
    case MessageType::request: {
      CdrInputStream in(body, header.byte_order);
      RequestMessage request = RequestMessage::decode_body(in);
      if (conn->session_ &&
          !server_detail::note_session_request(conn->session_, request))
        return true;  // replayed duplicate: suppressed, never re-executed
      return submit_request(loop, conn, std::move(request));
    }
    default: {
      // Unknown message type: answer message_error, then close once the
      // error frame has left the pending-write queue.
      CdrOutputStream empty;
      conn->send_frame_bytes(encode_frame(MessageType::message_error, empty));
      std::lock_guard lock(conn->wmu_);
      if (conn->wq_.empty())
        return false;  // already flushed inline: drop now
      conn->close_after_flush_ = true;
      conn->want_read_ = false;
      conn->update_interest_locked();
      conn->discard_input_ = true;  // stop parsing; parse_frames drops the rest
      return true;  // reaped via mark_dead once the flush completes
    }
  }
}

bool Reactor::submit_request(Loop& loop,
                             const std::shared_ptr<ReactorConn>& conn,
                             RequestMessage request) {
  DispatchPool::Completion done;
  if (request.response_expected) {
    const std::shared_ptr<ServerConn> carrier = conn;
    if (conn->session_)
      done = [session = conn->session_, carrier](ReplyMessage reply) {
        server_detail::write_session_reply(session, carrier, std::move(reply));
      };
    else
      done = [carrier](ReplyMessage reply) { carrier->write_reply(reply); };
  }
  DispatchPool* pool = adapter_->dispatch_pool();
  if (pool == nullptr) {
    // dispatch_threads = 0: inline dispatch on the I/O thread, the
    // event-driven analogue of the legacy inline-on-receive-thread mode.
    adapter_->dispatch_async(std::move(request), std::move(done));
    return true;
  }
  try {
    if (pool->try_submit(request, done)) return true;
  } catch (const Exception&) {
    return false;  // pool stopped: the endpoint is going down
  }
  // Pool at capacity: park the request, stop reading this connection, and
  // let TCP flow control push back to the client.  The pool's space
  // callback wakes this loop to retry.
  conn->stalled_.emplace(
      ReactorConn::StalledJob{std::move(request), std::move(done)});
  {
    std::lock_guard lock(conn->wmu_);
    conn->want_read_ = false;
    conn->update_interest_locked();
  }
  loop.stalled.push_back(conn);
  return true;
}

void Reactor::retry_stalled(Loop& loop) {
  DispatchPool* pool = adapter_->dispatch_pool();
  // Orphaned jobs from reaped connections go first: their seqs were noted
  // before anything now parked on a live connection.
  while (!loop.orphans.empty()) {
    ReactorConn::StalledJob& job = loop.orphans.front();
    try {
      if (pool != nullptr && !pool->try_submit(job.request, job.done))
        return;  // still full: the next space callback retries everything
      if (pool == nullptr)
        adapter_->dispatch_async(std::move(job.request), std::move(job.done));
    } catch (const Exception&) {
      // pool stopped: the endpoint is going down, drop the job
    }
    loop.orphans.erase(loop.orphans.begin());
  }
  std::vector<std::shared_ptr<ReactorConn>> stalled;
  stalled.swap(loop.stalled);
  for (std::size_t i = 0; i < stalled.size(); ++i) {
    const std::shared_ptr<ReactorConn>& conn = stalled[i];
    if (conn->is_dead() || !conn->stalled_) continue;
    bool accepted = false;
    try {
      accepted = pool == nullptr ||
                 pool->try_submit(conn->stalled_->request, conn->stalled_->done);
    } catch (const Exception&) {
      reap_conn(loop, conn);
      continue;
    }
    if (!accepted) {
      // Still full: keep this and every remaining connection parked (the
      // next space callback retries them all).
      loop.stalled.insert(loop.stalled.end(), stalled.begin() + i,
                          stalled.end());
      return;
    }
    conn->stalled_.reset();
    // Drain whatever frames were already buffered (this may stall again,
    // putting the connection back on the list), then resume reading.
    if (!parse_frames(loop, conn)) {
      reap_conn(loop, conn);
      continue;
    }
    if (!conn->stalled_) {
      std::lock_guard lock(conn->wmu_);
      conn->want_read_ = true;
      conn->update_interest_locked();
    }
  }
}

}  // namespace corba
