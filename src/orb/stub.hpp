// Stub support: the client-side base class that hand-written interface
// stubs derive from (standing in for IDL-compiler output).
//
// Stub methods marshal typed arguments into tagged Values and perform the
// invocation through the ORB.  The protected rebind() hook is what makes the
// paper's proxy pattern work: "this proxy class is derived from the stub
// class and therefore provides all of the methods of the stub class" (§3) —
// a fault-tolerance proxy retargets its inherited stub at a freshly
// restarted service after recovery.
#pragma once

#include <string_view>
#include <utility>

#include "orb/orb.hpp"

namespace corba {

class StubBase {
 public:
  StubBase() = default;
  explicit StubBase(ObjectRef ref) : ref_(std::move(ref)) {}
  virtual ~StubBase() = default;

  bool is_nil() const noexcept { return ref_.is_nil(); }
  const ObjectRef& ref() const noexcept { return ref_; }

  /// Remote type check.
  bool is_a(std::string_view repo_id) const { return ref_.is_a(repo_id); }

 protected:
  /// Synchronous invocation helper used by generated-style stub methods.
  Value call(std::string_view op, ValueSeq args) const {
    return ref_.invoke(op, std::move(args));
  }

  /// Retargets the stub (fault-tolerance proxies use this on recovery).
  void rebind(ObjectRef ref) { ref_ = std::move(ref); }

  ObjectRef ref_;
};

}  // namespace corba
