// Server-side connection abstraction shared by the two receive paths.
//
// The TCP endpoint has two server receive implementations — the legacy
// thread-per-connection loop (blocking sockets) and the epoll reactor
// (reactor.hpp) — but exactly one set of protocol semantics: session
// handshakes, duplicate suppression, reply buffering for replay, and the
// batched-failure behaviour the client transport and the FT layer were
// written against.  ServerConn is the seam: it abstracts "write a frame to
// this client, in order, best-effort" so the session helpers below (and the
// dispatch-pool completions) are byte-for-byte identical in both modes.
//
// Ordering contract: send_frame_bytes() calls made under one lock (the
// session mutex, or any single caller) reach the wire in call order.  The
// legacy connection writes synchronously under its write mutex; the reactor
// connection appends to a pending-write queue drained in FIFO order on
// EPOLLOUT.  Either way a failure marks the connection dead instead of
// throwing — completions run on dispatch-pool threads where there is nobody
// to catch.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "orb/message.hpp"
#include "orb/session.hpp"

namespace corba {

/// Write side of one server connection (see file comment).  Completions and
/// session state hold it shared: the underlying socket stays open until the
/// last queued reply for the connection has been written (or dropped).
class ServerConn {
 public:
  virtual ~ServerConn() = default;

  /// Writes one fully encoded frame (header included), preserving the order
  /// of calls made under a common lock.  Marks the connection dead on
  /// failure instead of throwing.
  virtual void send_frame_bytes(std::vector<std::byte> bytes) noexcept = 0;

  /// Encodes and writes a sessionless reply.  (The session path always goes
  /// through write_session_reply, which pre-encodes for the replay buffer.)
  virtual void write_reply(const ReplyMessage& reply) noexcept = 0;

  /// True once a write failed or the peer vanished; a dead connection
  /// silently drops further writes.
  virtual bool is_dead() const noexcept = 0;
};

namespace server_detail {

/// Stamps session seq/ack on `reply`, buffers the encoded frame for replay,
/// and writes it to the session's *current* carrier (which may have changed
/// since the request arrived — a completion finishing after a resume lands
/// on the new socket), falling back to the connection the request came in
/// on.  Holding the session mutex across assignment and write keeps reply
/// wire order equal to reply seq order per session — the client's cumulative
/// highest-reply bookkeeping (and therefore replay) depends on it.
void write_session_reply(const std::shared_ptr<ServerSession>& session,
                         const std::shared_ptr<ServerConn>& fallback,
                         ReplyMessage reply) noexcept;

/// Handles one decoded session_hello on `connection`: creates or resumes the
/// session in `table`, installs `connection` as the session's carrier, and
/// writes the accept frame plus any replayed replies (all under the session
/// mutex, so a completing dispatch cannot interleave a fresh reply before
/// the replayed ones).  Returns the session, or nullptr when the hello was
/// rejected (unknown/stale id, or a gapped reply buffer made an exactly-once
/// resume impossible) — the reject accept frame has already been written.
std::shared_ptr<ServerSession> handle_session_hello(
    SessionTable& table, const SessionHello& hello,
    const std::shared_ptr<ServerConn>& connection);

/// Session bookkeeping for one decoded request: applies the piggybacked
/// cumulative ack and suppresses replayed duplicates.  Returns false when
/// the request is a duplicate that must NOT be dispatched again (its reply
/// reaches the client through the session's reply buffer).
bool note_session_request(const std::shared_ptr<ServerSession>& session,
                          const RequestMessage& request);

}  // namespace server_detail

/// Raises the process's RLIMIT_NOFILE soft limit toward min(want, hard
/// limit) and returns the resulting soft limit.  Emits a log warning when
/// the result is below `want` (a C10K test or bench on a default 1024
/// ulimit would otherwise fail with confusing EMFILE noise).  Idempotent
/// and safe to call from any harness.
std::size_t raise_nofile_soft_limit(std::size_t want);

}  // namespace corba
