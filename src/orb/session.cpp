#include "orb/session.hpp"

namespace corba {

SessionMetrics& session_metrics() {
  static SessionMetrics metrics;
  return metrics;
}

void RetransmitBuffer::append(std::uint64_t seq, std::uint64_t request_id,
                              std::vector<std::byte> bytes) {
  bytes_ += bytes.size();
  session_metrics().buffered_bytes.add(static_cast<double>(bytes.size()));
  frames_.push_back(SessionFrame{seq, request_id, std::move(bytes)});
}

std::size_t RetransmitBuffer::ack(std::uint64_t ack_seq) {
  std::size_t evicted = 0;
  while (!frames_.empty() && frames_.front().seq <= ack_seq) {
    bytes_ -= frames_.front().bytes.size();
    session_metrics().buffered_bytes.add(
        -static_cast<double>(frames_.front().bytes.size()));
    frames_.pop_front();
    ++evicted;
  }
  return evicted;
}

std::optional<SessionFrame> RetransmitBuffer::evict_oldest() {
  if (frames_.empty()) return std::nullopt;
  SessionFrame frame = std::move(frames_.front());
  frames_.pop_front();
  bytes_ -= frame.bytes.size();
  session_metrics().buffered_bytes.add(
      -static_cast<double>(frame.bytes.size()));
  return frame;
}

std::vector<const SessionFrame*> RetransmitBuffer::after(
    std::uint64_t peer_highest) const {
  std::vector<const SessionFrame*> out;
  for (const SessionFrame& frame : frames_)
    if (frame.seq > peer_highest) out.push_back(&frame);
  return out;
}

void RetransmitBuffer::release_gauge() noexcept {
  if (bytes_ > 0)
    session_metrics().buffered_bytes.add(-static_cast<double>(bytes_));
  bytes_ = 0;
  frames_.clear();
}

std::shared_ptr<ServerSession> SessionTable::create() {
  std::lock_guard lock(mu_);
  auto session = std::make_shared<ServerSession>(next_id_++, reply_limit_);
  // Cap the table: drop the oldest session first.  A client resuming a
  // culled session is rejected and falls back to batched failure, exactly
  // like a stale session after a server restart.
  while (sessions_.size() >= max_sessions_)
    sessions_.erase(sessions_.begin());
  sessions_.emplace(session->id, session);
  return session;
}

std::shared_ptr<ServerSession> SessionTable::find(std::uint64_t id) const {
  std::lock_guard lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::size_t SessionTable::size() const {
  std::lock_guard lock(mu_);
  return sessions_.size();
}

}  // namespace corba
