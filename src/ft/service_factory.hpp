// Service factories: (re)starting service instances on a chosen host.
//
// Recovery needs someone who can "start a new server (using the checkpoint)"
// (§3) on a machine that is still alive.  Each workstation runs one
// ServiceFactory object; a factory holds a registry of service types it can
// instantiate and activates fresh servants on its local ORB.  The
// fault-tolerance proxy asks Winner for the best host, calls that host's
// factory, restores the checkpoint into the new instance and re-targets
// itself — the same mechanism also implements load-driven migration.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "orb/object_adapter.hpp"
#include "orb/orb.hpp"
#include "orb/stub.hpp"

namespace ft {

inline constexpr std::string_view kServiceFactoryRepoId =
    "IDL:corbaft/ft/ServiceFactory:1.0";

struct UnknownServiceType : corba::UserException {
  explicit UnknownServiceType(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/ft/UnknownServiceType:1.0";
  }
};

/// Maps service type names to servant constructors.  Shared by all
/// factories of one deployment so every host can instantiate every type.
class ServantFactoryRegistry {
 public:
  using Creator = std::function<std::shared_ptr<corba::Servant>()>;

  void register_type(const std::string& service_type, Creator creator);
  std::shared_ptr<corba::Servant> create(const std::string& service_type) const;
  std::vector<std::string> service_types() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Creator> creators_;
};

/// Per-host factory servant.
class ServiceFactoryServant final : public corba::Servant {
 public:
  ServiceFactoryServant(std::weak_ptr<corba::ORB> orb, std::string host,
                        std::shared_ptr<ServantFactoryRegistry> registry);

  std::string_view repo_id() const noexcept override {
    return kServiceFactoryRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

  /// Number of instances created (telemetry for tests/benches).
  std::uint64_t created() const noexcept { return created_; }

 private:
  std::weak_ptr<corba::ORB> orb_;
  std::string host_;
  std::shared_ptr<ServantFactoryRegistry> registry_;
  std::uint64_t created_ = 0;
};

/// Client-side stub.
class ServiceFactoryStub final : public corba::StubBase {
 public:
  ServiceFactoryStub() = default;
  explicit ServiceFactoryStub(corba::ObjectRef ref)
      : StubBase(std::move(ref)) {}

  /// Creates a fresh instance of `service_type`; raises UnknownServiceType.
  corba::ObjectRef create(const std::string& service_type) const;
  std::vector<std::string> service_types() const;
  std::string host() const;
};

}  // namespace ft
