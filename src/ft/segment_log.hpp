// Log-structured checkpoint segments: the shared core of every store
// backend and of the shard replication catch-up stream.
//
// PR 2 gave both checkpoint backends the same shape — a full base snapshot
// plus a bounded chain of encoded deltas, compacted once the chain grows
// past the policy bound — but each backend carried its own copy of the
// chain bookkeeping and validation rules.  The sharded store needs that
// machinery a third time (a follower that missed forwards asks the primary
// for the *segment suffix* since its head instead of a full snapshot), so
// this module generalizes it:
//
//   * LogSegment / CheckpointLog — the value types: one appended delta, and
//     a transferable slice of a key's log (optionally anchored by a base).
//     CheckpointLog round-trips through corba::Value, so a catch-up payload
//     travels the wire like any other argument.
//   * SegmentLog — the in-memory log for one key (MemoryCheckpointStore's
//     per-key entry, ReplicatingStore's source of catch-up suffixes).
//   * validate_chain — the crash-recovery rule both file and replicated
//     stores apply to an unvalidated segment list: drop stale leftovers,
//     drop everything after a gap (orphans of an interrupted write).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "orb/value.hpp"

namespace ft {

/// Compaction policy for delta chains: a key's chain collapses into a new
/// full base snapshot once it holds `max_chain` deltas or once the chain's
/// payload bytes exceed the base size (whichever comes first), bounding
/// both replay work on load and storage growth.
struct DeltaPolicy {
  std::uint32_t max_chain = 8;
};

/// One appended delta segment: `delta` is a CDR-encoded ft::StateDelta
/// diffed against the state at `base_version`.
struct LogSegment {
  std::uint64_t version = 0;
  std::uint64_t base_version = 0;
  corba::Blob delta;
};

/// A transferable slice of one key's log.  Two shapes:
///   * suffix (has_base == false): segments chained onto state the receiver
///     already holds — the cheap catch-up path;
///   * full (has_base == true): a base snapshot plus its current chain —
///     what a receiver with nothing (or diverged state) gets.
struct CheckpointLog {
  bool has_base = false;
  std::uint64_t base_version = 0;
  corba::Blob base;
  std::vector<LogSegment> segments;

  bool empty() const noexcept { return !has_base && segments.empty(); }
  /// Version the log materializes to (the last segment's, else the base's).
  std::uint64_t head_version() const noexcept {
    return segments.empty() ? base_version : segments.back().version;
  }

  /// Wire round-trip (the `fetch_log` operation's reply payload).
  corba::Value to_value() const;
  static CheckpointLog from_value(const corba::Value& value);
};

/// Materializes the state a full log describes (base + replay).  Throws
/// corba::BAD_PARAM when the log has no base.
corba::Blob materialize(const CheckpointLog& log);

/// Shared rejection helpers, so every backend raises byte-identical
/// BAD_PARAM diagnostics for the two contract violations.
[[noreturn]] void throw_stale_version(std::uint64_t version,
                                      std::uint64_t stored);
[[noreturn]] void throw_base_mismatch(std::uint64_t base_version,
                                      std::uint64_t stored);

/// Crash-recovery chain validation: given the base's version and the
/// candidate segments sorted by version, partitions them into the
/// applicable chain (`keep`) and discardable orphans — segments at or below
/// the base (stale leftovers from before a compaction) and segments whose
/// declared base breaks the chain (crash-restart gap; everything after a
/// gap is unreachable too).
struct ChainSplit {
  std::vector<std::size_t> keep;
  std::vector<std::size_t> orphans;
};
ChainSplit validate_chain(std::uint64_t base_version,
                          std::span<const LogSegment> segments);

/// In-memory log for one key: base snapshot + bounded delta chain with
/// policy-driven compaction.  Enforces the store contract (monotone
/// versions, exact base match) with the shared BAD_PARAM diagnostics.
class SegmentLog {
 public:
  explicit SegmentLog(DeltaPolicy policy = {}) : policy_(policy) {}

  /// Head version; 0 when nothing was ever stored.
  std::uint64_t version() const noexcept {
    return chain_.empty() ? base_version_ : chain_.back().version;
  }
  bool empty() const noexcept { return base_version_ == 0 && chain_.empty(); }

  /// Full snapshot: replaces the base and clears the chain.  Throws
  /// corba::BAD_PARAM when `version` is not newer than the head.
  void put_full(std::uint64_t version, corba::Blob state);

  /// Appends one delta.  Throws corba::BAD_PARAM when the log is empty,
  /// `version` is stale, or `base_version` is not the current head.
  /// Returns true when the append triggered a compaction.
  bool append_delta(std::uint64_t base_version, std::uint64_t version,
                    corba::Blob delta);

  /// Base + chain replay — always a full state blob.
  corba::Blob materialize() const;

  /// The log's content from `since` forward: a segment suffix when the
  /// chain still anchors at `since` (the receiver holds that state), the
  /// full log otherwise.  `since` == version() yields an empty suffix.
  CheckpointLog log_since(std::uint64_t since) const;

  std::uint64_t base_version() const noexcept { return base_version_; }
  const corba::Blob& base() const noexcept { return base_; }
  const std::vector<LogSegment>& segments() const noexcept { return chain_; }
  std::size_t chain_payload() const noexcept { return chain_payload_; }

 private:
  DeltaPolicy policy_;
  std::uint64_t base_version_ = 0;
  corba::Blob base_;
  std::vector<LogSegment> chain_;
  std::size_t chain_payload_ = 0;
};

}  // namespace ft
