#include "ft/checkpoint_pipeline.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "orb/log.hpp"

namespace ft {

namespace {

struct PipelineMetrics {
  obs::Counter& stores =
      obs::MetricsRegistry::global().counter("ft.pipeline.stores_total");
  obs::Counter& delta_stores =
      obs::MetricsRegistry::global().counter("ft.pipeline.delta_stores_total");
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("ft.pipeline.failures_total");
  obs::Counter& coalesced =
      obs::MetricsRegistry::global().counter("ft.pipeline.coalesced_total");
  obs::Counter& bytes_shipped =
      obs::MetricsRegistry::global().counter("ft.pipeline.bytes_shipped_total");
  obs::Counter& delta_fallbacks = obs::MetricsRegistry::global().counter(
      "ft.checkpoint.delta_fallbacks_total");
  obs::Histogram& store_latency =
      obs::MetricsRegistry::global().histogram("ft.pipeline.store_latency_s");
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

}  // namespace

std::string_view to_string(CheckpointMode mode) noexcept {
  switch (mode) {
    case CheckpointMode::full_sync:
      return "full-sync";
    case CheckpointMode::delta_sync:
      return "delta-sync";
    case CheckpointMode::delta_async:
      return "delta-async";
  }
  return "unknown";
}

CheckpointPipeline::CheckpointPipeline(Config config)
    : config_(std::move(config)) {
  if (!config_.store) throw corba::BAD_PARAM("pipeline requires a store");
  if (config_.key.empty()) throw corba::BAD_PARAM("pipeline requires a key");
  if (config_.chunk_size == 0)
    throw corba::BAD_PARAM("chunk_size must be positive");
  if (config_.depth == 0) throw corba::BAD_PARAM("depth must be >= 1");
  if (config_.attempts < 1) throw corba::BAD_PARAM("attempts must be >= 1");
}

CheckpointPipeline::~CheckpointPipeline() {
  *alive_ = false;
  if (worker_.joinable()) {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    worker_.join();
  }
}

void CheckpointPipeline::note_acked(std::uint64_t version,
                                    const corba::Blob& state) {
  if (config_.mode == CheckpointMode::full_sync) return;
  acked_version_ = version;
  acked_size_ = state.size();
  acked_fingerprints_ = chunk_fingerprints(state, config_.chunk_size);
  have_acked_ = true;
}

void CheckpointPipeline::ship_now(std::uint64_t version,
                                  const corba::Blob& state) {
  PipelineMetrics& metrics = pipeline_metrics();
  obs::Span span("checkpoint.store", config_.key);
  const bool timed = span.active();
  const double start = timed ? obs::now() : 0.0;
  if (config_.mode != CheckpointMode::full_sync && have_acked_) {
    const StateDelta delta = StateDelta::diff(
        acked_fingerprints_, acked_size_, state, config_.chunk_size);
    // A delta only pays off when the shipped payload is smaller than the
    // state itself; a mostly-dirty state goes as a full snapshot (which
    // also resets the store's chain).
    if (delta.payload_bytes() < state.size()) {
      const corba::Blob encoded = delta.encode();
      try {
        config_.store->store_delta(config_.key, acked_version_, version,
                                   encoded);
        bytes_shipped_ += encoded.size();
        note_acked(version, state);
        ++delta_stores_;
        metrics.stores.inc();
        metrics.delta_stores.inc();
        metrics.bytes_shipped.inc(encoded.size());
        obs::flight_event(obs::FlightEvent::checkpoint_ship, config_.key,
                          version, encoded.size());
        if (timed) metrics.store_latency.record(obs::now() - start);
        return;
      } catch (const corba::BAD_PARAM&) {
        // The store's view of the base moved (wiped, replaced, another
        // writer won, or shard failover promoted a follower that missed
        // the base) — re-anchor with a full snapshot.  A storm of these
        // is the signature of a lagging promoted replica, so it is
        // counted and flight-recorded.
        have_acked_ = false;
        ++delta_fallbacks_;
        metrics.delta_fallbacks.inc();
        obs::flight_event(obs::FlightEvent::delta_fallback, config_.key,
                          acked_version_, version);
      }
    }
  }
  config_.store->store(config_.key, version, state);
  bytes_shipped_ += state.size();
  note_acked(version, state);
  ++full_stores_;
  metrics.stores.inc();
  metrics.bytes_shipped.inc(state.size());
  obs::flight_event(obs::FlightEvent::checkpoint_ship, config_.key, version,
                    state.size());
  if (timed) metrics.store_latency.record(obs::now() - start);
}

bool CheckpointPipeline::try_ship(std::uint64_t version,
                                  const corba::Blob& state) {
  for (int attempt = 1;; ++attempt) {
    try {
      ship_now(version, state);
      return true;
    } catch (const corba::BAD_PARAM&) {
      // A newer version is already stored (out-of-order completion after a
      // flush raced ahead).  The store holds state at least as new as this
      // capture, so recovery is unaffected — treat as superseded.
      have_acked_ = false;
      return true;
    } catch (const corba::SystemException&) {
      if (attempt >= config_.attempts) {
        have_acked_ = false;  // unknown store state: next ship re-anchors
        ++failures_;
        pipeline_metrics().failures.inc();
        obs::timeline_event("pipeline", config_.key,
                            "dropped checkpoint v" + std::to_string(version) +
                                " after " + std::to_string(attempt) +
                                " attempts");
        corba::log::emit(corba::log::Level::warning, "ft.pipeline",
                         "async checkpoint " + std::to_string(version) +
                             " of '" + config_.key + "' dropped after " +
                             std::to_string(attempt) + " attempts");
        return false;
      }
    }
  }
}

void CheckpointPipeline::submit(std::uint64_t version, corba::Blob state) {
  if (!async()) {
    ship_now(version, state);
    return;
  }
  enqueue({version, std::move(state)});
}

void CheckpointPipeline::enqueue(Item item) {
  {
    std::lock_guard lock(mu_);
    if (queue_.size() >= config_.depth) {
      // Back-pressure by coalescing: the oldest pending capture is strictly
      // superseded by every newer one, so dropping it never regresses the
      // state recovery can see.
      queue_.pop_front();
      ++coalesced_;
      pipeline_metrics().coalesced.inc();
    }
    queue_.push_back(std::move(item));
  }
  if (config_.defer) {
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      config_.defer([this, alive = alive_] {
        if (!*alive) return;
        drain_scheduled_ = false;
        drain_deferred();
      });
    }
  } else {
    ensure_worker();
    wake_.notify_one();
  }
}

void CheckpointPipeline::drain_deferred() {
  // The store round-trip below may pump the simulator's event queue, which
  // can fire this pipeline's own next drain event re-entrantly; the guard
  // turns the nested drain into a no-op and the outer loop finishes the
  // queue.
  if (draining_) return;
  draining_ = true;
  for (;;) {
    Item item;
    {
      std::lock_guard lock(mu_);
      if (queue_.empty()) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try_ship(item.version, item.state);
  }
  draining_ = false;
}

void CheckpointPipeline::ensure_worker() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { worker_loop(); });
}

void CheckpointPipeline::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left to ship
      item = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    try_ship(item.version, item.state);
    {
      std::lock_guard lock(mu_);
      in_flight_ = false;
    }
    idle_.notify_all();
  }
}

void CheckpointPipeline::flush() {
  if (!async()) return;
  if (config_.defer) {
    // Single-threaded deferred backend: drain inline.  Intentionally
    // ignores the reentrancy guard — a flush that arrives while an item is
    // mid-ship still empties the rest of the queue; versioning makes the
    // resulting out-of-order completions safe (stale writes are rejected
    // and treated as superseded).
    const bool was_draining = draining_;
    draining_ = false;
    drain_deferred();
    draining_ = was_draining;
    return;
  }
  if (!worker_.joinable()) return;
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

}  // namespace ft
