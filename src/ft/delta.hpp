// Delta checkpoints: chunked state diffs.
//
// The paper ships the server object's *entire* state to the checkpoint
// store after every successful call and calls that store "rather
// inefficient".  This module supplies the incremental alternative (in the
// spirit of libckpt-style incremental checkpointing): the state blob is cut
// into fixed-size chunks, each chunk is fingerprinted with 64-bit FNV-1a,
// and only the chunks whose fingerprint moved since the last acknowledged
// checkpoint travel to the store.  The store keeps a bounded delta chain
// per key and materializes base + replay on load, so readers (recovery,
// migration) never see anything but a full state blob.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "orb/value.hpp"

namespace ft {

/// Default diff granularity.  Small enough that a localized mutation ships
/// a few KiB, large enough that the per-chunk bookkeeping (4-byte index +
/// 4-byte length on the wire, 8-byte fingerprint in memory) stays noise.
inline constexpr std::uint32_t kDefaultChunkSize = 4096;

/// 64-bit FNV-1a over `bytes` (pure C++, no deps — the fingerprint the
/// proxy uses to detect changed chunks).
std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

/// Per-chunk FNV-1a fingerprints of `state` split into `chunk_size`d
/// pieces (the final chunk may be short).  Empty state -> empty vector.
std::vector<std::uint64_t> chunk_fingerprints(std::span<const std::byte> state,
                                              std::uint32_t chunk_size);

/// One changed chunk: its index in the chunked state and its new bytes.
struct DeltaChunk {
  std::uint32_t index = 0;
  corba::Blob bytes;
};

/// A chunked diff between two state versions.  `new_size` is the size of
/// the state the delta materializes to, so shrinking states round-trip.
struct StateDelta {
  std::uint32_t chunk_size = kDefaultChunkSize;
  std::uint64_t new_size = 0;
  std::vector<DeltaChunk> chunks;

  /// Sum of shipped chunk payloads (the bytes that actually travel).
  std::size_t payload_bytes() const noexcept;

  /// CDR wire/file representation (also used by store_delta()).
  corba::Blob encode() const;
  /// Throws corba::MARSHAL on a corrupt or unsupported encoding.
  static StateDelta decode(std::span<const std::byte> blob);

  /// Diff of `next` against a base described by its fingerprints and size.
  /// A chunk ships when it is new, its length changed (trailing partial
  /// chunk), or its fingerprint moved.
  static StateDelta diff(std::span<const std::uint64_t> base_fingerprints,
                         std::size_t base_size,
                         std::span<const std::byte> next,
                         std::uint32_t chunk_size);

  /// Materializes the post-delta state from `base`.  Throws corba::BAD_PARAM
  /// when a chunk falls outside the materialized size (corrupt chain).
  corba::Blob apply(std::span<const std::byte> base) const;
};

}  // namespace ft
