// Checkpointable objects.
//
// The paper's fault tolerance rests on one capability: "(a) save the state
// (checkpoint) of the server object e.g. after each successful call ... and
// (b) ... restore this state in a newly created server object" (§3).  A
// service opts in by answering the two implicit operations _get_state /
// _set_state with an opaque state blob.  CheckpointableServant is the
// server-side mixin; free functions get_state/set_state are the client-side
// accessors used by proxies.
#pragma once

#include <optional>
#include <string_view>

#include "orb/object_adapter.hpp"
#include "orb/orb.hpp"

namespace ft {

inline constexpr std::string_view kGetStateOp = "_get_state";
inline constexpr std::string_view kSetStateOp = "_set_state";

/// Server-side mixin.  A skeleton supporting checkpointing derives from its
/// interface skeleton *and* this class, and gives its dispatch() a chance to
/// route the two state operations:
///
///   corba::Value dispatch(std::string_view op, const corba::ValueSeq& a) {
///     if (auto handled = try_dispatch_state(op, a)) return *handled;
///     ...interface operations...
///   }
class CheckpointableServant {
 public:
  virtual ~CheckpointableServant() = default;

  /// Serializes the servant's full application state.
  virtual corba::Blob get_state() = 0;

  /// Replaces the servant's state with a previously serialized one.
  virtual void set_state(const corba::Blob& state) = 0;

 protected:
  /// Routes kGetStateOp / kSetStateOp; std::nullopt for other operations.
  std::optional<corba::Value> try_dispatch_state(std::string_view op,
                                                 const corba::ValueSeq& args);
};

/// Client-side accessors (used by fault-tolerance proxies).
corba::Blob get_state(const corba::ObjectRef& ref);
void set_state(const corba::ObjectRef& ref, const corba::Blob& state);

}  // namespace ft
