// Checkpoint storage service.
//
// The paper prototypes "a simple service for storing checkpointing data ...
// functions to store/retrieve arbitrary values" with no persistence and no
// optimization.  This module provides that service as a proper CORBA object:
// a versioned key -> blob store with an in-memory backend (the paper's
// prototype, including a configurable simulated cost so the Table 1 overhead
// experiment can model the "rather inefficient" implementation) and a
// file-backed backend (the persistence the paper lists as missing).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "orb/object_adapter.hpp"
#include "orb/stub.hpp"

namespace ft {

inline constexpr std::string_view kCheckpointStoreRepoId =
    "IDL:corbaft/ft/CheckpointStore:1.0";

struct NoCheckpoint : corba::UserException {
  explicit NoCheckpoint(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/ft/NoCheckpoint:1.0";
  }
};

struct Checkpoint {
  std::uint64_t version = 0;
  corba::Blob state;
};

/// Client API of the checkpoint store; implemented by the backends (for
/// colocated use) and by CheckpointStoreStub (remote use).
class CheckpointStoreClient {
 public:
  virtual ~CheckpointStoreClient() = default;

  /// Stores a checkpoint.  Versions must be monotone per key; a stale
  /// version (<= the stored one) is rejected with BAD_PARAM so a lagging
  /// writer can never overwrite a newer state.
  virtual void store(const std::string& key, std::uint64_t version,
                     const corba::Blob& state) = 0;

  /// Latest checkpoint for `key`, or std::nullopt when none exists.
  virtual std::optional<Checkpoint> load(const std::string& key) = 0;

  /// Removes the checkpoint (no-op when absent).
  virtual void remove(const std::string& key) = 0;

  virtual std::vector<std::string> keys() = 0;
};

/// In-memory backend — the paper's proof-of-concept store.  `work_per_byte`
/// and `work_per_store` charge simulated work on the hosting workstation for
/// each store/load, modeling the unoptimized implementation whose cost the
/// Table 1 experiment measures.
class MemoryCheckpointStore final : public CheckpointStoreClient {
 public:
  struct CostModel {
    double work_per_store = 0.0;
    double work_per_byte = 0.0;
  };

  MemoryCheckpointStore() : MemoryCheckpointStore(CostModel{}) {}
  explicit MemoryCheckpointStore(CostModel cost);

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;

  std::uint64_t stores() const;
  std::uint64_t loads() const;

 private:
  CostModel cost_;
  mutable std::mutex mu_;
  std::map<std::string, Checkpoint> checkpoints_;
  std::uint64_t store_count_ = 0;
  std::uint64_t load_count_ = 0;
};

/// File-backed backend: one file per key under `directory`, written
/// atomically (tmp + rename), surviving process restarts.
class FileCheckpointStore final : public CheckpointStoreClient {
 public:
  explicit FileCheckpointStore(std::filesystem::path directory);

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;

  const std::filesystem::path& directory() const noexcept { return directory_; }

 private:
  std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path directory_;
  mutable std::mutex mu_;
};

/// CORBA servant exposing any backend.
class CheckpointStoreServant final : public corba::Servant {
 public:
  explicit CheckpointStoreServant(std::shared_ptr<CheckpointStoreClient> impl);

  std::string_view repo_id() const noexcept override {
    return kCheckpointStoreRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

 private:
  std::shared_ptr<CheckpointStoreClient> impl_;
};

/// Client-side stub.
class CheckpointStoreStub final : public corba::StubBase,
                                  public CheckpointStoreClient {
 public:
  CheckpointStoreStub() = default;
  explicit CheckpointStoreStub(corba::ObjectRef ref)
      : StubBase(std::move(ref)) {}

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;
};

}  // namespace ft
