// Checkpoint storage service.
//
// The paper prototypes "a simple service for storing checkpointing data ...
// functions to store/retrieve arbitrary values" with no persistence and no
// optimization.  This module provides that service as a proper CORBA object:
// a versioned key -> blob store with an in-memory backend (the paper's
// prototype, including a configurable simulated cost so the Table 1 overhead
// experiment can model the "rather inefficient" implementation) and a
// file-backed backend (the persistence the paper lists as missing).  Both
// backends keep their per-key state as a log-structured base + delta chain
// (ft/segment_log.hpp), which also feeds the shard replication catch-up
// stream (ft/store_replication.hpp).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "ft/segment_log.hpp"
#include "orb/object_adapter.hpp"
#include "orb/stub.hpp"

namespace ft {

inline constexpr std::string_view kCheckpointStoreRepoId =
    "IDL:corbaft/ft/CheckpointStore:1.0";

struct NoCheckpoint : corba::UserException {
  explicit NoCheckpoint(std::string detail)
      : corba::UserException(std::string(static_repo_id()), std::move(detail)) {}
  static constexpr std::string_view static_repo_id() {
    return "IDL:corbaft/ft/NoCheckpoint:1.0";
  }
};

struct Checkpoint {
  std::uint64_t version = 0;
  corba::Blob state;
};

/// Client API of the checkpoint store; implemented by the backends (for
/// colocated use) and by CheckpointStoreStub (remote use).
class CheckpointStoreClient {
 public:
  virtual ~CheckpointStoreClient() = default;

  /// Stores a checkpoint.  Versions must be monotone per key; a stale
  /// version (<= the stored one) is rejected with BAD_PARAM so a lagging
  /// writer can never overwrite a newer state.
  virtual void store(const std::string& key, std::uint64_t version,
                     const corba::Blob& state) = 0;

  /// Stores an incremental checkpoint: `delta` is a CDR-encoded
  /// ft::StateDelta diffed against the stored version `base_version`.
  /// Rejected with BAD_PARAM when no checkpoint exists for the key, when
  /// `base_version` is not the store's current version (the delta was
  /// diffed against state the store no longer has), or when `version` is
  /// stale — callers fall back to a full store() in all three cases.  The
  /// default implementation materializes locally and forwards to store();
  /// backends override it to keep a bounded delta chain instead.
  virtual void store_delta(const std::string& key, std::uint64_t base_version,
                           std::uint64_t version, const corba::Blob& delta);

  /// Latest checkpoint for `key`, or std::nullopt when none exists.  A
  /// backend holding a delta chain materializes transparently (base +
  /// replay), so callers always see a full state blob.
  virtual std::optional<Checkpoint> load(const std::string& key) = 0;

  /// Removes the checkpoint (no-op when absent).
  virtual void remove(const std::string& key) = 0;

  virtual std::vector<std::string> keys() = 0;

  /// Version currently stored for `key`; 0 when absent.  The cheap probe
  /// shard failover uses to find the freshest replica.  The default loads
  /// and inspects (correct, not cheap); backends override.
  virtual std::uint64_t head_version(const std::string& key);

  /// The key's log from `since` forward: a segment suffix when the
  /// backend's chain still anchors at `since`, the full base + chain
  /// otherwise, an empty log when the key is absent or already caught up.
  /// Replication catch-up calls this on the primary so a follower that
  /// missed a few deltas receives the suffix instead of a full snapshot.
  /// The default ships the full checkpoint as a base-only log.
  virtual CheckpointLog fetch_log(const std::string& key, std::uint64_t since);
};

/// In-memory backend — the paper's proof-of-concept store.  `work_per_byte`
/// and `work_per_store` charge simulated work on the hosting workstation for
/// each store/load, modeling the unoptimized implementation whose cost the
/// Table 1 experiment measures.
class MemoryCheckpointStore final : public CheckpointStoreClient {
 public:
  struct CostModel {
    double work_per_store = 0.0;
    double work_per_byte = 0.0;
  };

  MemoryCheckpointStore() : MemoryCheckpointStore(CostModel{}) {}
  explicit MemoryCheckpointStore(CostModel cost, DeltaPolicy delta = {});

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;
  std::uint64_t head_version(const std::string& key) override;
  CheckpointLog fetch_log(const std::string& key, std::uint64_t since) override;

  std::uint64_t stores() const;
  std::uint64_t loads() const;
  std::uint64_t delta_stores() const;
  std::uint64_t compactions() const;

 private:
  CostModel cost_;
  DeltaPolicy delta_policy_;
  mutable std::mutex mu_;
  std::map<std::string, SegmentLog> checkpoints_;
  std::uint64_t store_count_ = 0;
  std::uint64_t load_count_ = 0;
  std::uint64_t delta_store_count_ = 0;
  std::uint64_t compaction_count_ = 0;
};

/// Durability of FileCheckpointStore's atomic writes.  tmp+rename alone
/// survives a process crash but not power loss: the rename can land while
/// the data blocks are still dirty in the page cache.
enum class FsyncMode : std::uint8_t {
  off,   ///< no fsync; process-crash durability only (fastest, CI default off)
  data,  ///< fsync the tmp file before rename (default)
  full,  ///< data + fsync the directory after rename (the rename itself
         ///< is durable too)
};

std::string_view to_string(FsyncMode mode) noexcept;

/// File-backed backend: one base file per key under `directory` plus
/// numbered delta segments, each written atomically (tmp + rename),
/// surviving process restarts.  Orphan delta segments left behind by a
/// crash (stale, or with a gap in the chain) are detected and discarded
/// the next time the key is loaded.  Sync latency is recorded in the
/// `ft.store.fsync_latency_s` histogram (modes other than off).
class FileCheckpointStore final : public CheckpointStoreClient {
 public:
  explicit FileCheckpointStore(std::filesystem::path directory,
                               DeltaPolicy delta = {},
                               FsyncMode fsync = FsyncMode::data);

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;
  std::uint64_t head_version(const std::string& key) override;
  CheckpointLog fetch_log(const std::string& key, std::uint64_t since) override;

  const std::filesystem::path& directory() const noexcept { return directory_; }
  FsyncMode fsync_mode() const noexcept { return fsync_mode_; }

 private:
  struct DiskSegment {
    LogSegment segment;
    std::filesystem::path path;
  };
  struct Materialized {
    Checkpoint checkpoint;
    std::uint64_t base_version = 0;
    std::size_t base_size = 0;
    std::size_t chain_length = 0;
    std::size_t chain_payload = 0;
    /// The validated chain (fetch_log serves suffixes straight from it).
    std::vector<LogSegment> chain;
  };

  std::string encoded_key(const std::string& key) const;
  std::filesystem::path path_for(const std::string& key) const;
  std::filesystem::path delta_path_for(const std::string& key,
                                       std::uint64_t version) const;
  /// The raw base file (version + state), nullopt when absent.
  std::optional<Checkpoint> read_base(const std::string& key) const;
  /// All delta segments for `key`, sorted by version (unvalidated).
  std::vector<DiskSegment> read_segments(const std::string& key) const;
  /// Base + validated chain with orphans discarded (deleted from disk).
  /// Returns nullopt when no base exists.
  std::optional<Materialized> load_locked(const std::string& key);
  void write_atomically(const std::filesystem::path& target,
                        std::span<const std::byte> payload) const;
  void remove_segments(const std::string& key);

  std::filesystem::path directory_;
  DeltaPolicy delta_policy_;
  FsyncMode fsync_mode_;
  mutable std::mutex mu_;
};

/// CORBA servant exposing any backend.
class CheckpointStoreServant final : public corba::Servant {
 public:
  explicit CheckpointStoreServant(std::shared_ptr<CheckpointStoreClient> impl);

  std::string_view repo_id() const noexcept override {
    return kCheckpointStoreRepoId;
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override;

 private:
  std::shared_ptr<CheckpointStoreClient> impl_;
};

/// Client-side stub.
class CheckpointStoreStub final : public corba::StubBase,
                                  public CheckpointStoreClient {
 public:
  CheckpointStoreStub() = default;
  explicit CheckpointStoreStub(corba::ObjectRef ref)
      : StubBase(std::move(ref)) {}

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;
  std::uint64_t head_version(const std::string& key) override;
  CheckpointLog fetch_log(const std::string& key, std::uint64_t since) override;
};

}  // namespace ft
