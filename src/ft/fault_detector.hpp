// Fault detector: proactive failure detection for the offer pool.
//
// The paper's §3 notes that "the only way to detect an error on the client
// side ... is the exception CORBA::COMM_FAILURE thrown when a CORBA client
// tries to call a service which is not available anymore" — detection is
// purely reactive, and its §5 lists evaluating the OMG's fault-detection
// proposal (FT-CORBA) as future work.  This module implements that
// direction: a FaultDetector periodically pings the service instances
// registered under naming-service names (the implicit _ping operation every
// object answers) and, when an instance stops responding, removes its offer
// so no client resolves to a dead object, and optionally notifies
// listeners.  Combined with the proxies this turns failures from
// "discovered by the unlucky first caller" into "repaired before most
// callers notice".
//
// Like the node managers, the detector runs in two drive modes: simulated
// (self-rescheduling virtual-time events) and threaded (wall clock).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ft/quarantine.hpp"
#include "naming/naming.hpp"
#include "sim/event_queue.hpp"

namespace ft {

struct FaultDetectorOptions {
  /// Interval between monitoring sweeps (virtual or real seconds).
  double period = 1.0;
  /// Consecutive failed pings before an instance is declared faulty.
  int suspicion_threshold = 2;
  /// Remove the faulty instance's offer from the naming service.
  bool unbind_faulty_offers = true;
  /// Shared circuit breaker (may be null).  Every ping result is reported
  /// to it, which is how quarantined-but-still-bound instances earn the
  /// consecutive healthy probes that release them.
  std::shared_ptr<OfferQuarantine> quarantine;
};

/// A detected fault, passed to listeners.
struct FaultReport {
  naming::Name service;
  std::string host;
  double detected_at = 0.0;
};

class FaultDetector {
 public:
  using Listener = std::function<void(const FaultReport&)>;

  /// `naming` is the context whose offers are monitored.
  FaultDetector(std::shared_ptr<naming::NamingContext> naming,
                FaultDetectorOptions options = {});
  ~FaultDetector();

  FaultDetector(const FaultDetector&) = delete;
  FaultDetector& operator=(const FaultDetector&) = delete;

  /// Adds a service name to the monitored set.
  void monitor(const naming::Name& name);
  /// Stops monitoring a name.
  void unmonitor(const naming::Name& name);

  /// Registers a fault listener (called from the sweep context).
  void add_listener(Listener listener);

  /// One monitoring sweep: pings every offer of every monitored name,
  /// updates suspicion counts, unbinds/notifies on confirmed faults.
  /// Exposed for tests; used internally by both drive modes.
  void sweep(double now) noexcept;

  void start_simulated(sim::EventQueue& events);
  void start_threaded();
  void stop();

  // --- telemetry -------------------------------------------------------------
  std::uint64_t sweeps() const noexcept { return sweeps_.load(); }
  std::uint64_t faults_detected() const noexcept { return faults_.load(); }
  /// Current suspicion count of (service, host); 0 if unknown/healthy.
  int suspicion(const naming::Name& name, const std::string& host) const;

 private:
  void simulated_tick(sim::EventQueue& events);

  std::shared_ptr<naming::NamingContext> naming_;
  FaultDetectorOptions options_;
  mutable std::mutex mu_;
  std::vector<naming::Name> monitored_;
  /// (service string form, host) -> consecutive failed pings.
  std::map<std::pair<std::string, std::string>, int> suspicions_;
  std::vector<Listener> listeners_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::thread thread_;
};

}  // namespace ft
