#include "ft/service_factory.hpp"

namespace ft {

namespace {

corba::RegisterUserException<UnknownServiceType> register_unknown_service_type;

}  // namespace

void ServantFactoryRegistry::register_type(const std::string& service_type,
                                           Creator creator) {
  if (!creator) throw corba::BAD_PARAM("null servant creator");
  std::lock_guard lock(mu_);
  creators_[service_type] = std::move(creator);
}

std::shared_ptr<corba::Servant> ServantFactoryRegistry::create(
    const std::string& service_type) const {
  Creator creator;
  {
    std::lock_guard lock(mu_);
    auto it = creators_.find(service_type);
    if (it == creators_.end())
      throw UnknownServiceType("'" + service_type + "'");
    creator = it->second;
  }
  std::shared_ptr<corba::Servant> servant = creator();
  if (!servant)
    throw corba::INTERNAL("creator for '" + service_type + "' returned null");
  return servant;
}

std::vector<std::string> ServantFactoryRegistry::service_types() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> types;
  types.reserve(creators_.size());
  for (const auto& [type, creator] : creators_) types.push_back(type);
  return types;
}

ServiceFactoryServant::ServiceFactoryServant(
    std::weak_ptr<corba::ORB> orb, std::string host,
    std::shared_ptr<ServantFactoryRegistry> registry)
    : orb_(std::move(orb)), host_(std::move(host)), registry_(std::move(registry)) {
  if (!registry_) throw corba::BAD_PARAM("null servant registry");
}

corba::Value ServiceFactoryServant::dispatch(std::string_view op,
                                             const corba::ValueSeq& args) {
  if (op == "create") {
    check_arity(op, args, 1);
    std::shared_ptr<corba::ORB> orb = orb_.lock();
    if (!orb) throw corba::OBJECT_NOT_EXIST("factory ORB is gone");
    const std::string service_type = args[0].as_string();
    const corba::ObjectRef ref =
        orb->activate(registry_->create(service_type), service_type);
    ++created_;
    return ref.to_value();
  }
  if (op == "service_types") {
    check_arity(op, args, 0);
    corba::ValueSeq out;
    for (const std::string& type : registry_->service_types())
      out.emplace_back(type);
    return corba::Value(std::move(out));
  }
  if (op == "host") {
    check_arity(op, args, 0);
    return corba::Value(host_);
  }
  throw corba::BAD_OPERATION(std::string(op));
}

corba::ObjectRef ServiceFactoryStub::create(
    const std::string& service_type) const {
  return corba::ObjectRef::from_value(
      ref_.orb(), call("create", {corba::Value(service_type)}));
}

std::vector<std::string> ServiceFactoryStub::service_types() const {
  const corba::Value reply = call("service_types", {});
  std::vector<std::string> types;
  for (const corba::Value& type : reply.as_sequence())
    types.push_back(type.as_string());
  return types;
}

std::string ServiceFactoryStub::host() const {
  return call("host", {}).as_string();
}

}  // namespace ft
