#include "ft/sharded_store.hpp"

#include <algorithm>

#include "ft/delta.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace ft {

namespace {

obs::Counter& failover_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ft.shard.failovers_total");
  return counter;
}

/// FNV-1a avalanches poorly in the high bits for short, similar strings
/// ("object-1", "object-2", ... cluster in a narrow band of the 64-bit
/// space, which starves most ring arcs).  A murmur-style finalizer spreads
/// the clusters across the whole ring.
std::uint64_t mix64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::uint64_t ring_hash(std::string_view text) noexcept {
  return mix64(fnv1a(std::as_bytes(std::span(text.data(), text.size()))));
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t virtual_nodes)
    : shard_count_(shards) {
  if (shards == 0) throw corba::BAD_PARAM("hash ring needs at least one shard");
  if (virtual_nodes == 0)
    throw corba::BAD_PARAM("hash ring needs at least one virtual node");
  points_.reserve(shards * virtual_nodes);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t vnode = 0; vnode < virtual_nodes; ++vnode) {
      const std::string label = "shard-" + std::to_string(shard) + "-vnode-" +
                                std::to_string(vnode);
      points_.push_back({ring_hash(label), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t HashRing::shard_for(std::string_view key) const {
  if (shard_count_ == 1) return 0;
  const std::uint64_t hash = ring_hash(key);
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), hash,
      [](std::uint64_t h, const Point& p) { return h < p.hash; });
  return it == points_.end() ? points_.front().shard : it->shard;
}

ShardedCheckpointStore::ShardedCheckpointStore(std::vector<ShardReplicas> shards,
                                               Options options)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      ring_(shards_.size(), options_.virtual_nodes == 0 ? 1
                                                        : options_.virtual_nodes),
      active_(shards_.size(), 0) {
  for (const ShardReplicas& shard : shards_) {
    if (shard.replicas.empty())
      throw corba::BAD_PARAM("shard with no replicas");
    for (const auto& replica : shard.replicas)
      if (!replica) throw corba::BAD_PARAM("null shard replica");
  }
}

template <typename Fn>
decltype(auto) ShardedCheckpointStore::with_replica(std::size_t shard,
                                                    const std::string& key,
                                                    Fn&& fn) {
  std::size_t index;
  {
    std::lock_guard lock(mu_);
    index = active_[shard];
  }
  try {
    return fn(*shards_[shard].replicas[index]);
  } catch (const corba::BAD_PARAM&) {
    // A contract rejection (stale version, base mismatch) comes from a
    // healthy store doing its job — it must never trigger failover, so it
    // is rethrown before the SystemException clause can see it.
    throw;
  } catch (const corba::SystemException&) {
    // Unreachable replica.
    const auto [next, version] = probe_freshest(shard, key, index);
    if (next == index) throw;  // nobody else answered either
    {
      std::lock_guard lock(mu_);
      active_[shard] = next;
      ++failover_count_;
    }
    failover_counter().inc();
    std::string label = "shard-" + std::to_string(shard);
    if (!options_.origin.empty()) label = options_.origin + "/" + label;
    obs::flight_event(obs::FlightEvent::shard_failover, label,
                      static_cast<std::uint64_t>(next), version);
    return fn(*shards_[shard].replicas[next]);
  }
}

std::pair<std::size_t, std::uint64_t> ShardedCheckpointStore::probe_freshest(
    std::size_t shard, const std::string& key, std::size_t failed) {
  std::size_t best = failed;
  std::uint64_t best_version = 0;
  const ShardReplicas& replicas = shards_[shard];
  for (std::size_t i = 0; i < replicas.replicas.size(); ++i) {
    if (i == failed) continue;
    std::uint64_t version = 0;
    try {
      version = replicas.replicas[i]->head_version(key);
    } catch (const corba::SystemException&) {
      continue;  // also down; keep probing
    }
    if (best == failed || version > best_version) {
      best = i;
      best_version = version;
    }
  }
  return {best, best_version};
}

void ShardedCheckpointStore::store(const std::string& key,
                                   std::uint64_t version,
                                   const corba::Blob& state) {
  with_replica(ring_.shard_for(key), key,
               [&](CheckpointStoreClient& s) { s.store(key, version, state); });
}

void ShardedCheckpointStore::store_delta(const std::string& key,
                                         std::uint64_t base_version,
                                         std::uint64_t version,
                                         const corba::Blob& delta) {
  with_replica(ring_.shard_for(key), key, [&](CheckpointStoreClient& s) {
    s.store_delta(key, base_version, version, delta);
  });
}

std::optional<Checkpoint> ShardedCheckpointStore::load(const std::string& key) {
  return with_replica(
      ring_.shard_for(key), key,
      [&](CheckpointStoreClient& s) { return s.load(key); });
}

void ShardedCheckpointStore::remove(const std::string& key) {
  with_replica(ring_.shard_for(key), key,
               [&](CheckpointStoreClient& s) { s.remove(key); });
}

std::vector<std::string> ShardedCheckpointStore::keys() {
  std::vector<std::string> merged;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<std::string> shard_keys = with_replica(
        shard, std::string(),
        [&](CheckpointStoreClient& s) { return s.keys(); });
    merged.insert(merged.end(), std::make_move_iterator(shard_keys.begin()),
                  std::make_move_iterator(shard_keys.end()));
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::uint64_t ShardedCheckpointStore::head_version(const std::string& key) {
  return with_replica(
      ring_.shard_for(key), key,
      [&](CheckpointStoreClient& s) { return s.head_version(key); });
}

CheckpointLog ShardedCheckpointStore::fetch_log(const std::string& key,
                                                std::uint64_t since) {
  return with_replica(
      ring_.shard_for(key), key,
      [&](CheckpointStoreClient& s) { return s.fetch_log(key, since); });
}

std::size_t ShardedCheckpointStore::active_replica(std::size_t shard) const {
  std::lock_guard lock(mu_);
  return active_.at(shard);
}

std::uint64_t ShardedCheckpointStore::failovers() const {
  std::lock_guard lock(mu_);
  return failover_count_;
}

}  // namespace ft
