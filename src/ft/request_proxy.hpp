// Fault-tolerant request proxies for the Dynamic Invocation Interface.
//
// "To enable fault tolerance in this case, request proxies are used just
// like the object proxies" (§3, Fig. 2).  A RequestProxy mirrors the
// corba::Request API (send_deferred / poll_response / get_response /
// return_value) but completes through a ProxyEngine: when get_response hits
// COMM_FAILURE it recovers the service and re-issues the request against
// the replacement, and after success it triggers the engine's checkpoint
// policy — so deferred-synchronous calls get exactly the same guarantees as
// synchronous proxy calls.
#pragma once

#include <optional>

#include "ft/proxy.hpp"
#include "orb/dii.hpp"

namespace ft {

class RequestProxy {
 public:
  /// The engine is shared with (and owned by) the service's object proxy or
  /// runtime; it must outlive the request proxy.
  RequestProxy(ProxyEngine& engine, std::string operation);

  RequestProxy(RequestProxy&&) = default;

  const std::string& operation() const noexcept { return operation_; }

  RequestProxy& add_argument(corba::Value v);

  /// Starts the invocation against the engine's current target.
  void send_deferred();

  /// True once get_response will not block on the *current* attempt.  A
  /// failed attempt reads as ready; get_response then performs recovery.
  bool poll_response();

  /// Completes the invocation with recovery + retry per the engine's
  /// policy.  After success the engine's checkpoint policy runs.
  void get_response();

  /// Synchronous convenience (send + get).
  void invoke();

  const corba::Value& return_value() const;
  bool completed() const noexcept { return request_ && request_->completed(); }

  /// Number of times this request was re-issued after a failure.
  int reissues() const noexcept { return reissues_; }

 private:
  ProxyEngine& engine_;
  std::string operation_;
  corba::ValueSeq arguments_;
  std::optional<corba::Request> request_;
  int reissues_ = 0;
};

}  // namespace ft
