// Replication-based fault tolerance: the alternative the paper argues
// against.
//
// §3 discusses object-group systems — Piranha (active/passive replication
// on a group-aware ORB), IGOR (portable group replication) and the OMG
// FT-CORBA proposal — and rejects them for maximum-parallelism workloads:
// "it is not desirable to use a large amount of the computational resources
// (i.e. hosts in the network) exclusively for availability purposes as in
// the case of active replication".  This module implements both replication
// styles over plain CORBA objects (no ORB extensions, in the spirit of
// IGOR) so the trade-off can be measured instead of asserted — see
// bench/ablation_replication.
//
// Distinct from ft/store_replication.hpp, which replicates the *checkpoint
// store's data* (primary shard -> followers, asynchronously) rather than
// application object groups.
//
//   * active:  every invocation executes on ALL group members (deferred-
//     synchronous fan-out); the first successful reply is returned, so a
//     member failure is masked with zero disruption.  Requires
//     deterministic servants; costs k× the compute.
//   * passive (warm standby): invocations execute on the primary only;
//     after every `sync_every` successful calls the primary's state is
//     copied to the backups (the same _get_state/_set_state protocol the
//     checkpoint proxies use).  On primary failure a backup is promoted —
//     losing whatever state changed since the last sync.
//
// Failed members are repaired in the background by re-creating them through
// their host's ServiceFactory (skipped while the host stays dead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/service_factory.hpp"
#include "orb/dii.hpp"

namespace ft {

enum class ReplicationStyle { active, passive };

std::string_view to_string(ReplicationStyle style) noexcept;

struct ReplicaGroupConfig {
  ReplicationStyle style = ReplicationStyle::passive;

  /// Service type instantiated through the factories.
  std::string service_type;

  /// One factory per member; the group size is factories.size().  Members
  /// are pinned to their factory's host (standard FT-CORBA deployment:
  /// replicas on distinct machines).
  std::vector<ServiceFactoryStub> factories;

  /// passive: sync state to the backups after every N-th successful call
  /// (1 = after each call, mirroring the paper's checkpoint frequency).
  int sync_every = 1;

  /// Re-create failed members on their host as soon as it is reachable
  /// again (active) / after failover (passive).
  bool auto_repair = true;

  /// active: cross-check that all successful replies agree; a mismatch
  /// raises INTERNAL (detects non-deterministic servants).
  bool verify_agreement = false;
};

class GroupRequest;

class ReplicaGroup {
 public:
  /// Creates the initial members through the factories.  Throws BAD_PARAM
  /// for an empty factory list.
  explicit ReplicaGroup(ReplicaGroupConfig config);

  /// Fault-tolerant invocation per the configured style.  Throws
  /// COMM_FAILURE only when every member is unreachable.
  corba::Value invoke(std::string_view op, corba::ValueSeq args);

  std::size_t size() const noexcept { return members_.size(); }
  std::size_t alive_members() const;

  /// Current primary (passive) / first live member (active).
  corba::ObjectRef primary() const;

  /// Forces a state sync to all backups now (passive only; no-op for
  /// active groups).
  void sync_now();

  /// Attempts to re-create every failed member (normally automatic).
  void repair();

  // --- telemetry -------------------------------------------------------------
  std::uint64_t failovers() const noexcept { return failovers_; }
  std::uint64_t syncs() const noexcept { return syncs_; }
  std::uint64_t repairs() const noexcept { return repairs_; }

 private:
  friend class GroupRequest;

  struct Member {
    corba::ObjectRef ref;
    ServiceFactoryStub factory;
    bool alive = false;
  };

  void note_passive_success();
  void promote_next_backup();
  Member* primary_member();
  const Member* primary_member() const;

  ReplicaGroupConfig config_;
  std::vector<Member> members_;
  std::size_t primary_index_ = 0;
  int calls_since_sync_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t repairs_ = 0;
};

/// Deferred-synchronous invocation on a replica group — the group
/// counterpart of ft::RequestProxy, needed by workloads that keep several
/// groups busy in parallel.  Semantics match ReplicaGroup::invoke:
/// active groups fan the request out to every live member on send and
/// gather on get_response; passive groups send to the primary and perform
/// failover + re-send inside get_response.
class GroupRequest {
 public:
  /// The group must outlive the request.
  GroupRequest(ReplicaGroup& group, std::string operation);

  GroupRequest(GroupRequest&&) = default;

  GroupRequest& add_argument(corba::Value v);
  void send_deferred();
  void get_response();
  void invoke();  ///< send + get
  const corba::Value& return_value() const;
  bool completed() const noexcept { return completed_; }

 private:
  void send_active();
  void send_passive();

  ReplicaGroup& group_;
  std::string operation_;
  corba::ValueSeq arguments_;
  /// member index -> in-flight request (active: all live; passive: primary).
  std::vector<std::pair<std::size_t, corba::Request>> in_flight_;
  corba::Value result_;
  bool sent_ = false;
  bool completed_ = false;
};

}  // namespace ft
