#include "ft/migration.hpp"

#include <algorithm>

#include "orb/log.hpp"

namespace ft {

MigrationManager::MigrationManager(
    std::shared_ptr<winner::LoadInformationService> winner,
    MigrationOptions options)
    : winner_(std::move(winner)), options_(options) {
  if (!winner_)
    throw corba::BAD_PARAM("migration manager requires load information");
  if (!(options_.period > 0)) throw corba::BAD_PARAM("period must be positive");
  if (!(options_.min_improvement > 0))
    throw corba::BAD_PARAM("min_improvement must be positive");
  if (options_.max_migrations_per_sweep < 1)
    throw corba::BAD_PARAM("max_migrations_per_sweep must be >= 1");
}

MigrationManager::~MigrationManager() { stop(); }

void MigrationManager::manage(ProxyEngine& engine) {
  std::lock_guard lock(mu_);
  if (std::find(engines_.begin(), engines_.end(), &engine) == engines_.end())
    engines_.push_back(&engine);
}

void MigrationManager::unmanage(ProxyEngine& engine) {
  std::lock_guard lock(mu_);
  std::erase(engines_, &engine);
}

void MigrationManager::sweep() noexcept {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  std::vector<ProxyEngine*> engines;
  {
    std::lock_guard lock(mu_);
    engines = engines_;
  }
  int migrated = 0;
  for (ProxyEngine* engine : engines) {
    if (migrated >= options_.max_migrations_per_sweep) break;
    try {
      const std::string current = engine->current_host();
      if (current.empty()) continue;
      const std::string best = winner_->best_host({});
      if (best == current) continue;
      // Indexes are load per unit speed; scale the gap by the current
      // host's speed so the threshold reads in runnable-process units
      // regardless of the cluster's absolute speed scale.
      const double gap_processes =
          (winner_->host_index(current) - winner_->host_index(best)) *
          winner_->host_speed(current);
      if (gap_processes < options_.min_improvement) continue;
      // recover_now() is exactly a migration when nothing has failed: a
      // fresh instance on the best host, the checkpoint restored into it,
      // offers repaired, the proxy re-targeted.
      engine->recover_now();  // placement is reported by the resolve/factory
      migrations_.fetch_add(1, std::memory_order_relaxed);
      corba::log::emit(corba::log::Level::info, "ft.migration",
                       "migrated a service from " + current + " to " +
                           engine->current_host() + " (load gap " +
                           std::to_string(gap_processes) + ")");
      ++migrated;
    } catch (const corba::Exception&) {
      // Load data unavailable or migration impossible right now; the
      // service keeps running where it is.
    }
  }
}

void MigrationManager::simulated_tick(sim::EventQueue& events) {
  if (!running_.load(std::memory_order_relaxed)) return;
  sweep();
  events.schedule_after(options_.period,
                        [this, &events] { simulated_tick(events); });
}

void MigrationManager::start_simulated(sim::EventQueue& events) {
  if (running_.exchange(true)) return;
  events.schedule_after(options_.period,
                        [this, &events] { simulated_tick(events); });
}

void MigrationManager::stop() { running_.store(false); }

}  // namespace ft
