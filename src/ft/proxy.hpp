// Fault-tolerance proxy machinery.
//
// The paper's design (§3, Fig. 2): the client uses a *proxy class derived
// from the IDL stub class*; every method call goes through the proxy, which
//   1. performs the call through the inherited stub,
//   2. after success, fetches a checkpoint of the server object's state and
//      stores it in the checkpoint storage service,
//   3. on CORBA::COMM_FAILURE, obtains a replacement service — by
//      re-resolving the name (fresh reference on a live host) and/or asking
//      a ServiceFactory on the currently best host to start a new instance —
//      restores the last checkpoint into it, and retries.
//
// ProxyEngine implements steps 1-3 once, operation-name based, so that a
// hand-written proxy method is a single line (the paper notes the manual
// proxies "could be easily automated"; the engine is that automation, minus
// C++'s lack of reflection over method signatures).  Hand-written proxies
// derive from their stub (preserving substitutability) and own an engine;
// the engine's rebind hook re-targets the inherited stub after recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>

#include "ft/checkpoint.hpp"
#include "ft/checkpoint_pipeline.hpp"
#include "ft/checkpoint_store.hpp"
#include "ft/quarantine.hpp"
#include "ft/service_factory.hpp"
#include "naming/naming.hpp"

namespace ft {

/// What recover() tries, in order.
enum class RecoveryMode {
  /// Re-resolve the service name: use another existing offer.
  reresolve,
  /// Ask a ServiceFactory (on the best host) for a brand-new instance.
  factory,
  /// Re-resolve first; if that fails (e.g. no offers left), use a factory.
  reresolve_then_factory,
};

struct RecoveryPolicy {
  /// Maximum tries per logical call: 1 means no fault tolerance beyond the
  /// original attempt.
  int max_attempts = 3;

  /// Checkpoint after every N-th successful call (1 = the paper's "after
  /// each method call on the server side"); 0 disables checkpointing.
  int checkpoint_every = 1;

  /// Tries per checkpoint transaction (state fetch + versioned store
  /// write) before the miss is accepted.  Both halves are idempotent, so
  /// immediate retries are safe; they keep a single dropped message from
  /// silently widening the checkpoint/restart state-loss window.
  int checkpoint_attempts = 3;

  RecoveryMode mode = RecoveryMode::reresolve_then_factory;

  /// How checkpoints travel to the store (see ft/checkpoint_pipeline.hpp).
  /// full_sync is the paper's behaviour and the default; delta modes ship
  /// chunked diffs; delta_async additionally decouples note_success() from
  /// the store round-trip.
  CheckpointMode checkpoint_mode = CheckpointMode::full_sync;

  /// Diff granularity for the delta modes.
  std::uint32_t delta_chunk_size = kDefaultChunkSize;

  /// Async pipeline queue depth (oldest capture coalesced away when full).
  std::size_t pipeline_depth = 4;

  /// Strategy for the re-resolve (winner = pick a well-loaded live host).
  naming::ResolveStrategy resolve_strategy = naming::ResolveStrategy::winner;

  /// Restore the latest checkpoint into the replacement instance.
  bool restore_on_recover = true;

  /// Remove the failed instance's offer from the naming service so nobody
  /// else resolves to the dead object.
  bool unbind_failed_offer = true;

  /// Advertise a factory-created replacement as a new offer under the
  /// service name (keeps the offer pool at full strength).
  bool rebind_new_offer = true;

  /// Retry even when the failure reported COMPLETED_MAYBE.  The paper's
  /// workloads are idempotent per call; non-idempotent services should turn
  /// this off and surface the failure instead.
  bool retry_on_completed_maybe = true;

  // --- retry backoff ---------------------------------------------------------
  /// Delay before the k-th retry: min(backoff_max_s, backoff_initial_s *
  /// backoff_factor^(k-1)), scaled by a jitter factor drawn uniformly from
  /// [1 - backoff_jitter, 1 + backoff_jitter] out of a seeded stream (so
  /// two proxies with different seeds desynchronise their retry storms,
  /// yet every run with one seed is identical).  backoff_initial_s = 0
  /// disables backoff: retries fire immediately, as the seed did.
  double backoff_initial_s = 0.05;
  double backoff_factor = 2.0;
  double backoff_max_s = 2.0;
  double backoff_jitter = 0.1;
  std::uint64_t backoff_seed = 1;

  /// Budget for one logical call including every retry and backoff wait
  /// (virtual seconds under the simulator, wall seconds otherwise).  When
  /// the next backoff wait cannot fit, the original failure surfaces
  /// instead of retrying past the deadline.  0 = unbounded.
  double call_deadline_s = 0.0;
};

struct ProxyConfig {
  /// Initial reference of the service instance.
  corba::ObjectRef initial;

  /// Naming context holding the service's offers (stub or servant).
  std::shared_ptr<naming::NamingContext> naming;

  /// Name the service's offers are bound under.
  naming::Name service_name;

  /// Checkpoint storage (stub or backend).  May be null: the proxy then
  /// provides retry/re-resolve fault tolerance for stateless services.
  std::shared_ptr<CheckpointStoreClient> store;

  /// Key under which this service's checkpoints are stored.
  std::string checkpoint_key;

  /// Returns a factory on a good host (required for factory modes).
  /// Typically supplied by the runtime as: best Winner host -> its factory.
  std::function<ServiceFactoryStub()> locate_factory;

  /// Service type passed to the factory.
  std::string service_type;

  /// Time source for backoff, deadline and quarantine bookkeeping.  Null
  /// means a monotonic wall clock; the simulator supplies virtual time.
  std::function<double()> clock;

  /// Sleep used for backoff waits.  Null means std::this_thread::sleep_for;
  /// the simulator supplies a virtual-time sleep that pumps the event queue.
  std::function<void(double)> sleep;

  /// Deferred executor for the async checkpoint pipeline.  The simulator
  /// supplies an event-queue hook so async shipping stays deterministic in
  /// virtual time; when null, delta_async uses a real worker thread.
  std::function<void(std::function<void()>)> defer;

  /// Shared circuit breaker (may be null).  The engine reports call
  /// failures/successes against the current instance; the runtime wires the
  /// same object into naming resolution and the FaultDetector's probes.
  std::shared_ptr<OfferQuarantine> quarantine;

  RecoveryPolicy policy;
};

class ProxyEngine {
 public:
  explicit ProxyEngine(ProxyConfig config);

  /// The fault-tolerant invocation wrapper (steps 1-3 above).
  corba::Value call(std::string_view op, corba::ValueSeq args);

  /// Current target (changes after recovery).
  const corba::ObjectRef& current() const noexcept { return current_; }

  const RecoveryPolicy& policy() const noexcept { return config_.policy; }

  /// Workstation the current instance runs on, cached at rebind and
  /// refreshed from the naming service's offer bookkeeping only when the
  /// cache is cold (empty when unknown).
  std::string current_host() const {
    return current_host_.empty() ? host_of_current() : current_host_;
  }

  /// Forces an immediate checkpoint regardless of checkpoint_every.
  /// Throws on failure (the periodic path in note_success does not).
  void checkpoint_now();

  /// Forces recovery (used by request proxies and by migration: move the
  /// service even though no call failed).
  void recover_now();

  /// Called by call()/request proxies after each successful invocation.
  /// Clears the instance's quarantine strikes and runs the checkpoint
  /// policy.  A transport failure *during the checkpoint* must not fail
  /// (or worse, retry) the already-successful call: it is swallowed,
  /// counted in checkpoint_failures(), and a best-effort recovery moves
  /// the proxy to a live instance.  The state delta of the last call may
  /// then be lost — the inherent window of checkpoint/restart fault
  /// tolerance.
  void note_success();

  /// The shared failure handler behind call() and RequestProxy: MUST be
  /// invoked from inside a catch block for `error`.  Reports the failure
  /// to the quarantine; rethrows when retries are exhausted, forbidden by
  /// the policy, or the call's deadline budget cannot fit the next backoff
  /// wait; otherwise backs off (deterministic jitter) and recovers.
  /// `attempt` is 1-based; `call_start` is now() at the logical call's
  /// first attempt.
  void on_failure(const corba::SystemException& error, int attempt,
                  double call_start);

  /// Variant for callers that know which target the failed request was sent
  /// to (deferred requests).  A multiplexed transport fails *every* call in
  /// flight on a broken connection with the same COMM_FAILURE; the first
  /// one through here recovers and rebinds, so its siblings arrive with
  /// `failed_target` != current().  Those skip backoff and recovery — the
  /// work is already done — and simply return so the caller re-issues
  /// against the recovered target.  Retry budget and completion-status
  /// policy still apply.
  void on_failure(const corba::SystemException& error, int attempt,
                  double call_start, const corba::IOR& failed_target);

  /// Current time per the configured clock (monotonic wall clock default).
  double now() const;

  /// Hook invoked with the new reference after every rebind; hand-written
  /// proxies use it to re-target their inherited stub.
  std::function<void(const corba::ObjectRef&)> on_rebind;

  /// Shipping pipeline (null when checkpointing is disabled).  Exposed so
  /// callers (migration, benchmarks, shutdown paths) can flush() or read
  /// delta/coalescing telemetry.
  CheckpointPipeline* checkpoint_pipeline() const noexcept {
    return pipeline_.get();
  }

  // --- telemetry ------------------------------------------------------------
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  /// Checkpoints acknowledged by the store.
  std::uint64_t checkpoints_taken() const noexcept {
    return pipeline_ ? pipeline_->stored() : 0;
  }
  std::uint64_t retries() const noexcept { return retries_; }
  /// Failures absorbed because a sibling call on the same connection had
  /// already recovered the proxy (batched connection failures).
  std::uint64_t batched_failures() const noexcept { return batched_failures_; }
  std::uint64_t checkpoint_failures() const noexcept {
    return checkpoint_failures_ + (pipeline_ ? pipeline_->failures() : 0);
  }
  /// Total time spent in backoff waits.
  double backoff_waited_s() const noexcept { return backoff_waited_s_; }
  /// Retries abandoned because the call deadline could not fit them.
  std::uint64_t deadline_exhaustions() const noexcept {
    return deadline_exhaustions_;
  }

 private:
  bool should_retry(const corba::SystemException& error) const;
  std::string host_of_current() const;
  void rebind(corba::ObjectRef next, std::string host);

  ProxyConfig config_;
  corba::ObjectRef current_;
  /// Host of the current instance, cached at rebind (refreshed lazily when
  /// the quarantine needs it), so per-call bookkeeping stays O(1).
  std::string current_host_;
  std::string service_key_;
  std::unique_ptr<CheckpointPipeline> pipeline_;
  std::mt19937_64 backoff_rng_;
  std::uint64_t version_ = 0;
  int calls_since_checkpoint_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t batched_failures_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  double backoff_waited_s_ = 0.0;
  std::uint64_t deadline_exhaustions_ = 0;
};

}  // namespace ft
