#include "ft/request_proxy.hpp"

namespace ft {

RequestProxy::RequestProxy(ProxyEngine& engine, std::string operation)
    : engine_(engine), operation_(std::move(operation)) {}

RequestProxy& RequestProxy::add_argument(corba::Value v) {
  if (request_)
    throw corba::BAD_INV_ORDER("add_argument after send",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  arguments_.push_back(std::move(v));
  return *this;
}

void RequestProxy::send_deferred() {
  if (request_)
    throw corba::BAD_INV_ORDER("request already sent",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  request_.emplace(engine_.current(), operation_);
  for (const corba::Value& arg : arguments_) request_->add_argument(arg);
  request_->send_deferred();
}

bool RequestProxy::poll_response() {
  if (!request_)
    throw corba::BAD_INV_ORDER("poll_response before send_deferred",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  return request_->completed() || request_->poll_response();
}

void RequestProxy::get_response() {
  if (!request_)
    throw corba::BAD_INV_ORDER("get_response before send_deferred",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  if (request_->completed()) return;
  // Attempt 1 is the already-sent request; later attempts re-issue against
  // the recovered target.  The engine's failure handler owns the retry
  // decision (attempt limit, completion semantics, backoff, deadline,
  // quarantine reporting) so deferred calls behave exactly like call().
  const double call_start = engine_.now();
  for (int attempt = 1;; ++attempt) {
    // Captured before get_response(): on a multiplexed transport a sibling
    // call's failure may rebind the engine while we wait, and the engine's
    // batched-failure handling needs to know which target *this* request
    // actually went to.
    const corba::IOR sent_to = request_->target().ior();
    try {
      request_->get_response();
      engine_.note_success();
      return;
    } catch (const corba::COMM_FAILURE& error) {
      engine_.on_failure(error, attempt, call_start, sent_to);
    } catch (const corba::TRANSIENT& error) {
      engine_.on_failure(error, attempt, call_start, sent_to);
    } catch (const corba::TIMEOUT& error) {
      engine_.on_failure(error, attempt, call_start, sent_to);
    }
    ++reissues_;
    request_->reset();
    request_->set_target(engine_.current());
    request_->send_deferred();
  }
}

void RequestProxy::invoke() {
  send_deferred();
  get_response();
}

const corba::Value& RequestProxy::return_value() const {
  if (!request_)
    throw corba::BAD_INV_ORDER("return_value before completion",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  return request_->return_value();
}

}  // namespace ft
