#include "ft/checkpoint_store.hpp"

#include <algorithm>
#include <fstream>

#include "sim/work_meter.hpp"

namespace ft {

namespace {

corba::RegisterUserException<NoCheckpoint> register_no_checkpoint;

}  // namespace

MemoryCheckpointStore::MemoryCheckpointStore(CostModel cost) : cost_(cost) {}

void MemoryCheckpointStore::store(const std::string& key, std::uint64_t version,
                                  const corba::Blob& state) {
  sim::WorkMeter::charge(cost_.work_per_store +
                         cost_.work_per_byte * static_cast<double>(state.size()));
  std::lock_guard lock(mu_);
  Checkpoint& checkpoint = checkpoints_[key];
  if (checkpoint.version != 0 && version <= checkpoint.version)
    throw corba::BAD_PARAM("stale checkpoint version " +
                           std::to_string(version) + " <= " +
                           std::to_string(checkpoint.version));
  checkpoint.version = version;
  checkpoint.state = state;
  ++store_count_;
}

std::optional<Checkpoint> MemoryCheckpointStore::load(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = checkpoints_.find(key);
  if (it == checkpoints_.end()) return std::nullopt;
  sim::WorkMeter::charge(cost_.work_per_store +
                         cost_.work_per_byte *
                             static_cast<double>(it->second.state.size()));
  ++load_count_;
  return it->second;
}

void MemoryCheckpointStore::remove(const std::string& key) {
  std::lock_guard lock(mu_);
  checkpoints_.erase(key);
}

std::vector<std::string> MemoryCheckpointStore::keys() {
  std::lock_guard lock(mu_);
  std::vector<std::string> result;
  result.reserve(checkpoints_.size());
  for (const auto& [key, checkpoint] : checkpoints_) result.push_back(key);
  return result;
}

std::uint64_t MemoryCheckpointStore::stores() const {
  std::lock_guard lock(mu_);
  return store_count_;
}

std::uint64_t MemoryCheckpointStore::loads() const {
  std::lock_guard lock(mu_);
  return load_count_;
}

FileCheckpointStore::FileCheckpointStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path FileCheckpointStore::path_for(const std::string& key) const {
  // Keys may contain characters unsuitable for file names; hex-encode them.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string encoded;
  encoded.reserve(key.size() * 2);
  for (unsigned char c : key) {
    encoded.push_back(kHex[c >> 4]);
    encoded.push_back(kHex[c & 0xf]);
  }
  return directory_ / (encoded + ".ckpt");
}

void FileCheckpointStore::store(const std::string& key, std::uint64_t version,
                                const corba::Blob& state) {
  std::lock_guard lock(mu_);
  if (auto existing = [&]() -> std::optional<std::uint64_t> {
        std::ifstream in(path_for(key), std::ios::binary);
        std::uint64_t v = 0;
        if (in.read(reinterpret_cast<char*>(&v), sizeof(v))) return v;
        return std::nullopt;
      }();
      existing && version <= *existing) {
    throw corba::BAD_PARAM("stale checkpoint version " +
                           std::to_string(version) + " <= " +
                           std::to_string(*existing));
  }
  const std::filesystem::path target = path_for(key);
  const std::filesystem::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw corba::INTERNAL("cannot write " + tmp.string());
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(state.data()),
              static_cast<std::streamsize>(state.size()));
    if (!out) throw corba::INTERNAL("short write to " + tmp.string());
  }
  std::filesystem::rename(tmp, target);
}

std::optional<Checkpoint> FileCheckpointStore::load(const std::string& key) {
  std::lock_guard lock(mu_);
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;
  Checkpoint checkpoint;
  if (!in.read(reinterpret_cast<char*>(&checkpoint.version),
               sizeof(checkpoint.version)))
    throw corba::INTERNAL("corrupt checkpoint file for key '" + key + "'");
  char byte;
  while (in.get(byte)) checkpoint.state.push_back(static_cast<std::byte>(byte));
  return checkpoint;
}

void FileCheckpointStore::remove(const std::string& key) {
  std::lock_guard lock(mu_);
  std::error_code ignored;
  std::filesystem::remove(path_for(key), ignored);
}

std::vector<std::string> FileCheckpointStore::keys() {
  std::lock_guard lock(mu_);
  std::vector<std::string> result;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != ".ckpt") continue;
    const std::string encoded = entry.path().stem().string();
    std::string key;
    for (std::size_t i = 0; i + 1 < encoded.size(); i += 2) {
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nibble(encoded[i]);
      const int lo = nibble(encoded[i + 1]);
      if (hi < 0 || lo < 0) break;
      key.push_back(static_cast<char>((hi << 4) | lo));
    }
    result.push_back(std::move(key));
  }
  std::sort(result.begin(), result.end());
  return result;
}

CheckpointStoreServant::CheckpointStoreServant(
    std::shared_ptr<CheckpointStoreClient> impl)
    : impl_(std::move(impl)) {
  if (!impl_) throw corba::BAD_PARAM("null checkpoint store backend");
}

corba::Value CheckpointStoreServant::dispatch(std::string_view op,
                                              const corba::ValueSeq& args) {
  if (op == "store") {
    check_arity(op, args, 3);
    impl_->store(args[0].as_string(), args[1].as_u64(), args[2].as_blob());
    return {};
  }
  if (op == "load") {
    check_arity(op, args, 1);
    const auto checkpoint = impl_->load(args[0].as_string());
    if (!checkpoint)
      throw NoCheckpoint("no checkpoint for key '" + args[0].as_string() + "'");
    return corba::Value(corba::ValueSeq{corba::Value(checkpoint->version),
                                        corba::Value(checkpoint->state)});
  }
  if (op == "remove") {
    check_arity(op, args, 1);
    impl_->remove(args[0].as_string());
    return {};
  }
  if (op == "keys") {
    check_arity(op, args, 0);
    corba::ValueSeq out;
    for (const std::string& key : impl_->keys()) out.emplace_back(key);
    return corba::Value(std::move(out));
  }
  throw corba::BAD_OPERATION(std::string(op));
}

void CheckpointStoreStub::store(const std::string& key, std::uint64_t version,
                                const corba::Blob& state) {
  call("store", {corba::Value(key), corba::Value(version), corba::Value(state)});
}

std::optional<Checkpoint> CheckpointStoreStub::load(const std::string& key) {
  try {
    const corba::Value reply = call("load", {corba::Value(key)});
    const corba::ValueSeq& fields = reply.as_sequence();
    return Checkpoint{fields.at(0).as_u64(), fields.at(1).as_blob()};
  } catch (const NoCheckpoint&) {
    return std::nullopt;
  }
}

void CheckpointStoreStub::remove(const std::string& key) {
  call("remove", {corba::Value(key)});
}

std::vector<std::string> CheckpointStoreStub::keys() {
  const corba::Value reply = call("keys", {});
  std::vector<std::string> result;
  for (const corba::Value& key : reply.as_sequence())
    result.push_back(key.as_string());
  return result;
}

}  // namespace ft
