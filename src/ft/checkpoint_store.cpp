#include "ft/checkpoint_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>

#include "ft/delta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/work_meter.hpp"

namespace ft {

namespace {

corba::RegisterUserException<NoCheckpoint> register_no_checkpoint;

obs::Histogram& fsync_latency() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("ft.store.fsync_latency_s");
  return histogram;
}

}  // namespace

void CheckpointStoreClient::store_delta(const std::string& key,
                                        std::uint64_t base_version,
                                        std::uint64_t version,
                                        const corba::Blob& delta) {
  // Fallback for backends without native delta support: materialize locally
  // and forward as a full store.  Correctness is identical; only the wire /
  // storage savings are lost.
  const auto current = load(key);
  if (!current)
    throw corba::BAD_PARAM("delta without base checkpoint for key '" + key +
                           "'");
  if (current->version != base_version)
    throw_base_mismatch(base_version, current->version);
  store(key, version, StateDelta::decode(delta).apply(current->state));
}

std::uint64_t CheckpointStoreClient::head_version(const std::string& key) {
  const auto current = load(key);
  return current ? current->version : 0;
}

CheckpointLog CheckpointStoreClient::fetch_log(const std::string& key,
                                               std::uint64_t since) {
  CheckpointLog log;
  const auto current = load(key);
  if (!current || current->version == since) return log;
  log.has_base = true;
  log.base_version = current->version;
  log.base = current->state;
  return log;
}

MemoryCheckpointStore::MemoryCheckpointStore(CostModel cost, DeltaPolicy delta)
    : cost_(cost), delta_policy_(delta) {}

void MemoryCheckpointStore::store(const std::string& key, std::uint64_t version,
                                  const corba::Blob& state) {
  sim::WorkMeter::charge(cost_.work_per_store +
                         cost_.work_per_byte * static_cast<double>(state.size()));
  // Copy outside the lock so the critical section is a move-assign, not a
  // potentially large allocation + memcpy.
  corba::Blob copy = state;
  std::lock_guard lock(mu_);
  auto it = checkpoints_.find(key);
  if (it == checkpoints_.end())
    it = checkpoints_.emplace(key, SegmentLog(delta_policy_)).first;
  it->second.put_full(version, std::move(copy));
  ++store_count_;
}

void MemoryCheckpointStore::store_delta(const std::string& key,
                                        std::uint64_t base_version,
                                        std::uint64_t version,
                                        const corba::Blob& delta) {
  // Only the shipped delta bytes are charged — this is the whole point of
  // incremental checkpointing and what the Table 1 experiment measures.
  sim::WorkMeter::charge(cost_.work_per_store +
                         cost_.work_per_byte * static_cast<double>(delta.size()));
  corba::Blob copy = delta;
  std::lock_guard lock(mu_);
  auto it = checkpoints_.find(key);
  if (it == checkpoints_.end())
    throw corba::BAD_PARAM("delta without base checkpoint for key '" + key +
                           "'");
  if (it->second.append_delta(base_version, version, std::move(copy)))
    ++compaction_count_;
  ++delta_store_count_;
}

std::optional<Checkpoint> MemoryCheckpointStore::load(const std::string& key) {
  std::optional<Checkpoint> result;
  {
    std::lock_guard lock(mu_);
    auto it = checkpoints_.find(key);
    if (it == checkpoints_.end()) return std::nullopt;
    result = Checkpoint{it->second.version(), it->second.materialize()};
    ++load_count_;
  }
  // Charge the simulated cost after dropping mu_: WorkMeter::charge may pump
  // the virtual clock, and nothing after this point touches shared state.
  sim::WorkMeter::charge(cost_.work_per_store +
                         cost_.work_per_byte *
                             static_cast<double>(result->state.size()));
  return result;
}

void MemoryCheckpointStore::remove(const std::string& key) {
  std::lock_guard lock(mu_);
  checkpoints_.erase(key);
}

std::vector<std::string> MemoryCheckpointStore::keys() {
  std::lock_guard lock(mu_);
  std::vector<std::string> result;
  result.reserve(checkpoints_.size());
  for (const auto& [key, checkpoint] : checkpoints_) result.push_back(key);
  return result;
}

std::uint64_t MemoryCheckpointStore::head_version(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = checkpoints_.find(key);
  return it == checkpoints_.end() ? 0 : it->second.version();
}

CheckpointLog MemoryCheckpointStore::fetch_log(const std::string& key,
                                               std::uint64_t since) {
  std::lock_guard lock(mu_);
  auto it = checkpoints_.find(key);
  if (it == checkpoints_.end()) return {};
  return it->second.log_since(since);
}

std::uint64_t MemoryCheckpointStore::stores() const {
  std::lock_guard lock(mu_);
  return store_count_;
}

std::uint64_t MemoryCheckpointStore::loads() const {
  std::lock_guard lock(mu_);
  return load_count_;
}

std::uint64_t MemoryCheckpointStore::delta_stores() const {
  std::lock_guard lock(mu_);
  return delta_store_count_;
}

std::uint64_t MemoryCheckpointStore::compactions() const {
  std::lock_guard lock(mu_);
  return compaction_count_;
}

std::string_view to_string(FsyncMode mode) noexcept {
  switch (mode) {
    case FsyncMode::off:
      return "off";
    case FsyncMode::data:
      return "data";
    case FsyncMode::full:
      return "full";
  }
  return "unknown";
}

FileCheckpointStore::FileCheckpointStore(std::filesystem::path directory,
                                         DeltaPolicy delta, FsyncMode fsync)
    : directory_(std::move(directory)),
      delta_policy_(delta),
      fsync_mode_(fsync) {
  std::filesystem::create_directories(directory_);
}

std::string FileCheckpointStore::encoded_key(const std::string& key) const {
  // Keys may contain characters unsuitable for file names; hex-encode them.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string encoded;
  encoded.reserve(key.size() * 2);
  for (unsigned char c : key) {
    encoded.push_back(kHex[c >> 4]);
    encoded.push_back(kHex[c & 0xf]);
  }
  return encoded;
}

std::filesystem::path FileCheckpointStore::path_for(const std::string& key) const {
  return directory_ / (encoded_key(key) + ".ckpt");
}

std::filesystem::path FileCheckpointStore::delta_path_for(
    const std::string& key, std::uint64_t version) const {
  return directory_ /
         (encoded_key(key) + "." + std::to_string(version) + ".dckpt");
}

void FileCheckpointStore::write_atomically(
    const std::filesystem::path& target,
    std::span<const std::byte> payload) const {
  const std::filesystem::path tmp = target.string() + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw corba::INTERNAL("cannot write " + tmp.string());
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written,
                              payload.size() - written);
    if (n < 0) {
      ::close(fd);
      throw corba::INTERNAL("short write to " + tmp.string());
    }
    written += static_cast<std::size_t>(n);
  }
  double sync_started = 0.0;
  if (fsync_mode_ != FsyncMode::off) {
    sync_started = obs::now();
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw corba::INTERNAL("fsync failed for " + tmp.string());
    }
  }
  ::close(fd);
  std::filesystem::rename(tmp, target);
  if (fsync_mode_ == FsyncMode::full) {
    // Make the rename itself durable: sync the containing directory.
    const int dir_fd =
        ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  if (fsync_mode_ != FsyncMode::off)
    fsync_latency().record(obs::now() - sync_started);
}

std::optional<Checkpoint> FileCheckpointStore::read_base(
    const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size < sizeof(std::uint64_t))
    throw corba::INTERNAL("corrupt checkpoint file for key '" + key + "'");
  in.seekg(0);
  Checkpoint base;
  if (!in.read(reinterpret_cast<char*>(&base.version), sizeof(base.version)))
    throw corba::INTERNAL("corrupt checkpoint file for key '" + key + "'");
  base.state.resize(size - sizeof(std::uint64_t));
  if (!base.state.empty() &&
      !in.read(reinterpret_cast<char*>(base.state.data()),
               static_cast<std::streamsize>(base.state.size())))
    throw corba::INTERNAL("corrupt checkpoint file for key '" + key + "'");
  return base;
}

std::vector<FileCheckpointStore::DiskSegment> FileCheckpointStore::read_segments(
    const std::string& key) const {
  const std::string prefix = encoded_key(key) + ".";
  std::vector<DiskSegment> segments;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != ".dckpt") continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary | std::ios::ate);
    if (!in) continue;
    const auto size = static_cast<std::size_t>(in.tellg());
    if (size < 2 * sizeof(std::uint64_t)) continue;  // truncated: orphan
    in.seekg(0);
    DiskSegment segment;
    segment.path = entry.path();
    in.read(reinterpret_cast<char*>(&segment.segment.version),
            sizeof(segment.segment.version));
    in.read(reinterpret_cast<char*>(&segment.segment.base_version),
            sizeof(segment.segment.base_version));
    segment.segment.delta.resize(size - 2 * sizeof(std::uint64_t));
    if (!segment.segment.delta.empty())
      in.read(reinterpret_cast<char*>(segment.segment.delta.data()),
              static_cast<std::streamsize>(segment.segment.delta.size()));
    if (!in) continue;
    segments.push_back(std::move(segment));
  }
  std::sort(segments.begin(), segments.end(),
            [](const DiskSegment& a, const DiskSegment& b) {
              return a.segment.version < b.segment.version;
            });
  return segments;
}

std::optional<FileCheckpointStore::Materialized>
FileCheckpointStore::load_locked(const std::string& key) {
  auto base = read_base(key);
  if (!base) {
    // No base: any delta segments lying around (crash between base removal
    // and segment cleanup) can never apply again — discard them.
    remove_segments(key);
    return std::nullopt;
  }
  Materialized m;
  m.checkpoint = std::move(*base);
  m.base_version = m.checkpoint.version;
  m.base_size = m.checkpoint.state.size();

  // Replay the delta chain through the shared crash-recovery validation
  // (segment_log.hpp): stale leftovers and gap orphans are deleted.
  std::vector<DiskSegment> disk = read_segments(key);
  std::vector<LogSegment> candidates;
  candidates.reserve(disk.size());
  for (DiskSegment& segment : disk)
    candidates.push_back(std::move(segment.segment));
  const ChainSplit split = validate_chain(m.base_version, candidates);
  for (const std::size_t index : split.orphans) {
    std::error_code ignored;
    std::filesystem::remove(disk[index].path, ignored);
  }
  for (const std::size_t index : split.keep) {
    LogSegment& segment = candidates[index];
    m.checkpoint.state =
        StateDelta::decode(segment.delta).apply(m.checkpoint.state);
    m.checkpoint.version = segment.version;
    ++m.chain_length;
    m.chain_payload += segment.delta.size();
    m.chain.push_back(std::move(segment));
  }
  return m;
}

void FileCheckpointStore::remove_segments(const std::string& key) {
  const std::string prefix = encoded_key(key) + ".";
  std::vector<std::filesystem::path> doomed;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != ".dckpt") continue;
    if (entry.path().filename().string().rfind(prefix, 0) != 0) continue;
    doomed.push_back(entry.path());
  }
  for (const auto& path : doomed) {
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
  }
}

void FileCheckpointStore::store(const std::string& key, std::uint64_t version,
                                const corba::Blob& state) {
  std::lock_guard lock(mu_);
  if (const auto existing = load_locked(key);
      existing && version <= existing->checkpoint.version)
    throw_stale_version(version, existing->checkpoint.version);
  corba::Blob payload(sizeof(version) + state.size());
  std::memcpy(payload.data(), &version, sizeof(version));
  if (!state.empty())
    std::memcpy(payload.data() + sizeof(version), state.data(), state.size());
  write_atomically(path_for(key), payload);
  // The new base supersedes the whole chain.
  remove_segments(key);
}

void FileCheckpointStore::store_delta(const std::string& key,
                                      std::uint64_t base_version,
                                      std::uint64_t version,
                                      const corba::Blob& delta) {
  std::lock_guard lock(mu_);
  const auto existing = load_locked(key);
  if (!existing)
    throw corba::BAD_PARAM("delta without base checkpoint for key '" + key +
                           "'");
  if (version <= existing->checkpoint.version)
    throw_stale_version(version, existing->checkpoint.version);
  if (base_version != existing->checkpoint.version)
    throw_base_mismatch(base_version, existing->checkpoint.version);

  corba::Blob payload(2 * sizeof(std::uint64_t) + delta.size());
  std::memcpy(payload.data(), &version, sizeof(version));
  std::memcpy(payload.data() + sizeof(version), &base_version,
              sizeof(base_version));
  if (!delta.empty())
    std::memcpy(payload.data() + 2 * sizeof(std::uint64_t), delta.data(),
                delta.size());
  write_atomically(delta_path_for(key, version), payload);

  if (existing->chain_length + 1 >= delta_policy_.max_chain ||
      existing->chain_payload + delta.size() > existing->base_size) {
    // Compact: materialize the new tip and rewrite it as the base.  The
    // base rename commits the compaction; segment removal afterwards is
    // cleanup (leftovers are discarded as stale on the next load).
    corba::Blob state =
        StateDelta::decode(delta).apply(existing->checkpoint.state);
    corba::Blob base(sizeof(version) + state.size());
    std::memcpy(base.data(), &version, sizeof(version));
    if (!state.empty())
      std::memcpy(base.data() + sizeof(version), state.data(), state.size());
    write_atomically(path_for(key), base);
    remove_segments(key);
  }
}

std::optional<Checkpoint> FileCheckpointStore::load(const std::string& key) {
  std::lock_guard lock(mu_);
  auto m = load_locked(key);
  if (!m) return std::nullopt;
  return std::move(m->checkpoint);
}

void FileCheckpointStore::remove(const std::string& key) {
  std::lock_guard lock(mu_);
  std::error_code ignored;
  std::filesystem::remove(path_for(key), ignored);
  remove_segments(key);
}

std::vector<std::string> FileCheckpointStore::keys() {
  std::lock_guard lock(mu_);
  std::vector<std::string> result;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != ".ckpt") continue;
    const std::string encoded = entry.path().stem().string();
    std::string key;
    for (std::size_t i = 0; i + 1 < encoded.size(); i += 2) {
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nibble(encoded[i]);
      const int lo = nibble(encoded[i + 1]);
      if (hi < 0 || lo < 0) break;
      key.push_back(static_cast<char>((hi << 4) | lo));
    }
    result.push_back(std::move(key));
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t FileCheckpointStore::head_version(const std::string& key) {
  std::lock_guard lock(mu_);
  auto m = load_locked(key);
  return m ? m->checkpoint.version : 0;
}

CheckpointLog FileCheckpointStore::fetch_log(const std::string& key,
                                             std::uint64_t since) {
  std::lock_guard lock(mu_);
  auto m = load_locked(key);
  CheckpointLog log;
  if (!m || m->checkpoint.version == since) return log;
  // Suffix when `since` is a version the validated chain still passes
  // through; full base + chain otherwise.
  bool anchored = since == m->base_version;
  std::size_t first = 0;
  if (!anchored) {
    for (std::size_t i = 0; i < m->chain.size(); ++i) {
      if (m->chain[i].version == since) {
        anchored = true;
        first = i + 1;
        break;
      }
    }
  }
  if (anchored) {
    log.segments.assign(
        std::make_move_iterator(m->chain.begin() +
                                static_cast<std::ptrdiff_t>(first)),
        std::make_move_iterator(m->chain.end()));
    return log;
  }
  log.has_base = true;
  log.base_version = m->base_version;
  auto base = read_base(key);
  log.base = base ? std::move(base->state) : corba::Blob{};
  log.segments = std::move(m->chain);
  return log;
}

CheckpointStoreServant::CheckpointStoreServant(
    std::shared_ptr<CheckpointStoreClient> impl)
    : impl_(std::move(impl)) {
  if (!impl_) throw corba::BAD_PARAM("null checkpoint store backend");
}

corba::Value CheckpointStoreServant::dispatch(std::string_view op,
                                              const corba::ValueSeq& args) {
  if (op == "store") {
    check_arity(op, args, 3);
    impl_->store(args[0].as_string(), args[1].as_u64(), args[2].as_blob());
    return {};
  }
  if (op == "store_delta") {
    check_arity(op, args, 4);
    impl_->store_delta(args[0].as_string(), args[1].as_u64(), args[2].as_u64(),
                       args[3].as_blob());
    return {};
  }
  if (op == "load") {
    check_arity(op, args, 1);
    const auto checkpoint = impl_->load(args[0].as_string());
    if (!checkpoint)
      throw NoCheckpoint("no checkpoint for key '" + args[0].as_string() + "'");
    return corba::Value(corba::ValueSeq{corba::Value(checkpoint->version),
                                        corba::Value(checkpoint->state)});
  }
  if (op == "remove") {
    check_arity(op, args, 1);
    impl_->remove(args[0].as_string());
    return {};
  }
  if (op == "keys") {
    check_arity(op, args, 0);
    corba::ValueSeq out;
    for (const std::string& key : impl_->keys()) out.emplace_back(key);
    return corba::Value(std::move(out));
  }
  if (op == "head_version") {
    check_arity(op, args, 1);
    return corba::Value(impl_->head_version(args[0].as_string()));
  }
  if (op == "fetch_log") {
    check_arity(op, args, 2);
    return impl_->fetch_log(args[0].as_string(), args[1].as_u64()).to_value();
  }
  throw corba::BAD_OPERATION(std::string(op));
}

void CheckpointStoreStub::store(const std::string& key, std::uint64_t version,
                                const corba::Blob& state) {
  call("store", {corba::Value(key), corba::Value(version), corba::Value(state)});
}

void CheckpointStoreStub::store_delta(const std::string& key,
                                      std::uint64_t base_version,
                                      std::uint64_t version,
                                      const corba::Blob& delta) {
  call("store_delta", {corba::Value(key), corba::Value(base_version),
                       corba::Value(version), corba::Value(delta)});
}

std::optional<Checkpoint> CheckpointStoreStub::load(const std::string& key) {
  try {
    const corba::Value reply = call("load", {corba::Value(key)});
    const corba::ValueSeq& fields = reply.as_sequence();
    return Checkpoint{fields.at(0).as_u64(), fields.at(1).as_blob()};
  } catch (const NoCheckpoint&) {
    return std::nullopt;
  }
}

void CheckpointStoreStub::remove(const std::string& key) {
  call("remove", {corba::Value(key)});
}

std::vector<std::string> CheckpointStoreStub::keys() {
  const corba::Value reply = call("keys", {});
  std::vector<std::string> result;
  for (const corba::Value& key : reply.as_sequence())
    result.push_back(key.as_string());
  return result;
}

std::uint64_t CheckpointStoreStub::head_version(const std::string& key) {
  return call("head_version", {corba::Value(key)}).as_u64();
}

CheckpointLog CheckpointStoreStub::fetch_log(const std::string& key,
                                             std::uint64_t since) {
  return CheckpointLog::from_value(
      call("fetch_log", {corba::Value(key), corba::Value(since)}));
}

}  // namespace ft
