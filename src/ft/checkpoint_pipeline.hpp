// Checkpoint shipping pipeline: delta encoding + optional asynchrony.
//
// The paper's proxy blocks every successful call on a full-state store
// round-trip.  The pipeline removes both costs independently:
//   * delta modes diff the captured state against the last checkpoint the
//     store acknowledged and ship only changed chunks (ft/delta.hpp);
//   * async mode decouples the caller from the store round-trip entirely —
//     the capture is enqueued (bounded queue, oldest entry coalesced away
//     when full) and written by a background path: a worker thread under
//     real transports, or a virtual-clock deferred event when the owner
//     supplies a `defer` executor (the simulator does), so deterministic
//     traces are preserved.
// State capture stays synchronous in the proxy either way — only the
// shipping is pipelined, so recovery after flush() restores exactly the
// state the last successful call produced (minus at most the entries a
// failed store dropped, the same window sync mode has).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ft/checkpoint_store.hpp"
#include "ft/delta.hpp"

namespace ft {

/// How checkpoints travel to the store (the Table 1 measurement axis).
enum class CheckpointMode {
  /// Full state, synchronous store round-trip — the paper's behaviour
  /// ("paper mode"); the default, so existing tests and Table 1's baseline
  /// are unchanged.
  full_sync,
  /// Chunked diff against the last acknowledged checkpoint, still
  /// synchronous.  Isolates the wire/storage saving from the asynchrony.
  delta_sync,
  /// Chunked diff shipped by the background path; note_success() returns
  /// as soon as the capture is enqueued.
  delta_async,
};

std::string_view to_string(CheckpointMode mode) noexcept;

/// Ships versioned state captures to a CheckpointStoreClient according to a
/// CheckpointMode.  Not thread-safe for concurrent submit() callers (the
/// owning proxy serializes calls); the internal queue is what makes the
/// worker-thread backend safe.
class CheckpointPipeline {
 public:
  struct Config {
    std::shared_ptr<CheckpointStoreClient> store;
    std::string key;
    CheckpointMode mode = CheckpointMode::full_sync;
    /// Diff granularity for the delta modes.
    std::uint32_t chunk_size = kDefaultChunkSize;
    /// Async queue depth; when full the oldest pending capture is coalesced
    /// away (the newer state supersedes it for recovery purposes).
    std::size_t depth = 4;
    /// Store attempts per capture on the async path before it is dropped
    /// and counted in failures().  Sync modes throw instead (the proxy owns
    /// the retry policy there).
    int attempts = 3;
    /// Deferred executor.  When set, async shipping runs as deferred events
    /// on the caller's scheduler (the simulator's virtual clock); when
    /// null, a worker thread is spawned lazily.
    std::function<void(std::function<void()>)> defer;
  };

  explicit CheckpointPipeline(Config config);
  ~CheckpointPipeline();
  CheckpointPipeline(const CheckpointPipeline&) = delete;
  CheckpointPipeline& operator=(const CheckpointPipeline&) = delete;

  /// Ships (sync modes, may throw) or enqueues (async mode, never throws)
  /// the capture of checkpoint `version`.
  void submit(std::uint64_t version, corba::Blob state);

  /// Barrier: every capture submitted before the call has been attempted
  /// against the store when it returns.  No-op in the sync modes.
  void flush();

  CheckpointMode mode() const noexcept { return config_.mode; }

  // --- telemetry ------------------------------------------------------------
  /// Checkpoints acknowledged by the store (full + delta).
  std::uint64_t stored() const noexcept {
    return full_stores_.load() + delta_stores_.load();
  }
  std::uint64_t full_stores() const noexcept { return full_stores_.load(); }
  std::uint64_t delta_stores() const noexcept { return delta_stores_.load(); }
  /// Async captures dropped after exhausting their store attempts.
  std::uint64_t failures() const noexcept { return failures_.load(); }
  /// Async captures superseded by a newer one before they shipped.
  std::uint64_t coalesced() const noexcept { return coalesced_.load(); }
  /// Bytes actually shipped to the store (delta payloads, full states).
  std::uint64_t bytes_shipped() const noexcept { return bytes_shipped_.load(); }
  /// Deltas the store rejected (base moved under us — wipe, competing
  /// writer, shard failover to a lagging replica), answered by a full
  /// re-anchor.  Mirrored in `ft.checkpoint.delta_fallbacks_total`.
  std::uint64_t delta_fallbacks() const noexcept {
    return delta_fallbacks_.load();
  }

 private:
  struct Item {
    std::uint64_t version = 0;
    corba::Blob state;
  };

  bool async() const noexcept {
    return config_.mode == CheckpointMode::delta_async;
  }

  /// One shipping attempt: delta against the acked base when possible and
  /// profitable, full store otherwise.  Throws on transport/store failure.
  void ship_now(std::uint64_t version, const corba::Blob& state);
  /// Async attempt loop; returns false when the capture was dropped.
  bool try_ship(std::uint64_t version, const corba::Blob& state);
  void note_acked(std::uint64_t version, const corba::Blob& state);

  void enqueue(Item item);
  void drain_deferred();
  void worker_loop();
  void ensure_worker();

  Config config_;

  // Acked-base fingerprint cache: touched only by the shipping side (the
  // caller in sync modes, the drain/worker in async mode).
  bool have_acked_ = false;
  std::uint64_t acked_version_ = 0;
  std::size_t acked_size_ = 0;
  std::vector<std::uint64_t> acked_fingerprints_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<Item> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  bool drain_scheduled_ = false;
  bool draining_ = false;
  std::thread worker_;
  /// Deferred events may outlive the pipeline (the sim queue holds them);
  /// they capture this flag and become no-ops once the pipeline dies.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::atomic<std::uint64_t> full_stores_{0};
  std::atomic<std::uint64_t> delta_stores_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> bytes_shipped_{0};
  std::atomic<std::uint64_t> delta_fallbacks_{0};
};

}  // namespace ft
