#include "ft/proxy.hpp"

#include "orb/log.hpp"

namespace ft {

ProxyEngine::ProxyEngine(ProxyConfig config)
    : config_(std::move(config)), current_(config_.initial) {
  if (current_.is_nil()) throw corba::BAD_PARAM("proxy requires a target");
  if (config_.policy.max_attempts < 1)
    throw corba::BAD_PARAM("max_attempts must be >= 1");
  if (config_.store && config_.checkpoint_key.empty())
    throw corba::BAD_PARAM("checkpoint store requires a checkpoint key");
}

bool ProxyEngine::should_retry(const corba::SystemException& error) const {
  if (error.completed() == corba::CompletionStatus::completed_maybe &&
      !config_.policy.retry_on_completed_maybe)
    return false;
  return true;
}

corba::Value ProxyEngine::call(std::string_view op, corba::ValueSeq args) {
  for (int attempt = 1;; ++attempt) {
    try {
      corba::Value result = current_.invoke(op, args);
      note_success();
      return result;
    } catch (const corba::COMM_FAILURE& error) {
      if (attempt >= config_.policy.max_attempts || !should_retry(error)) throw;
    } catch (const corba::TRANSIENT& error) {
      if (attempt >= config_.policy.max_attempts || !should_retry(error)) throw;
    } catch (const corba::TIMEOUT& error) {
      // A hung/overloaded server is as good as a dead one to the caller.
      if (attempt >= config_.policy.max_attempts || !should_retry(error)) throw;
    }
    ++retries_;
    recover_now();
  }
}

void ProxyEngine::note_success() {
  if (!config_.store || config_.policy.checkpoint_every <= 0) return;
  if (++calls_since_checkpoint_ < config_.policy.checkpoint_every) return;
  try {
    checkpoint_now();
  } catch (const corba::SystemException&) {
    // The call itself succeeded; a failure while *checkpointing* must not
    // fail it — and retrying it would execute it twice.  Count the miss and
    // move to a live instance so the next call does not fail too.
    ++checkpoint_failures_;
    corba::log::emit(corba::log::Level::warning, "ft.proxy",
                     "checkpoint of '" + config_.checkpoint_key +
                         "' failed; attempting relocation");
    try {
      recover_now();
    } catch (const corba::SystemException&) {
      // No replacement available right now; the next call's retry loop
      // will surface the failure if the situation persists.
    }
  }
}

void ProxyEngine::checkpoint_now() {
  if (!config_.store) return;
  const corba::Blob state = get_state(current_);
  config_.store->store(config_.checkpoint_key, ++version_, state);
  ++checkpoints_;
  calls_since_checkpoint_ = 0;
}

std::string ProxyEngine::host_of_current() const {
  if (!config_.naming || config_.service_name.empty()) return {};
  try {
    for (const naming::Offer& offer :
         config_.naming->list_offers(config_.service_name)) {
      if (offer.ref.ior() == current_.ior()) return offer.host;
    }
  } catch (const corba::Exception&) {
    // Offer bookkeeping is best-effort; recovery proceeds without it.
  }
  return {};
}

void ProxyEngine::rebind(corba::ObjectRef next) {
  current_ = std::move(next);
  ++recoveries_;
  if (corba::log::enabled())
    corba::log::emit(corba::log::Level::info, "ft.proxy",
                     "service '" + config_.service_name.to_string() +
                         "' re-targeted to " +
                         current_.ior().to_display_string());
  if (on_rebind) on_rebind(current_);
}

void ProxyEngine::recover_now() {
  // Acquire-then-swap: the old instance's bookkeeping is only touched after
  // a replacement has been secured and restored, so a recovery that fails
  // midway (store unreachable, no factory, ...) leaves the proxy and the
  // naming service exactly as they were.
  const corba::IOR failed = current_.ior();
  const std::string failed_host = host_of_current();
  const RecoveryMode mode = config_.policy.mode;

  corba::ObjectRef next;
  std::string next_host;
  bool from_factory = false;

  // 1a. Try another existing offer.  The failed instance's offer may still
  // be bound, so give cycling strategies a few draws to move past it.
  if (mode == RecoveryMode::reresolve ||
      mode == RecoveryMode::reresolve_then_factory) {
    if (config_.naming && !config_.service_name.empty()) {
      try {
        for (int attempt = 0; attempt < 4 && next.is_nil(); ++attempt) {
          corba::ObjectRef candidate = config_.naming->resolve_with(
              config_.service_name, config_.policy.resolve_strategy);
          if (!(candidate.ior() == failed)) next = std::move(candidate);
        }
      } catch (const naming::NotFound&) {
        // No offers left; fall through to the factory if allowed.
      } catch (const corba::SystemException&) {
        // Naming unreachable; fall through to the factory if allowed.
      }
    }
    if (next.is_nil() && mode == RecoveryMode::reresolve)
      throw corba::TRANSIENT("recovery failed: no replacement offer for '" +
                                 config_.service_name.to_string() + "'",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
  }

  // 1b. Start a brand-new instance through a factory on a good host.
  if (next.is_nil()) {
    if (!config_.locate_factory)
      throw corba::TRANSIENT("recovery failed: no factory locator configured",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
    ServiceFactoryStub factory = config_.locate_factory();
    if (factory.is_nil())
      throw corba::TRANSIENT("recovery failed: no factory available",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
    next = factory.create(config_.service_type);
    next_host = factory.host();
    from_factory = true;
  }

  // 2. Restore the last checkpoint into the replacement.
  if (config_.policy.restore_on_recover && config_.store) {
    if (const auto checkpoint = config_.store->load(config_.checkpoint_key))
      set_state(next, checkpoint->state);
  }

  // 3. Repair the offer pool (best effort): drop the failed instance's
  // offer, advertise a factory-created replacement.
  if (config_.naming && !config_.service_name.empty()) {
    if (config_.policy.unbind_failed_offer && !failed_host.empty()) {
      try {
        config_.naming->unbind_offer(config_.service_name, failed_host);
      } catch (const corba::Exception&) {
      }
    }
    if (from_factory && config_.policy.rebind_new_offer) {
      try {
        config_.naming->bind_offer(config_.service_name, next, next_host);
      } catch (const corba::Exception&) {
      }
    }
  }

  rebind(std::move(next));
}

}  // namespace ft
