#include "ft/proxy.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "orb/log.hpp"

namespace ft {

namespace {

// Flight-recorder step tags for recovery_step events (see
// obs/flight_recorder.hpp).
constexpr std::uint64_t kStepFailure = 1;
constexpr std::uint64_t kStepRecover = 2;
constexpr std::uint64_t kStepRebound = 3;
constexpr std::uint64_t kStepExhausted = 4;

struct ProxyMetrics {
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("ft.proxy.failures_total");
  obs::Counter& retries =
      obs::MetricsRegistry::global().counter("ft.proxy.retries_total");
  obs::Counter& batched_failures = obs::MetricsRegistry::global().counter(
      "ft.proxy.batched_failures_total");
  obs::Counter& recoveries =
      obs::MetricsRegistry::global().counter("ft.proxy.recoveries_total");
  obs::Counter& deadline_exhaustions = obs::MetricsRegistry::global().counter(
      "ft.proxy.deadline_exhaustions_total");
  obs::Counter& resume_fallbacks = obs::MetricsRegistry::global().counter(
      "ft.proxy.resume_fallbacks_total");
  obs::Counter& checkpoint_failures = obs::MetricsRegistry::global().counter(
      "ft.proxy.checkpoint_failures_total");
  obs::Histogram& backoff =
      obs::MetricsRegistry::global().histogram("ft.proxy.backoff_wait_s");
  obs::Histogram& recovery_latency =
      obs::MetricsRegistry::global().histogram("ft.proxy.recovery_latency_s");
};

ProxyMetrics& proxy_metrics() {
  static ProxyMetrics metrics;
  return metrics;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9f", s);
  return buf;
}

}  // namespace

ProxyEngine::ProxyEngine(ProxyConfig config)
    : config_(std::move(config)),
      current_(config_.initial),
      service_key_(config_.service_name.to_string()),
      backoff_rng_(config_.policy.backoff_seed) {
  if (current_.is_nil()) throw corba::BAD_PARAM("proxy requires a target");
  if (config_.policy.max_attempts < 1)
    throw corba::BAD_PARAM("max_attempts must be >= 1");
  if (config_.store && config_.checkpoint_key.empty())
    throw corba::BAD_PARAM("checkpoint store requires a checkpoint key");
  if (config_.policy.checkpoint_attempts < 1)
    throw corba::BAD_PARAM("checkpoint_attempts must be >= 1");
  const RecoveryPolicy& p = config_.policy;
  if (p.backoff_initial_s < 0 || p.backoff_max_s < 0 || p.call_deadline_s < 0)
    throw corba::BAD_PARAM("backoff/deadline times must be >= 0");
  if (p.backoff_factor < 1)
    throw corba::BAD_PARAM("backoff_factor must be >= 1");
  if (p.backoff_jitter < 0 || p.backoff_jitter >= 1)
    throw corba::BAD_PARAM("backoff_jitter must be in [0, 1)");
  if (config_.store && p.checkpoint_every > 0) {
    CheckpointPipeline::Config pipeline;
    pipeline.store = config_.store;
    pipeline.key = config_.checkpoint_key;
    pipeline.mode = p.checkpoint_mode;
    pipeline.chunk_size = p.delta_chunk_size;
    pipeline.depth = p.pipeline_depth;
    pipeline.attempts = p.checkpoint_attempts;
    pipeline.defer = config_.defer;
    pipeline_ = std::make_unique<CheckpointPipeline>(std::move(pipeline));
  }
}

double ProxyEngine::now() const {
  if (config_.clock) return config_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ProxyEngine::should_retry(const corba::SystemException& error) const {
  if (error.completed() == corba::CompletionStatus::completed_maybe &&
      !config_.policy.retry_on_completed_maybe)
    return false;
  return true;
}

corba::Value ProxyEngine::call(std::string_view op, corba::ValueSeq args) {
  const double call_start = now();
  for (int attempt = 1;; ++attempt) {
    try {
      corba::Value result = current_.invoke(op, args);
      note_success();
      return result;
    } catch (const corba::COMM_FAILURE& error) {
      on_failure(error, attempt, call_start);
    } catch (const corba::TRANSIENT& error) {
      on_failure(error, attempt, call_start);
    } catch (const corba::TIMEOUT& error) {
      // A hung/overloaded server is as good as a dead one to the caller.
      on_failure(error, attempt, call_start);
    }
  }
}

void ProxyEngine::on_failure(const corba::SystemException& error, int attempt,
                             double call_start) {
  on_failure(error, attempt, call_start, current_.ior());
}

void ProxyEngine::on_failure(const corba::SystemException& error, int attempt,
                             double call_start,
                             const corba::IOR& failed_target) {
  const double at = now();
  proxy_metrics().failures.inc();
  // Batched-failure fast path: a multiplexed connection failing takes every
  // in-flight call down with one COMM_FAILURE.  If a sibling call already
  // recovered (the proxy no longer targets the instance this request was
  // sent to), recovering again would abandon a healthy replacement — skip
  // backoff and recovery and let the caller re-issue against current().
  // The quarantine is not re-struck either: the strike belongs to the dead
  // host and the sibling's failure already reported it.
  if (!(current_.ior() == failed_target)) {
    if (attempt >= config_.policy.max_attempts || !should_retry(error)) {
      obs::timeline_event_at(at, "proxy", service_key_,
                             "surfacing batched failure: retry budget "
                             "exhausted");
      obs::flight_event(obs::FlightEvent::recovery_step, service_key_,
                        kStepExhausted, static_cast<std::uint64_t>(attempt));
      obs::flight_auto_dump("recovery exhausted: " + service_key_);
      throw;
    }
    ++batched_failures_;
    proxy_metrics().batched_failures.inc();
    obs::timeline_event_at(at, "proxy", service_key_,
                           "batched connection failure (attempt " +
                               std::to_string(attempt) +
                               "): sibling already recovered; re-issuing");
    return;
  }
  // A session-layer fallback means the transport already spent its resume
  // budget trying to keep the calls alive; only now does the paper's
  // recovery machinery take over.  Counted so operators can tell "flaky
  // network absorbed by sessions" from "recovery actually needed".
  if (error.minor() == corba::minor_code::session_resume_failed) {
    proxy_metrics().resume_fallbacks.inc();
    obs::timeline_event_at(at, "proxy", service_key_,
                           "session resume exhausted; falling back to "
                           "recovery");
  }
  obs::timeline_event_at(at, "proxy", service_key_,
                         "call failed (attempt " + std::to_string(attempt) +
                             "): " + error.repo_id());
  obs::flight_event(obs::FlightEvent::recovery_step, service_key_, kStepFailure,
                    static_cast<std::uint64_t>(attempt));
  if (config_.quarantine) {
    if (current_host_.empty()) current_host_ = host_of_current();
    config_.quarantine->report_failure(service_key_, current_host_, at);
  }
  if (attempt >= config_.policy.max_attempts || !should_retry(error)) {
    obs::timeline_event_at(at, "proxy", service_key_,
                           "surfacing failure: retry budget exhausted");
    obs::flight_event(obs::FlightEvent::recovery_step, service_key_,
                      kStepExhausted, static_cast<std::uint64_t>(attempt));
    obs::flight_auto_dump("recovery exhausted: " + service_key_);
    throw;
  }

  const RecoveryPolicy& p = config_.policy;
  double delay = 0.0;
  if (p.backoff_initial_s > 0) {
    delay = p.backoff_initial_s;
    for (int i = 1; i < attempt; ++i) delay *= p.backoff_factor;
    if (p.backoff_max_s > 0) delay = std::min(delay, p.backoff_max_s);
    if (p.backoff_jitter > 0)
      delay *= std::uniform_real_distribution<double>(
          1.0 - p.backoff_jitter, 1.0 + p.backoff_jitter)(backoff_rng_);
  }
  if (p.call_deadline_s > 0 &&
      (at - call_start) + delay > p.call_deadline_s) {
    ++deadline_exhaustions_;
    proxy_metrics().deadline_exhaustions.inc();
    obs::timeline_event_at(at, "proxy", service_key_,
                           "surfacing failure: call deadline exhausted");
    obs::flight_event(obs::FlightEvent::recovery_step, service_key_,
                      kStepExhausted, static_cast<std::uint64_t>(attempt));
    obs::flight_auto_dump("call deadline exhausted: " + service_key_);
    corba::log::emit(corba::log::Level::warning, "ft.proxy",
                     "call deadline exhausted for '" + service_key_ +
                         "'; surfacing the failure instead of retrying");
    throw;
  }
  if (delay > 0) {
    obs::timeline_event_at(at, "proxy", service_key_,
                           "backing off " + format_seconds(delay) + "s");
    proxy_metrics().backoff.record(delay);
    if (config_.sleep)
      config_.sleep(delay);
    else
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    backoff_waited_s_ += delay;
  }
  ++retries_;
  proxy_metrics().retries.inc();
  try {
    recover_now();
  } catch (const corba::SystemException&) {
    // Recovery itself hit a (possibly transient) failure — a lost resolve
    // or factory message must not turn into a failed logical call while
    // attempts remain.  Keep the current target; the next attempt's failure
    // re-enters this path and either recovers or exhausts the budget.
    //
    // One caveat: after a COMPLETED_MAYBE failure the call may have executed
    // and advanced the target's state, so reissuing against the *same*
    // instance without rolling it back would execute it twice.  Best-effort
    // restore the last checkpoint first; against a dead target the restore
    // fails, but so will the reissue (fast, consuming one attempt) — the
    // double-execution hazard only exists while the target is alive.
    if (error.completed() == corba::CompletionStatus::completed_maybe &&
        config_.policy.restore_on_recover && config_.store) {
      if (pipeline_) pipeline_->flush();
      for (int i = 0; i < config_.policy.checkpoint_attempts; ++i) {
        try {
          if (const auto checkpoint =
                  config_.store->load(config_.checkpoint_key))
            set_state(current_, checkpoint->state);
          break;
        } catch (const corba::SystemException&) {
        }
      }
    }
    obs::timeline_event_at(now(), "proxy", service_key_,
                           "recovery failed; retrying with current target");
    corba::log::emit(corba::log::Level::warning, "ft.proxy",
                     "recovery of '" + service_key_ +
                         "' failed; retrying with the current target");
  }
}

void ProxyEngine::note_success() {
  if (config_.quarantine && !config_.quarantine->empty()) {
    if (current_host_.empty()) current_host_ = host_of_current();
    config_.quarantine->report_success(service_key_, current_host_, now());
  }
  if (!config_.store || config_.policy.checkpoint_every <= 0) return;
  if (++calls_since_checkpoint_ < config_.policy.checkpoint_every) return;
  // The call itself succeeded; a failure while *checkpointing* must not
  // fail it — and retrying the call would execute it twice.  The checkpoint
  // transaction itself is idempotent, though, so it gets its own bounded
  // retries: under lossy transports this keeps one dropped message from
  // discarding the last call's state delta.
  for (int attempt = 1;; ++attempt) {
    try {
      checkpoint_now();
      return;
    } catch (const corba::SystemException&) {
      if (attempt < config_.policy.checkpoint_attempts) continue;
      // Give up: count the miss and move to a live instance so the next
      // call does not fail too.
      ++checkpoint_failures_;
      proxy_metrics().checkpoint_failures.inc();
      obs::timeline_event_at(now(), "proxy", service_key_,
                             "checkpoint failed; attempting relocation");
      corba::log::emit(corba::log::Level::warning, "ft.proxy",
                       "checkpoint of '" + config_.checkpoint_key +
                           "' failed; attempting relocation");
      try {
        recover_now();
      } catch (const corba::SystemException&) {
        // No replacement available right now; the next call's retry loop
        // will surface the failure if the situation persists.
      }
      return;
    }
  }
}

void ProxyEngine::checkpoint_now() {
  if (!pipeline_) return;
  // The capture is synchronous in every mode — state fidelity never depends
  // on the shipping mode; only the store round-trip is pipelined.
  corba::Blob state = get_state(current_);
  pipeline_->submit(++version_, std::move(state));
  calls_since_checkpoint_ = 0;
}

std::string ProxyEngine::host_of_current() const {
  if (!config_.naming || config_.service_name.empty()) return {};
  try {
    for (const naming::Offer& offer :
         config_.naming->list_offers(config_.service_name)) {
      if (offer.ref.ior() == current_.ior()) return offer.host;
    }
  } catch (const corba::Exception&) {
    // Offer bookkeeping is best-effort; recovery proceeds without it.
  }
  return {};
}

void ProxyEngine::rebind(corba::ObjectRef next, std::string host) {
  current_ = std::move(next);
  current_host_ = host.empty() ? host_of_current() : std::move(host);
  ++recoveries_;
  proxy_metrics().recoveries.inc();
  obs::flight_event(obs::FlightEvent::recovery_step, service_key_, kStepRebound,
                    recoveries_);
  obs::timeline_event_at(
      now(), "proxy", service_key_,
      "rebound to " + (current_host_.empty() ? std::string("<unknown host>")
                                             : current_host_));
  if (corba::log::enabled())
    corba::log::emit(corba::log::Level::info, "ft.proxy",
                     "service '" + config_.service_name.to_string() +
                         "' re-targeted to " +
                         current_.ior().to_display_string());
  if (on_rebind) on_rebind(current_);
}

void ProxyEngine::recover_now() {
  const double recovery_start = now();
  obs::Span recover_span("proxy.recover", service_key_);
  obs::timeline_event_at(recovery_start, "proxy", service_key_,
                         "recovery started");
  obs::flight_event(obs::FlightEvent::recovery_step, service_key_,
                    kStepRecover);
  // Drain the async pipeline before anything else so the restore below sees
  // the newest checkpoint the captures can produce.
  if (pipeline_) pipeline_->flush();
  // Acquire-then-swap: the old instance's bookkeeping is only touched after
  // a replacement has been secured and restored, so a recovery that fails
  // midway (store unreachable, no factory, ...) leaves the proxy and the
  // naming service exactly as they were.
  const corba::IOR failed = current_.ior();
  // Reuse the host cached at the last rebind instead of re-walking the
  // naming service's offers with a fresh list_offers round-trip per failure.
  const std::string failed_host =
      current_host_.empty() ? host_of_current() : current_host_;
  const RecoveryMode mode = config_.policy.mode;

  corba::ObjectRef next;
  std::string next_host;
  bool from_factory = false;

  // 1a. Try another existing offer.  The failed instance's offer may still
  // be bound, so give cycling strategies a few draws to move past it.
  if (mode == RecoveryMode::reresolve ||
      mode == RecoveryMode::reresolve_then_factory) {
    if (config_.naming && !config_.service_name.empty()) {
      try {
        obs::Span resolve_span("naming.reresolve", service_key_);
        for (int attempt = 0; attempt < 4 && next.is_nil(); ++attempt) {
          corba::ObjectRef candidate = config_.naming->resolve_with(
              config_.service_name, config_.policy.resolve_strategy);
          if (!(candidate.ior() == failed)) next = std::move(candidate);
        }
        if (!next.is_nil())
          obs::timeline_event_at(now(), "proxy", service_key_,
                                 "re-resolved to an existing offer");
      } catch (const naming::NotFound&) {
        // No offers left; fall through to the factory if allowed.
      } catch (const corba::SystemException&) {
        // Naming unreachable; fall through to the factory if allowed.
      }
    }
    if (next.is_nil() && mode == RecoveryMode::reresolve)
      throw corba::TRANSIENT("recovery failed: no replacement offer for '" +
                                 config_.service_name.to_string() + "'",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
  }

  // 1b. Start a brand-new instance through a factory on a good host.
  if (next.is_nil()) {
    if (!config_.locate_factory)
      throw corba::TRANSIENT("recovery failed: no factory locator configured",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
    ServiceFactoryStub factory = config_.locate_factory();
    if (factory.is_nil())
      throw corba::TRANSIENT("recovery failed: no factory available",
                             corba::minor_code::unspecified,
                             corba::CompletionStatus::completed_no);
    next = factory.create(config_.service_type);
    next_host = factory.host();
    from_factory = true;
    obs::timeline_event_at(now(), "proxy", service_key_,
                           "created replacement via factory on " + next_host);
  }

  // 2. Restore the last checkpoint into the replacement.
  if (config_.policy.restore_on_recover && config_.store) {
    obs::Span load_span("checkpoint.load", config_.checkpoint_key);
    if (const auto checkpoint = config_.store->load(config_.checkpoint_key)) {
      set_state(next, checkpoint->state);
      obs::timeline_event_at(
          now(), "proxy", service_key_,
          "restored checkpoint v" + std::to_string(checkpoint->version));
    }
  }

  // 3. Repair the offer pool (best effort): drop the failed instance's
  // offer, advertise a factory-created replacement.
  if (config_.naming && !config_.service_name.empty()) {
    if (config_.policy.unbind_failed_offer && !failed_host.empty()) {
      try {
        config_.naming->unbind_offer(config_.service_name, failed_host);
      } catch (const corba::Exception&) {
      }
    }
    if (from_factory && config_.policy.rebind_new_offer) {
      try {
        config_.naming->bind_offer(config_.service_name, next, next_host);
      } catch (const corba::Exception&) {
      }
    }
  }

  rebind(std::move(next), std::move(next_host));
  proxy_metrics().recovery_latency.record(now() - recovery_start);
}

}  // namespace ft
