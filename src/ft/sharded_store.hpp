// Sharded, replicated checkpoint store — the client side.
//
// The single CheckpointStore servant serializes every checkpoint write in
// the system through one dispatch queue (the DispatchPool executes FIFO per
// object).  ShardedCheckpointStore removes that bottleneck on the client:
// object keys are consistent-hashed across N independent store servants, so
// writes for different keys land on different dispatch queues (and, when
// the shards are placed on distinct hosts, different machines).
//
// Each shard is a replica set: index 0 is the primary (a ReplicatingStore
// that forwards accepted writes to the followers), the rest are followers.
// All traffic goes to the shard's active replica — the primary until it
// becomes unreachable.  On a SystemException the client probes the other
// replicas' head_version for the routed key, promotes the freshest one
// (ties break to the lowest index) and re-issues the call once.  Promotion
// is sticky per client instance, so each worker proxy fails over
// independently and a recovered primary is simply a fresh follower until
// re-deployment says otherwise.  BAD_PARAM never triggers failover: it is a
// contract rejection (stale version, delta base mismatch) from a healthy
// store, and the caller's full-store fallback handles it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "ft/checkpoint_store.hpp"

namespace ft {

/// Consistent-hash ring: `virtual_nodes` FNV-1a points per shard, lookup by
/// successor point with wrap-around.  Deterministic across processes and
/// runs — placement depends only on (shards, virtual_nodes, key).
class HashRing {
 public:
  HashRing(std::size_t shards, std::size_t virtual_nodes);

  std::size_t shard_for(std::string_view key) const;
  std::size_t shards() const noexcept { return shard_count_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::size_t shard_count_;
  std::vector<Point> points_;  // sorted by (hash, shard)
};

class ShardedCheckpointStore final : public CheckpointStoreClient {
 public:
  /// One shard's replica set; replicas[0] is the primary.  `hosts` is
  /// parallel to `replicas` (labels for diagnostics; may be empty).
  struct ShardReplicas {
    std::vector<std::shared_ptr<CheckpointStoreClient>> replicas;
    std::vector<std::string> hosts;
  };

  struct Options {
    std::size_t virtual_nodes = 64;
    /// Label stamped on failover flight events ("worker-3's view").
    std::string origin;
  };

  explicit ShardedCheckpointStore(std::vector<ShardReplicas> shards)
      : ShardedCheckpointStore(std::move(shards), Options{}) {}
  ShardedCheckpointStore(std::vector<ShardReplicas> shards, Options options);

  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  /// Union of every shard's keys (each shard queried at its active replica).
  std::vector<std::string> keys() override;
  std::uint64_t head_version(const std::string& key) override;
  CheckpointLog fetch_log(const std::string& key, std::uint64_t since) override;

  std::size_t shard_for_key(std::string_view key) const {
    return ring_.shard_for(key);
  }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Replica index this client currently routes the shard's traffic to.
  std::size_t active_replica(std::size_t shard) const;
  /// Promotions this client performed (a probe that found no reachable
  /// replica rethrows and does not count).
  std::uint64_t failovers() const;

 private:
  template <typename Fn>
  decltype(auto) with_replica(std::size_t shard, const std::string& key,
                              Fn&& fn);
  /// Probes every replica except `failed`; returns the freshest reachable
  /// one (max head_version for `key`, ties to the lowest index) or `failed`
  /// itself when none responds.
  std::pair<std::size_t, std::uint64_t> probe_freshest(std::size_t shard,
                                                       const std::string& key,
                                                       std::size_t failed);

  std::vector<ShardReplicas> shards_;
  Options options_;
  HashRing ring_;
  mutable std::mutex mu_;
  std::vector<std::size_t> active_;
  std::uint64_t failover_count_ = 0;
};

}  // namespace ft
