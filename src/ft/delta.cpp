#include "ft/delta.hpp"

#include <algorithm>
#include <cstring>

#include "orb/cdr.hpp"

namespace ft {

namespace {

constexpr std::uint32_t kDeltaFormatVersion = 1;

}  // namespace

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::vector<std::uint64_t> chunk_fingerprints(std::span<const std::byte> state,
                                              std::uint32_t chunk_size) {
  if (chunk_size == 0)
    throw corba::BAD_PARAM("chunk size must be positive");
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve((state.size() + chunk_size - 1) / chunk_size);
  for (std::size_t off = 0; off < state.size(); off += chunk_size)
    fingerprints.push_back(
        fnv1a(state.subspan(off, std::min<std::size_t>(chunk_size,
                                                       state.size() - off))));
  return fingerprints;
}

std::size_t StateDelta::payload_bytes() const noexcept {
  std::size_t total = 0;
  for (const DeltaChunk& chunk : chunks) total += chunk.bytes.size();
  return total;
}

corba::Blob StateDelta::encode() const {
  corba::CdrOutputStream out;
  out.reserve(24 + payload_bytes() + 12 * chunks.size());
  out.write_u32(kDeltaFormatVersion);
  out.write_u32(chunk_size);
  out.write_u64(new_size);
  out.write_u32(static_cast<std::uint32_t>(chunks.size()));
  for (const DeltaChunk& chunk : chunks) {
    out.write_u32(chunk.index);
    out.write_blob(std::span<const std::byte>(chunk.bytes));
  }
  return out.take_buffer();
}

StateDelta StateDelta::decode(std::span<const std::byte> blob) {
  corba::CdrInputStream in(blob);
  const std::uint32_t version = in.read_u32();
  if (version != kDeltaFormatVersion)
    throw corba::MARSHAL("unsupported state-delta version " +
                         std::to_string(version));
  StateDelta delta;
  delta.chunk_size = in.read_u32();
  if (delta.chunk_size == 0)
    throw corba::MARSHAL("state delta with zero chunk size");
  delta.new_size = in.read_u64();
  const std::uint32_t count = in.read_u32();
  if (count > in.remaining())
    throw corba::MARSHAL("delta chunk count exceeds buffer");
  delta.chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DeltaChunk chunk;
    chunk.index = in.read_u32();
    const std::span<const std::byte> bytes = in.read_blob_view();
    chunk.bytes.assign(bytes.begin(), bytes.end());
    delta.chunks.push_back(std::move(chunk));
  }
  return delta;
}

StateDelta StateDelta::diff(std::span<const std::uint64_t> base_fingerprints,
                            std::size_t base_size,
                            std::span<const std::byte> next,
                            std::uint32_t chunk_size) {
  if (chunk_size == 0)
    throw corba::BAD_PARAM("chunk size must be positive");
  StateDelta delta;
  delta.chunk_size = chunk_size;
  delta.new_size = next.size();
  for (std::size_t off = 0, index = 0; off < next.size();
       off += chunk_size, ++index) {
    const std::size_t len =
        std::min<std::size_t>(chunk_size, next.size() - off);
    const std::span<const std::byte> chunk = next.subspan(off, len);
    // The matching base chunk must exist with the same length (a trailing
    // partial chunk that grew or shrank always ships) and fingerprint.
    const std::size_t base_len =
        off < base_size ? std::min<std::size_t>(chunk_size, base_size - off)
                        : 0;
    if (index < base_fingerprints.size() && base_len == len &&
        base_fingerprints[index] == fnv1a(chunk))
      continue;
    delta.chunks.push_back(
        {static_cast<std::uint32_t>(index), corba::Blob(chunk.begin(), chunk.end())});
  }
  return delta;
}

corba::Blob StateDelta::apply(std::span<const std::byte> base) const {
  corba::Blob state(static_cast<std::size_t>(new_size));
  if (!base.empty() && !state.empty())
    std::memcpy(state.data(), base.data(),
                std::min<std::size_t>(base.size(), state.size()));
  for (const DeltaChunk& chunk : chunks) {
    const std::size_t off =
        static_cast<std::size_t>(chunk.index) * chunk_size;
    if (off > state.size() || chunk.bytes.size() > state.size() - off)
      throw corba::BAD_PARAM("delta chunk outside materialized state");
    if (!chunk.bytes.empty())
      std::memcpy(state.data() + off, chunk.bytes.data(), chunk.bytes.size());
  }
  return state;
}

}  // namespace ft
