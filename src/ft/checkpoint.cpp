#include "ft/checkpoint.hpp"

namespace ft {

std::optional<corba::Value> CheckpointableServant::try_dispatch_state(
    std::string_view op, const corba::ValueSeq& args) {
  if (op == kGetStateOp) {
    corba::Servant::check_arity(op, args, 0);
    return corba::Value(get_state());
  }
  if (op == kSetStateOp) {
    corba::Servant::check_arity(op, args, 1);
    set_state(args[0].as_blob());
    return corba::Value();
  }
  return std::nullopt;
}

corba::Blob get_state(const corba::ObjectRef& ref) {
  return ref.invoke(kGetStateOp, {}).as_blob();
}

void set_state(const corba::ObjectRef& ref, const corba::Blob& state) {
  ref.invoke(kSetStateOp, {corba::Value(state)});
}

}  // namespace ft
