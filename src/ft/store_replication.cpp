#include "ft/store_replication.hpp"

#include <algorithm>

#include "obs/event_channel.hpp"
#include "obs/metrics.hpp"

namespace ft {

namespace {

struct ReplicationMetrics {
  obs::Counter& forwards =
      obs::MetricsRegistry::global().counter("ft.replication.forwards_total");
  obs::Counter& failures = obs::MetricsRegistry::global().counter(
      "ft.replication.forward_failures_total");
  obs::Counter& catchup_suffixes = obs::MetricsRegistry::global().counter(
      "ft.replication.catchup_suffixes_total");
  obs::Counter& catchup_fulls = obs::MetricsRegistry::global().counter(
      "ft.replication.catchup_fulls_total");
  obs::Counter& overflow_drops = obs::MetricsRegistry::global().counter(
      "ft.replication.overflow_drops_total");
};

ReplicationMetrics& replication_metrics() {
  static ReplicationMetrics metrics;
  return metrics;
}

}  // namespace

ReplicatingStore::ReplicatingStore(
    std::shared_ptr<CheckpointStoreClient> backend, Options options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  if (!backend_) throw corba::BAD_PARAM("replicating store requires a backend");
  for (const auto& follower : options_.followers)
    if (!follower) throw corba::BAD_PARAM("null follower store");
  if (options_.forward_attempts < 1)
    throw corba::BAD_PARAM("forward_attempts must be >= 1");
  if (options_.queue_limit == 0)
    throw corba::BAD_PARAM("queue_limit must be >= 1");
  follower_high_water_.assign(options_.followers.size(), 0);
}

ReplicatingStore::~ReplicatingStore() {
  *alive_ = false;
  if (worker_.joinable()) {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    worker_.join();
  }
}

void ReplicatingStore::store(const std::string& key, std::uint64_t version,
                             const corba::Blob& state) {
  backend_->store(key, version, state);  // the acknowledgement
  {
    std::lock_guard lock(mu_);
    high_water_ = std::max(high_water_, version);
  }
  if (!options_.followers.empty())
    enqueue({Kind::full, key, 0, version, state});
  publish_state();
}

void ReplicatingStore::store_delta(const std::string& key,
                                   std::uint64_t base_version,
                                   std::uint64_t version,
                                   const corba::Blob& delta) {
  backend_->store_delta(key, base_version, version, delta);
  {
    std::lock_guard lock(mu_);
    high_water_ = std::max(high_water_, version);
  }
  if (!options_.followers.empty())
    enqueue({Kind::delta, key, base_version, version, delta});
  publish_state();
}

std::optional<Checkpoint> ReplicatingStore::load(const std::string& key) {
  return backend_->load(key);
}

void ReplicatingStore::remove(const std::string& key) {
  backend_->remove(key);
  if (!options_.followers.empty()) enqueue({Kind::erase, key, 0, 0, {}});
}

std::vector<std::string> ReplicatingStore::keys() { return backend_->keys(); }

std::uint64_t ReplicatingStore::head_version(const std::string& key) {
  return backend_->head_version(key);
}

CheckpointLog ReplicatingStore::fetch_log(const std::string& key,
                                          std::uint64_t since) {
  return backend_->fetch_log(key, since);
}

void ReplicatingStore::enqueue(Forward forward) {
  {
    std::lock_guard lock(mu_);
    if (queue_.size() >= options_.queue_limit) {
      // Dropping the oldest pending forward is safe: the follower it was
      // destined for ends up with a gap, which the next forward's BAD_PARAM
      // turns into a catch-up from the backend's log.
      queue_.pop_front();
      ++overflow_drop_count_;
      replication_metrics().overflow_drops.inc();
    }
    queue_.push_back(std::move(forward));
  }
  if (options_.defer) {
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      options_.defer([this, alive = alive_] {
        if (!*alive) return;
        drain_scheduled_ = false;
        drain();
      });
    }
  } else {
    {
      std::lock_guard lock(mu_);
      ensure_worker_locked();
    }
    wake_.notify_one();
  }
}

void ReplicatingStore::drain() {
  // Forwarding below may pump the simulator's event queue, which can fire
  // this store's own next drain event re-entrantly; the guard turns the
  // nested drain into a no-op and the outer loop finishes the queue.
  if (draining_) return;
  draining_ = true;
  for (;;) {
    Forward forward;
    {
      std::lock_guard lock(mu_);
      if (queue_.empty()) break;
      forward = std::move(queue_.front());
      queue_.pop_front();
    }
    for (std::size_t follower = 0; follower < options_.followers.size();
         ++follower)
      forward_to(follower, forward);
    publish_state();
  }
  draining_ = false;
}

void ReplicatingStore::forward_to(std::size_t follower,
                                  const Forward& forward) {
  CheckpointStoreClient& target = *options_.followers[follower];
  for (int attempt = 1;; ++attempt) {
    try {
      switch (forward.kind) {
        case Kind::full:
          target.store(forward.key, forward.version, forward.payload);
          break;
        case Kind::delta:
          target.store_delta(forward.key, forward.base_version,
                             forward.version, forward.payload);
          break;
        case Kind::erase:
          target.remove(forward.key);
          break;
      }
      std::lock_guard lock(mu_);
      ++forward_count_;
      replication_metrics().forwards.inc();
      follower_high_water_[follower] =
          std::max(follower_high_water_[follower], forward.version);
      return;
    } catch (const corba::BAD_PARAM&) {
      // The follower's log diverged from the forward stream — it missed
      // writes (overflow drop, unreachable spell) or already holds newer
      // state (a full store raced a catch-up).  Re-sync from the log.
      catch_up(follower, forward.key);
      return;
    } catch (const corba::SystemException&) {
      if (attempt >= options_.forward_attempts) {
        std::lock_guard lock(mu_);
        ++forward_failure_count_;
        replication_metrics().failures.inc();
        return;  // follower presumed down; catch-up heals it later
      }
    }
  }
}

void ReplicatingStore::catch_up(std::size_t follower, const std::string& key) {
  CheckpointStoreClient& target = *options_.followers[follower];
  std::uint64_t since = 0;
  try {
    since = target.head_version(key);
  } catch (const corba::SystemException&) {
    std::lock_guard lock(mu_);
    ++forward_failure_count_;
    replication_metrics().failures.inc();
    return;
  }
  const CheckpointLog log = backend_->fetch_log(key, since);
  if (log.empty()) return;  // follower already caught up (or key is gone)
  try {
    if (!log.has_base) {
      // The cheap path: replay just the segment suffix the follower missed.
      for (const LogSegment& segment : log.segments)
        target.store_delta(key, segment.base_version, segment.version,
                           segment.delta);
      std::lock_guard lock(mu_);
      ++catchup_suffix_count_;
      replication_metrics().catchup_suffixes.inc();
    } else {
      // Compaction moved the chain past the follower's head: one full
      // snapshot at the log's tip.
      target.store(key, log.head_version(), materialize(log));
      std::lock_guard lock(mu_);
      ++catchup_full_count_;
      replication_metrics().catchup_fulls.inc();
    }
    std::lock_guard lock(mu_);
    follower_high_water_[follower] =
        std::max(follower_high_water_[follower], log.head_version());
  } catch (const corba::BAD_PARAM&) {
    // Raced with a newer forward already queued for this follower; that
    // forward (or its own catch-up) finishes the job.
  } catch (const corba::SystemException&) {
    std::lock_guard lock(mu_);
    ++forward_failure_count_;
    replication_metrics().failures.inc();
  }
}

void ReplicatingStore::publish_state() {
  if (!options_.publish_events || !obs::events_wanted()) return;
  std::uint64_t version = 0;
  std::uint64_t lag = 0;
  {
    std::lock_guard lock(mu_);
    version = high_water_;
    if (!follower_high_water_.empty()) {
      const std::uint64_t slowest = *std::min_element(
          follower_high_water_.begin(), follower_high_water_.end());
      lag = high_water_ - std::min(high_water_, slowest);
    }
  }
  obs::publish_event(
      obs::Topic::shard_state, options_.host, options_.shard_label,
      {obs::int_field("shard", options_.shard_id),
       obs::str_field("role", "primary"), obs::int_field("version", version),
       obs::int_field("lag", lag),
       obs::int_field("followers", options_.followers.size())});
}

void ReplicatingStore::ensure_worker_locked() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { worker_loop(); });
}

void ReplicatingStore::worker_loop() {
  for (;;) {
    Forward forward;
    {
      std::unique_lock lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left to forward
      forward = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    for (std::size_t follower = 0; follower < options_.followers.size();
         ++follower)
      forward_to(follower, forward);
    publish_state();
    {
      std::lock_guard lock(mu_);
      in_flight_ = false;
    }
    idle_.notify_all();
  }
}

void ReplicatingStore::flush() {
  if (options_.defer) {
    const bool was_draining = draining_;
    draining_ = false;
    drain();
    draining_ = was_draining;
    return;
  }
  if (!worker_.joinable()) return;
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

std::uint64_t ReplicatingStore::forwards() const {
  std::lock_guard lock(mu_);
  return forward_count_;
}

std::uint64_t ReplicatingStore::forward_failures() const {
  std::lock_guard lock(mu_);
  return forward_failure_count_;
}

std::uint64_t ReplicatingStore::catchup_suffixes() const {
  std::lock_guard lock(mu_);
  return catchup_suffix_count_;
}

std::uint64_t ReplicatingStore::catchup_fulls() const {
  std::lock_guard lock(mu_);
  return catchup_full_count_;
}

std::uint64_t ReplicatingStore::overflow_drops() const {
  std::lock_guard lock(mu_);
  return overflow_drop_count_;
}

std::uint64_t ReplicatingStore::replication_lag() const {
  std::lock_guard lock(mu_);
  if (follower_high_water_.empty()) return 0;
  const std::uint64_t slowest = *std::min_element(follower_high_water_.begin(),
                                                  follower_high_water_.end());
  return high_water_ - std::min(high_water_, slowest);
}

}  // namespace ft
