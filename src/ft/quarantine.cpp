#include "ft/quarantine.hpp"

#include <stdexcept>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "orb/log.hpp"

namespace ft {

namespace {

struct QuarantineMetrics {
  obs::Counter& imposed =
      obs::MetricsRegistry::global().counter("ft.quarantine.imposed_total");
  obs::Counter& released = obs::MetricsRegistry::global().counter(
      "ft.quarantine.probe_releases_total");
};

QuarantineMetrics& quarantine_metrics() {
  static QuarantineMetrics metrics;
  return metrics;
}

}  // namespace

OfferQuarantine::OfferQuarantine(QuarantineOptions options)
    : options_(options) {
  if (options_.strikes_to_quarantine < 1)
    throw std::invalid_argument("strikes_to_quarantine must be >= 1");
  if (options_.strike_window_s <= 0)
    throw std::invalid_argument("strike_window_s must be positive");
  if (options_.quarantine_duration_s <= 0)
    throw std::invalid_argument("quarantine_duration_s must be positive");
  if (options_.probe_successes_required < 1)
    throw std::invalid_argument("probe_successes_required must be >= 1");
}

void OfferQuarantine::report_failure(const std::string& service,
                                     const std::string& host, double now) {
  if (host.empty()) return;
  std::lock_guard lock(mu_);
  Entry& entry = entries_[{service, host}];
  if (now < entry.quarantined_until) {
    // Still failing inside quarantine: re-arm and void the probe streak.
    entry.quarantined_until = now + options_.quarantine_duration_s;
    entry.probe_streak = 0;
    ++imposed_;
    quarantine_metrics().imposed.inc();
    obs::timeline_event_at(now, "quarantine", service,
                           "re-armed quarantine of " + host);
    obs::flight_event(obs::FlightEvent::quarantine_trip, service, 0, 1);
    return;
  }
  if (entry.strikes == 0 || now - entry.window_start > options_.strike_window_s) {
    entry.strikes = 0;
    entry.window_start = now;
  }
  if (++entry.strikes >= options_.strikes_to_quarantine) {
    entry.strikes = 0;
    entry.probe_streak = 0;
    entry.quarantined_until = now + options_.quarantine_duration_s;
    ++imposed_;
    quarantine_metrics().imposed.inc();
    obs::timeline_event_at(now, "quarantine", service,
                           "quarantined " + host + " after repeated failures");
    obs::flight_event(obs::FlightEvent::quarantine_trip, service);
    obs::flight_auto_dump("quarantine trip: " + service + " on " + host);
    corba::log::emit(corba::log::Level::warning, "ft.quarantine",
                     "instance of '" + service + "' on " + host +
                         " quarantined after repeated failures");
  }
}

void OfferQuarantine::report_success(const std::string& service,
                                     const std::string& host, double now) {
  if (host.empty()) return;
  std::lock_guard lock(mu_);
  auto it = entries_.find({service, host});
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (now < entry.quarantined_until) {
    if (++entry.probe_streak >= options_.probe_successes_required) {
      entry.quarantined_until = now;
      entry.probe_streak = 0;
      ++probe_releases_;
      quarantine_metrics().released.inc();
      obs::timeline_event_at(now, "quarantine", service,
                             "released " + host +
                                 " after consecutive healthy probes");
      corba::log::emit(corba::log::Level::info, "ft.quarantine",
                       "instance of '" + service + "' on " + host +
                           " released after consecutive healthy probes");
    }
    return;
  }
  entry.strikes = 0;
  entry.probe_streak = 0;
}

bool OfferQuarantine::quarantined(const std::string& service,
                                  const std::string& host, double now) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find({service, host});
  return it != entries_.end() && now < it->second.quarantined_until;
}

bool OfferQuarantine::empty() const {
  std::lock_guard lock(mu_);
  return entries_.empty();
}

std::uint64_t OfferQuarantine::quarantines_imposed() const {
  std::lock_guard lock(mu_);
  return imposed_;
}

std::uint64_t OfferQuarantine::probe_releases() const {
  std::lock_guard lock(mu_);
  return probe_releases_;
}

std::size_t OfferQuarantine::active(double now) const {
  std::lock_guard lock(mu_);
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_)
    if (now < entry.quarantined_until) ++count;
  return count;
}

}  // namespace ft
