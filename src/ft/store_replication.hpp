// Primary-side shard replication for the checkpoint store.
//
// ReplicatingStore decorates a local backend (the shard primary's storage)
// with asynchronous forwarding to K follower stores.  The write path is:
//
//   1. apply to the local backend — this IS the acknowledgement; a write the
//      backend rejects is never forwarded;
//   2. enqueue the accepted write on a bounded forward queue;
//   3. a deferred drain (the simulator's virtual-clock executor) or a lazy
//      worker thread replays the queue to every follower in accept order.
//
// The delta-shipping path is reused end to end: an accepted `store_delta`
// forwards as the same delta.  A follower that rejects a forward with
// BAD_PARAM has missed writes (dropped forwards while it was unreachable,
// queue overflow) — it is caught up from the primary backend's log:
// `fetch_log(key, follower_head)` returns the *segment suffix* when the
// primary's chain still covers the follower's head, and only degrades to a
// full base snapshot when compaction has moved the chain past it.  Queue
// overflow therefore stays safe: dropped forwards surface as a follower
// gap, and the next forward heals it through catch-up.
//
// Failover is the client's job (ft/sharded_store.hpp): when the primary
// dies, readers probe the followers' head_version and adopt the freshest.
// Everything the primary acknowledged before the crash either reached that
// follower (forwards drain before the crash in accept order) or is gone
// with the primary — the chaos suite's "zero acknowledged checkpoints
// lost" contract holds because acknowledged-and-forwarded is the steady
// state and the simulator drains forward events before a later crash event.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "ft/checkpoint_store.hpp"

namespace ft {

class ReplicatingStore final : public CheckpointStoreClient {
 public:
  struct Options {
    /// Follower stores (remote stubs in a real deployment).  May be empty —
    /// a shard with replication factor 1 is just a pass-through.
    std::vector<std::shared_ptr<CheckpointStoreClient>> followers;
    /// Deferred executor for the forward drain; null spawns a lazy worker
    /// thread on first use (real deployments).  The simulator passes its
    /// virtual-clock scheduler so forwards drain deterministically.
    std::function<void(std::function<void()>)> defer;
    /// Transient-failure retries per forward before the follower is left
    /// for catch-up.
    int forward_attempts = 2;
    /// Forward-queue bound; overflow drops the oldest pending forward
    /// (safe: catch-up heals the gap it leaves on the follower).
    std::size_t queue_limit = 128;
    /// Shard identity for telemetry ("shard-3"); also the `shard.state`
    /// event key.
    std::string shard_label;
    /// Origin host stamped on published events.
    std::string host;
    /// Numeric shard id carried in `shard.state` events.
    std::uint64_t shard_id = 0;
    /// Publish `shard.state` events on the global channel (on when a
    /// subscriber exists; the flag exists for tests wanting silence).
    bool publish_events = true;
  };

  ReplicatingStore(std::shared_ptr<CheckpointStoreClient> backend,
                   Options options);
  ~ReplicatingStore() override;

  ReplicatingStore(const ReplicatingStore&) = delete;
  ReplicatingStore& operator=(const ReplicatingStore&) = delete;

  // --- CheckpointStoreClient -------------------------------------------------
  void store(const std::string& key, std::uint64_t version,
             const corba::Blob& state) override;
  void store_delta(const std::string& key, std::uint64_t base_version,
                   std::uint64_t version, const corba::Blob& delta) override;
  std::optional<Checkpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> keys() override;
  std::uint64_t head_version(const std::string& key) override;
  CheckpointLog fetch_log(const std::string& key, std::uint64_t since) override;

  /// Replication barrier: returns once every queued forward was attempted
  /// (worker mode blocks; defer mode drains inline).
  void flush();

  // --- accounting ------------------------------------------------------------
  std::uint64_t forwards() const;          ///< follower writes that succeeded
  std::uint64_t forward_failures() const;  ///< exhausted transient retries
  std::uint64_t catchup_suffixes() const;  ///< gap healed by a segment suffix
  std::uint64_t catchup_fulls() const;     ///< gap needed a full snapshot
  std::uint64_t overflow_drops() const;    ///< forwards dropped at the bound
  /// Primary high-water version minus the slowest follower's acknowledged
  /// high water (0 with no followers).
  std::uint64_t replication_lag() const;

 private:
  enum class Kind : std::uint8_t { full, delta, erase };
  struct Forward {
    Kind kind = Kind::full;
    std::string key;
    std::uint64_t base_version = 0;
    std::uint64_t version = 0;
    corba::Blob payload;
  };

  void enqueue(Forward forward);
  void drain();
  /// One forward against one follower; classifies the outcome.
  void forward_to(std::size_t follower, const Forward& forward);
  /// Heals a gapped follower from the backend's log.
  void catch_up(std::size_t follower, const std::string& key);
  void publish_state();
  void ensure_worker_locked();
  void worker_loop();

  std::shared_ptr<CheckpointStoreClient> backend_;
  Options options_;
  mutable std::mutex mu_;
  std::deque<Forward> queue_;
  bool drain_scheduled_ = false;
  bool draining_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint64_t high_water_ = 0;
  std::vector<std::uint64_t> follower_high_water_;
  std::uint64_t forward_count_ = 0;
  std::uint64_t forward_failure_count_ = 0;
  std::uint64_t catchup_suffix_count_ = 0;
  std::uint64_t catchup_full_count_ = 0;
  std::uint64_t overflow_drop_count_ = 0;
  // worker mode
  std::thread worker_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  bool stop_ = false;
  bool in_flight_ = false;
};

}  // namespace ft
