#include "ft/segment_log.hpp"

#include "ft/delta.hpp"

namespace ft {

void throw_stale_version(std::uint64_t version, std::uint64_t stored) {
  throw corba::BAD_PARAM("stale checkpoint version " + std::to_string(version) +
                         " <= " + std::to_string(stored));
}

void throw_base_mismatch(std::uint64_t base_version, std::uint64_t stored) {
  throw corba::BAD_PARAM("delta base version " + std::to_string(base_version) +
                         " does not match stored version " +
                         std::to_string(stored));
}

corba::Value CheckpointLog::to_value() const {
  corba::ValueSeq encoded_segments;
  encoded_segments.reserve(segments.size());
  for (const LogSegment& segment : segments)
    encoded_segments.emplace_back(corba::ValueSeq{
        corba::Value(segment.version), corba::Value(segment.base_version),
        corba::Value(segment.delta)});
  return corba::Value(corba::ValueSeq{
      corba::Value(static_cast<std::uint64_t>(has_base ? 1 : 0)),
      corba::Value(base_version), corba::Value(base),
      corba::Value(std::move(encoded_segments))});
}

CheckpointLog CheckpointLog::from_value(const corba::Value& value) {
  const corba::ValueSeq& fields = value.as_sequence();
  if (fields.size() != 4)
    throw corba::MARSHAL("malformed checkpoint log payload");
  CheckpointLog log;
  log.has_base = fields[0].as_u64() != 0;
  log.base_version = fields[1].as_u64();
  log.base = fields[2].as_blob();
  for (const corba::Value& encoded : fields[3].as_sequence()) {
    const corba::ValueSeq& parts = encoded.as_sequence();
    if (parts.size() != 3)
      throw corba::MARSHAL("malformed checkpoint log segment");
    log.segments.push_back(
        {parts[0].as_u64(), parts[1].as_u64(), parts[2].as_blob()});
  }
  return log;
}

corba::Blob materialize(const CheckpointLog& log) {
  if (!log.has_base)
    throw corba::BAD_PARAM("cannot materialize a baseless log suffix");
  corba::Blob state = log.base;
  for (const LogSegment& segment : log.segments)
    state = StateDelta::decode(segment.delta).apply(state);
  return state;
}

ChainSplit validate_chain(std::uint64_t base_version,
                          std::span<const LogSegment> segments) {
  ChainSplit split;
  std::uint64_t head = base_version;
  bool broken = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool stale = segments[i].version <= base_version;
    const bool gap = !stale && segments[i].base_version != head;
    if (stale || gap || broken) {
      broken = broken || gap;
      split.orphans.push_back(i);
      continue;
    }
    split.keep.push_back(i);
    head = segments[i].version;
  }
  return split;
}

void SegmentLog::put_full(std::uint64_t new_version, corba::Blob state) {
  if (version() != 0 && new_version <= version())
    throw_stale_version(new_version, version());
  base_version_ = new_version;
  base_ = std::move(state);
  chain_.clear();
  chain_payload_ = 0;
}

bool SegmentLog::append_delta(std::uint64_t delta_base, std::uint64_t new_version,
                              corba::Blob delta) {
  if (new_version <= version()) throw_stale_version(new_version, version());
  if (delta_base != version()) throw_base_mismatch(delta_base, version());
  chain_payload_ += delta.size();
  chain_.push_back({new_version, delta_base, std::move(delta)});
  if (chain_.size() >= policy_.max_chain || chain_payload_ > base_.size()) {
    base_ = materialize();
    base_version_ = new_version;
    chain_.clear();
    chain_payload_ = 0;
    return true;
  }
  return false;
}

corba::Blob SegmentLog::materialize() const {
  corba::Blob state = base_;
  for (const LogSegment& segment : chain_)
    state = StateDelta::decode(segment.delta).apply(state);
  return state;
}

CheckpointLog SegmentLog::log_since(std::uint64_t since) const {
  CheckpointLog log;
  if (since == version()) return log;  // caught up: empty suffix
  // A suffix applies when `since` is a version the chain still passes
  // through — the base itself, or any chained segment.
  bool anchored = since == base_version_;
  std::size_t first = 0;
  if (!anchored) {
    for (std::size_t i = 0; i < chain_.size(); ++i) {
      if (chain_[i].version == since) {
        anchored = true;
        first = i + 1;
        break;
      }
    }
  }
  if (anchored) {
    log.segments.assign(chain_.begin() + static_cast<std::ptrdiff_t>(first),
                        chain_.end());
    return log;
  }
  log.has_base = true;
  log.base_version = base_version_;
  log.base = base_;
  log.segments = chain_;
  return log;
}

}  // namespace ft
