// Automatic load-driven migration.
//
// §3 observes that a checkpoint/restore-capable service can be migrated
// "not only when an error occurred but also due to a changing load
// situation on a host".  The MigrationManager automates that: it
// periodically compares, for every managed service, the Winner load index
// of the service's current workstation with the index of the best
// alternative, and migrates the service through its proxy's recovery path
// (factory on the best host, state restore, offer rebinding) when the gap
// exceeds a threshold.
//
// The threshold matters: the service's own execution raises its host's
// load index by ~1, so a manager that migrated on any positive gap would
// chase its own tail from machine to machine.  The default (1.5) tolerates
// the self-load plus noise and reacts from one extra foreign compute-bound
// process upward.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "ft/proxy.hpp"
#include "sim/event_queue.hpp"
#include "winner/load_info.hpp"

namespace ft {

struct MigrationOptions {
  /// Interval between sweeps (virtual seconds; simulated drive mode only —
  /// migration decisions need the same clock as the load data).
  double period = 5.0;
  /// Minimum load-index gap (current - best) that triggers a migration.
  double min_improvement = 1.5;
  /// Upper bound on migrations per sweep (spreads re-placement cost).
  int max_migrations_per_sweep = 1;
};

class MigrationManager {
 public:
  MigrationManager(std::shared_ptr<winner::LoadInformationService> winner,
                   MigrationOptions options = {});
  ~MigrationManager();

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// Registers a proxy-managed service.  The engine must outlive the
  /// manager (or be removed with unmanage()).
  void manage(ProxyEngine& engine);
  void unmanage(ProxyEngine& engine);

  /// One decision sweep.  Exposed for tests; driven by start_simulated.
  void sweep() noexcept;

  void start_simulated(sim::EventQueue& events);
  void stop();

  std::uint64_t migrations() const noexcept { return migrations_.load(); }
  std::uint64_t sweeps() const noexcept { return sweeps_.load(); }

 private:
  void simulated_tick(sim::EventQueue& events);

  std::shared_ptr<winner::LoadInformationService> winner_;
  MigrationOptions options_;
  std::mutex mu_;
  std::vector<ProxyEngine*> engines_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> sweeps_{0};
};

}  // namespace ft
