#include "ft/fault_detector.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "orb/log.hpp"

namespace ft {

namespace {

obs::Counter& faults_detected_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ft.detector.faults_total");
  return counter;
}

}  // namespace

FaultDetector::FaultDetector(std::shared_ptr<naming::NamingContext> naming,
                             FaultDetectorOptions options)
    : naming_(std::move(naming)), options_(options) {
  if (!naming_) throw corba::BAD_PARAM("fault detector requires naming");
  if (!(options_.period > 0)) throw corba::BAD_PARAM("period must be positive");
  if (options_.suspicion_threshold < 1)
    throw corba::BAD_PARAM("suspicion threshold must be >= 1");
}

FaultDetector::~FaultDetector() { stop(); }

void FaultDetector::monitor(const naming::Name& name) {
  std::lock_guard lock(mu_);
  for (const naming::Name& existing : monitored_)
    if (existing == name) return;
  monitored_.push_back(name);
}

void FaultDetector::unmonitor(const naming::Name& name) {
  std::lock_guard lock(mu_);
  std::erase(monitored_, name);
  std::erase_if(suspicions_, [&](const auto& entry) {
    return entry.first.first == name.to_string();
  });
}

void FaultDetector::add_listener(Listener listener) {
  if (!listener) throw corba::BAD_PARAM("null fault listener");
  std::lock_guard lock(mu_);
  listeners_.push_back(std::move(listener));
}

int FaultDetector::suspicion(const naming::Name& name,
                             const std::string& host) const {
  std::lock_guard lock(mu_);
  auto it = suspicions_.find({name.to_string(), host});
  return it == suspicions_.end() ? 0 : it->second;
}

void FaultDetector::sweep(double now) noexcept {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  std::vector<naming::Name> monitored;
  {
    std::lock_guard lock(mu_);
    monitored = monitored_;
  }
  for (const naming::Name& name : monitored) {
    std::vector<naming::Offer> offers;
    try {
      offers = naming_->list_offers(name);
    } catch (const corba::Exception&) {
      continue;  // name gone or naming unreachable; try next sweep
    }
    for (const naming::Offer& offer : offers) {
      const bool responded = offer.ref.ping();
      if (options_.quarantine) {
        try {
          if (responded)
            options_.quarantine->report_success(name.to_string(), offer.host,
                                                now);
          else
            options_.quarantine->report_failure(name.to_string(), offer.host,
                                                now);
        } catch (...) {
          // Bookkeeping must not kill the (noexcept) sweep.
        }
      }
      bool confirmed = false;
      {
        std::lock_guard lock(mu_);
        int& count = suspicions_[{name.to_string(), offer.host}];
        if (responded) {
          count = 0;
          continue;
        }
        if (++count >= options_.suspicion_threshold) {
          count = 0;
          confirmed = true;
        }
      }
      if (!confirmed) continue;
      faults_.fetch_add(1, std::memory_order_relaxed);
      faults_detected_counter().inc();
      obs::timeline_event_at(now, "detector", name.to_string(),
                             "fault confirmed on " + offer.host);
      corba::log::emit(corba::log::Level::warning, "ft.detector",
                       "instance of '" + name.to_string() + "' on " +
                           offer.host + " stopped responding");
      if (options_.unbind_faulty_offers) {
        try {
          naming_->unbind_offer(name, offer.host);
        } catch (const corba::Exception&) {
          // Someone else (e.g. a recovering proxy) already removed it.
        }
      }
      std::vector<Listener> listeners;
      {
        std::lock_guard lock(mu_);
        listeners = listeners_;
      }
      const FaultReport report{name, offer.host, now};
      for (const Listener& listener : listeners) {
        try {
          listener(report);
        } catch (...) {
          // Listener bugs must not kill the detector.
        }
      }
    }
  }
}

void FaultDetector::simulated_tick(sim::EventQueue& events) {
  if (!running_.load(std::memory_order_relaxed)) return;
  sweep(events.now());
  events.schedule_after(options_.period,
                        [this, &events] { simulated_tick(events); });
}

void FaultDetector::start_simulated(sim::EventQueue& events) {
  if (running_.exchange(true)) return;
  events.schedule_after(options_.period,
                        [this, &events] { simulated_tick(events); });
}

void FaultDetector::start_threaded() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    const auto interval = std::chrono::duration<double>(options_.period);
    while (running_.load(std::memory_order_relaxed)) {
      sweep(std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
      auto remaining = interval;
      while (running_.load(std::memory_order_relaxed) &&
             remaining.count() > 0) {
        const auto slice =
            std::min(remaining, std::chrono::duration<double>(0.05));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  });
}

void FaultDetector::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

}  // namespace ft
