#include "ft/replication.hpp"

namespace ft {

std::string_view to_string(ReplicationStyle style) noexcept {
  return style == ReplicationStyle::active ? "active" : "passive";
}

ReplicaGroup::ReplicaGroup(ReplicaGroupConfig config)
    : config_(std::move(config)) {
  if (config_.factories.empty())
    throw corba::BAD_PARAM("replica group needs at least one factory");
  if (config_.service_type.empty())
    throw corba::BAD_PARAM("replica group needs a service type");
  if (config_.sync_every < 1)
    throw corba::BAD_PARAM("sync_every must be >= 1");
  for (ServiceFactoryStub& factory : config_.factories) {
    Member member;
    member.factory = factory;
    member.ref = factory.create(config_.service_type);
    member.alive = true;
    members_.push_back(std::move(member));
  }
}

std::size_t ReplicaGroup::alive_members() const {
  std::size_t alive = 0;
  for (const Member& member : members_)
    if (member.alive) ++alive;
  return alive;
}

ReplicaGroup::Member* ReplicaGroup::primary_member() {
  if (!members_[primary_index_].alive) return nullptr;
  return &members_[primary_index_];
}

const ReplicaGroup::Member* ReplicaGroup::primary_member() const {
  if (!members_[primary_index_].alive) return nullptr;
  return &members_[primary_index_];
}

corba::ObjectRef ReplicaGroup::primary() const {
  if (config_.style == ReplicationStyle::passive) {
    const Member* member = primary_member();
    return member ? member->ref : corba::ObjectRef();
  }
  for (const Member& member : members_)
    if (member.alive) return member.ref;
  return {};
}

corba::Value ReplicaGroup::invoke(std::string_view op, corba::ValueSeq args) {
  GroupRequest request(*this, std::string(op));
  for (corba::Value& arg : args) request.add_argument(std::move(arg));
  request.invoke();
  return request.return_value();
}

void ReplicaGroup::note_passive_success() {
  if (++calls_since_sync_ >= config_.sync_every) sync_now();
}

void ReplicaGroup::promote_next_backup() {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].alive) {
      primary_index_ = i;
      if (config_.auto_repair) repair();
      return;
    }
  }
  if (config_.auto_repair) repair();
}

void ReplicaGroup::sync_now() {
  if (config_.style == ReplicationStyle::active) return;
  Member* primary = primary_member();
  if (primary == nullptr) return;
  corba::Blob state;
  try {
    state = get_state(primary->ref);
  } catch (const corba::SystemException&) {
    return;  // primary died between call and sync; next invoke fails over
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i == primary_index_ || !members_[i].alive) continue;
    try {
      set_state(members_[i].ref, state);
    } catch (const corba::SystemException&) {
      members_[i].alive = false;
    }
  }
  ++syncs_;
  calls_since_sync_ = 0;
}

void ReplicaGroup::repair() {
  const corba::ObjectRef source = primary();
  for (Member& member : members_) {
    if (member.alive) continue;
    try {
      corba::ObjectRef fresh = member.factory.create(config_.service_type);
      // A repaired member must catch up with the group's state before it
      // can serve (both styles: active members would otherwise diverge).
      if (!source.is_nil()) {
        try {
          set_state(fresh, get_state(source));
        } catch (const corba::BAD_OPERATION&) {
          // Stateless service: nothing to copy.
        } catch (const corba::NO_IMPLEMENT&) {
        }
      }
      member.ref = std::move(fresh);
      member.alive = true;
      ++repairs_;
    } catch (const corba::SystemException&) {
      // Host still down; try again on the next failure/repair cycle.
    }
  }
}

GroupRequest::GroupRequest(ReplicaGroup& group, std::string operation)
    : group_(group), operation_(std::move(operation)) {}

GroupRequest& GroupRequest::add_argument(corba::Value v) {
  if (sent_)
    throw corba::BAD_INV_ORDER("add_argument after send",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  arguments_.push_back(std::move(v));
  return *this;
}

void GroupRequest::send_active() {
  in_flight_.clear();
  for (std::size_t i = 0; i < group_.members_.size(); ++i) {
    if (!group_.members_[i].alive) continue;
    corba::Request request(group_.members_[i].ref, operation_);
    for (const corba::Value& arg : arguments_) request.add_argument(arg);
    request.send_deferred();
    in_flight_.emplace_back(i, std::move(request));
  }
  if (in_flight_.empty())
    throw corba::COMM_FAILURE("replica group has no live members",
                              corba::minor_code::unspecified,
                              corba::CompletionStatus::completed_no);
}

void GroupRequest::send_passive() {
  ReplicaGroup::Member* primary = group_.primary_member();
  if (primary == nullptr) {
    group_.promote_next_backup();
    primary = group_.primary_member();
  }
  if (primary == nullptr)
    throw corba::COMM_FAILURE("replica group exhausted: no live backup",
                              corba::minor_code::unspecified,
                              corba::CompletionStatus::completed_no);
  in_flight_.clear();
  corba::Request request(primary->ref, operation_);
  for (const corba::Value& arg : arguments_) request.add_argument(arg);
  request.send_deferred();
  in_flight_.emplace_back(group_.primary_index_, std::move(request));
}

void GroupRequest::send_deferred() {
  if (sent_)
    throw corba::BAD_INV_ORDER("group request already sent",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  if (group_.config_.style == ReplicationStyle::active) {
    send_active();
  } else {
    send_passive();
  }
  sent_ = true;
}

void GroupRequest::get_response() {
  if (!sent_)
    throw corba::BAD_INV_ORDER("get_response before send_deferred",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  if (completed_) return;

  if (group_.config_.style == ReplicationStyle::active) {
    bool have_result = false;
    for (auto& [index, request] : in_flight_) {
      try {
        request.get_response();
        if (!have_result) {
          result_ = request.return_value();
          have_result = true;
        } else if (group_.config_.verify_agreement &&
                   !(request.return_value() == result_)) {
          throw corba::INTERNAL(
              "active replicas disagree: non-deterministic servant?",
              corba::minor_code::unspecified,
              corba::CompletionStatus::completed_yes);
        }
      } catch (const corba::COMM_FAILURE&) {
        group_.members_[index].alive = false;
      } catch (const corba::TRANSIENT&) {
        group_.members_[index].alive = false;
      }
    }
    if (group_.config_.auto_repair &&
        group_.alive_members() < group_.members_.size())
      group_.repair();
    if (!have_result)
      throw corba::COMM_FAILURE("all replicas failed during the call",
                                corba::minor_code::unspecified,
                                corba::CompletionStatus::completed_maybe);
    completed_ = true;
    return;
  }

  // Passive: complete against the primary; fail over and re-send until a
  // backup answers or the group is exhausted.
  for (std::size_t attempt = 0; attempt <= group_.members_.size(); ++attempt) {
    auto& [index, request] = in_flight_.front();
    try {
      request.get_response();
      result_ = request.return_value();
      completed_ = true;
      group_.note_passive_success();
      return;
    } catch (const corba::COMM_FAILURE&) {
      group_.members_[index].alive = false;
      ++group_.failovers_;
    } catch (const corba::TRANSIENT&) {
      group_.members_[index].alive = false;
      ++group_.failovers_;
    }
    group_.promote_next_backup();
    sent_ = false;
    send_passive();
    sent_ = true;
  }
  throw corba::COMM_FAILURE("replica group exhausted: no live backup",
                            corba::minor_code::unspecified,
                            corba::CompletionStatus::completed_maybe);
}

void GroupRequest::invoke() {
  send_deferred();
  get_response();
}

const corba::Value& GroupRequest::return_value() const {
  if (!completed_)
    throw corba::BAD_INV_ORDER("return_value before completion",
                               corba::minor_code::unspecified,
                               corba::CompletionStatus::completed_no);
  return result_;
}

}  // namespace ft
