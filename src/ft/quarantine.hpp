// Offer quarantine: a shared circuit breaker for repeatedly failing
// service instances.
//
// The recovery path (ProxyEngine) and the proactive path (FaultDetector)
// both observe instance failures, but in the seed each observation was
// local: a proxy could re-resolve straight back to the instance that just
// failed it, and a flapping host — one that answers every other ping —
// oscillated in and out of the offer pool.  OfferQuarantine pools that
// suspicion: strikes reported against an instance within a sliding window
// trip the breaker, and while quarantined the instance is filtered out of
// naming resolution (NamingContextOptions::offer_filter) without being
// unbound — its offer stays visible to the FaultDetector, whose pings
// double as health probes.  Release is deliberately asymmetric: a
// quarantine expires on its own after quarantine_duration_s (so a
// recovered host is never filtered forever), but N *consecutive*
// successful probes release it early, and any failure while quarantined
// re-arms the full duration and resets the probe streak — the flapping
// instance stays out until it holds still.
//
// Time is supplied by the caller on every report (virtual seconds under
// the simulator, wall-clock seconds in threaded mode), so the breaker is
// drive-mode agnostic and fully deterministic under the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace ft {

struct QuarantineOptions {
  /// Failures within strike_window_s that trip the breaker.
  int strikes_to_quarantine = 3;
  /// Sliding window: a failure older than this no longer counts.
  double strike_window_s = 30.0;
  /// How long a tripped instance stays filtered without probe evidence.
  double quarantine_duration_s = 10.0;
  /// Consecutive successful probes that release a quarantine early.
  int probe_successes_required = 2;
};

/// Shared between proxies (failure reports on calls, success on
/// completions) and the FaultDetector (ping probes).  Thread-safe.
class OfferQuarantine {
 public:
  explicit OfferQuarantine(QuarantineOptions options = {});

  /// Records a failed call/ping against (service, host) at time `now`.
  void report_failure(const std::string& service, const std::string& host,
                      double now);

  /// Records a successful call/ping.  Outside quarantine it clears the
  /// strike count; inside it advances the probe streak toward release.
  void report_success(const std::string& service, const std::string& host,
                      double now);

  /// True while (service, host) is quarantined at time `now`.
  bool quarantined(const std::string& service, const std::string& host,
                   double now) const;

  const QuarantineOptions& options() const noexcept { return options_; }

  /// True when no instance has any recorded strike or quarantine — the
  /// cheap fast-path check callers use to skip per-call bookkeeping.
  bool empty() const;

  // --- telemetry ------------------------------------------------------------
  /// Times the breaker tripped (re-arming a flapping instance counts).
  std::uint64_t quarantines_imposed() const;
  /// Quarantines lifted early by a full probe streak.
  std::uint64_t probe_releases() const;
  /// Instances quarantined at time `now` (telemetry health reports).
  std::size_t active(double now) const;

 private:
  struct Entry {
    int strikes = 0;
    double window_start = 0.0;   ///< time of the first strike in the window
    double quarantined_until = 0.0;
    int probe_streak = 0;
  };

  using Key = std::pair<std::string, std::string>;

  QuarantineOptions options_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::uint64_t imposed_ = 0;
  std::uint64_t probe_releases_ = 0;
};

}  // namespace ft
