// Ablation A2: checkpoint frequency vs overhead and recovery cost.
//
// The paper checkpoints "after each method call" and remarks the prototype
// store is unoptimized.  This ablation quantifies the trade-off the design
// leaves open: checkpointing every N-th call shrinks the failure-free
// overhead but widens the recovery gap (a restarted worker falls back to an
// older complex, so more progress is lost — visible as extra runtime after
// an injected crash).
#include "bench_common.hpp"

int main() {
  using namespace bench;

  // Short worker calls: the per-call solves do not converge, so the warm-
  // start state genuinely evolves every call and losing it is observable.
  Scenario scenario = scenario_100_7();
  scenario.manager_iterations = 8;
  scenario.worker_iterations = 1000;

  RunSettings base;
  base.strategy = naming::ResolveStrategy::winner;
  const double plain_runtime = run_scenario(scenario, base).runtime;
  const double crash_at = 0.55 * plain_runtime;

  std::printf(
      "Ablation A2 — checkpoint frequency, %s scenario (virtual seconds).\n"
      "Failure-free runs vs runs with one workstation crash at t=%.0f.\n\n",
      scenario.name.c_str(), crash_at);
  std::printf("%-18s%14s%12s%16s%10s%14s\n", "checkpoint every", "no-crash",
              "overhead", "with 1 crash", "ckpts", "same result");
  print_rule(84);
  std::printf("%-18s%14.1f%11.1f%%%16s%10s%14s\n", "(no proxies)",
              plain_runtime, 0.0, "aborts", "-", "-");

  for (int every : {1, 2, 5, 10, 0}) {
    RunSettings ft = base;
    ft.use_ft = true;
    ft.ft_policy.checkpoint_every = every;
    ft.ft_policy.max_attempts = 5;
    ft.work_per_state_byte = 150.0;
    ft.store_cost = {.work_per_store = 5e4, .work_per_byte = 150.0};
    const RunOutcome no_crash = run_scenario(scenario, ft);

    RunSettings crash = ft;
    // Crash a host the winner placement is known to use (placements fill
    // node0..node6 on an idle 10-host cluster; node3 is mid-pack).
    crash.crashes = {{crash_at, "node3"}};
    const RunOutcome crashed = run_scenario(scenario, crash);

    const std::string label = every == 0 ? "never" : std::to_string(every);
    // "Same result" = the crashed run reproduced the failure-free
    // optimization result exactly.  State written since the last checkpoint
    // is lost on a crash; that window grows as checkpoints get sparser, and
    // exists even at per-call frequency while a checkpoint is in flight.
    std::printf("%-18s%14.1f%11.1f%%%16.1f%10llu%14s\n", label.c_str(),
                no_crash.runtime,
                100.0 * (no_crash.runtime - plain_runtime) / plain_runtime,
                crashed.runtime,
                static_cast<unsigned long long>(no_crash.checkpoints),
                crashed.best_value == no_crash.best_value ? "yes" : "no");
  }
  std::printf(
      "\nReading: the failure-free overhead scales with checkpoint "
      "frequency.  A crash\nloses whatever state was written since the "
      "last checkpoint, so sparser\ncheckpoints trade steady-state speed "
      "against the amount of service state at\nrisk per failure (whether "
      "the final result drifts then depends on where the\ncrash lands in "
      "the round).\n");
  return 0;
}
