// Ablation A5: checkpoint/restart vs replication — the paper's §3 argument,
// quantified.
//
// "Especially for applications with a maximum degree of parallelism ... it
// is not desirable to use a large amount of the computational resources
// (i.e. hosts in the network) exclusively for availability purposes as in
// the case of active replication.  Thus ... it is a good compromise to
// restrict fault tolerance to checkpointing and restarting."
//
// Setup: 4 parallel stateful services on a 4-workstation NOW (every host
// needed — maximum parallelism), 30 rounds of equal-work calls issued
// deferred-synchronously to all 4 services at once.  Strategies:
//
//   none        plain references, no fault tolerance
//   checkpoint  the paper's proxies (per-call checkpoint to the store)
//   passive x2  warm standby: primary executes, state synced to a backup
//   active  x2  every call executes on both members of each group
//
// With active x2 the 8 replicas contend for the 4 CPUs: the paper's
// resource argument shows up directly as ~2x runtime.  Each strategy is
// also run with one workstation crash to compare recovery behaviour.
#include "bench_common.hpp"
#include "ft/checkpoint.hpp"
#include "ft/replication.hpp"
#include "ft/request_proxy.hpp"
#include "orb/cdr.hpp"
#include "sim/work_meter.hpp"

namespace {

constexpr int kHosts = 4;
constexpr int kRoles = 4;
constexpr int kRounds = 30;
constexpr double kWorkPerCall = 5e4;       // 0.5 s on an idle workstation
constexpr double kStateWork = 2.5e4;       // get/set_state marshal cost
constexpr double kCrashTime = 7.0;

// Stateful compute service: fixed work per call, running total as state.
class WorkerServant final : public corba::Servant,
                            public ft::CheckpointableServant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/ReplWorker:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    if (op == "work") {
      check_arity(op, args, 1);
      sim::WorkMeter::charge(kWorkPerCall);
      total_ += args[0].as_i64();
      return corba::Value(total_);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override {
    sim::WorkMeter::charge(kStateWork);
    corba::CdrOutputStream out;
    out.write_i64(total_);
    return out.take_buffer();
  }
  void set_state(const corba::Blob& state) override {
    sim::WorkMeter::charge(kStateWork);
    corba::CdrInputStream in(state);
    total_ = in.read_i64();
  }

 private:
  std::int64_t total_ = 0;
};

struct StrategyOutcome {
  double runtime = 0.0;
  bool completed = false;
  bool state_correct = false;
  std::size_t instances = 0;  ///< service instances consuming resources
};

/// One full experiment: build the deployment, run kRounds parallel rounds,
/// verify final state.  `crash` injects one workstation failure.
StrategyOutcome run_strategy(const std::string& strategy, bool crash) {
  sim::Cluster cluster;
  for (int i = 0; i < kHosts; ++i)
    cluster.add_host(bench::host_name(i), bench::kHostSpeed);
  rt::RuntimeOptions options;
  options.infra_speed = bench::kHostSpeed;
  options.winner_stale_after = 2.5;
  // The checkpoint store costs the same work per operation as a replica's
  // set_state, so the comparison isolates *where* the redundancy lives
  // (dedicated storage vs standby service instances), not its raw price.
  options.checkpoint_cost = {.work_per_store = kStateWork};
  rt::SimRuntime runtime(cluster, options);
  runtime.registry()->register_type(
      "ReplWorker", [] { return std::make_shared<WorkerServant>(); });
  runtime.events().run_until(1.001);
  if (crash) cluster.crash_host_at(1.0 + kCrashTime, bench::host_name(1));

  StrategyOutcome outcome;
  const double t0 = runtime.events().now();
  const std::int64_t expected = kRounds;  // each role adds 1 per round

  try {
    if (strategy == "none" || strategy == "checkpoint") {
      std::vector<std::unique_ptr<ft::ProxyEngine>> engines;
      std::vector<corba::ObjectRef> plain;
      for (int role = 0; role < kRoles; ++role) {
        const corba::ObjectRef instance =
            runtime.factory_on(bench::host_name(role)).create("ReplWorker");
        if (strategy == "checkpoint") {
          ft::ProxyConfig config;
          config.initial = instance;
          config.store = runtime.checkpoint_store();
          config.checkpoint_key = "role" + std::to_string(role);
          config.service_type = "ReplWorker";
          config.policy.mode = ft::RecoveryMode::factory;
          config.policy.max_attempts = 5;
          config.locate_factory = [&runtime] { return runtime.best_factory(); };
          engines.push_back(std::make_unique<ft::ProxyEngine>(std::move(config)));
        } else {
          plain.push_back(instance);
        }
      }
      outcome.instances = kRoles;
      std::int64_t last = 0;
      for (int round = 0; round < kRounds; ++round) {
        if (strategy == "checkpoint") {
          std::vector<ft::RequestProxy> requests;
          for (auto& engine : engines) {
            requests.emplace_back(*engine, "work");
            requests.back().add_argument(corba::Value(std::int64_t{1}));
            requests.back().send_deferred();
          }
          for (auto& request : requests) {
            request.get_response();
            last = request.return_value().as_i64();
          }
        } else {
          std::vector<corba::Request> requests;
          for (auto& ref : plain) {
            requests.emplace_back(ref, "work");
            requests.back().add_argument(corba::Value(std::int64_t{1}));
            requests.back().send_deferred();
          }
          for (auto& request : requests) {
            request.get_response();
            last = request.return_value().as_i64();
          }
        }
      }
      outcome.state_correct = (last == expected);
    } else {
      const ft::ReplicationStyle style = strategy == "active x2"
                                             ? ft::ReplicationStyle::active
                                             : ft::ReplicationStyle::passive;
      std::vector<std::unique_ptr<ft::ReplicaGroup>> groups;
      for (int role = 0; role < kRoles; ++role) {
        ft::ReplicaGroupConfig config;
        config.style = style;
        config.service_type = "ReplWorker";
        // Primary on the role's host, backup on the next (wrap-around):
        // standard replicas-on-distinct-machines deployment.
        config.factories.push_back(runtime.factory_on(bench::host_name(role)));
        config.factories.push_back(
            runtime.factory_on(bench::host_name((role + 1) % kHosts)));
        groups.push_back(std::make_unique<ft::ReplicaGroup>(std::move(config)));
      }
      outcome.instances = static_cast<std::size_t>(kRoles) * 2;
      std::int64_t last = 0;
      for (int round = 0; round < kRounds; ++round) {
        std::vector<ft::GroupRequest> requests;
        for (auto& group : groups) {
          requests.emplace_back(*group, "work");
          requests.back().add_argument(corba::Value(std::int64_t{1}));
          requests.back().send_deferred();
        }
        for (auto& request : requests) {
          request.get_response();
          last = request.return_value().as_i64();
        }
      }
      outcome.state_correct = (last == expected);
    }
    outcome.completed = true;
  } catch (const corba::SystemException&) {
    outcome.completed = false;
  }
  outcome.runtime = runtime.events().now() - t0;
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "Ablation A5 — checkpoint/restart vs replication (§3's argument).\n"
      "%d parallel stateful services on %d workstations, %d rounds of "
      "0.5 s calls\n(virtual seconds; crash run kills one workstation at "
      "t=%.0fs).\n\n",
      kRoles, kHosts, kRounds, kCrashTime);
  std::printf("%-14s%10s%12s%14s%12s%14s\n", "strategy", "runtime",
              "overhead", "with crash", "instances", "state ok");
  bench::print_rule(76);

  double none_runtime = 0.0;
  for (const std::string strategy :
       {"none", "checkpoint", "passive x2", "active x2"}) {
    const StrategyOutcome clean = run_strategy(strategy, false);
    const StrategyOutcome crashed = run_strategy(strategy, true);
    if (strategy == "none") none_runtime = clean.runtime;
    std::printf("%-14s%10.1f%11.1f%%%14s%12zu%14s\n", strategy.c_str(),
                clean.runtime,
                100.0 * (clean.runtime - none_runtime) / none_runtime,
                crashed.completed
                    ? std::to_string(crashed.runtime).substr(0, 6).c_str()
                    : "aborts",
                clean.instances,
                crashed.completed ? (crashed.state_correct ? "yes" : "NO")
                                  : "-");
  }
  std::printf(
      "\nReading: active replication executes every call twice — on a NOW "
      "already\nsaturated by the parallel application that doubles the "
      "runtime and the\ninstance count, which is exactly why §3 rejects it "
      "for maximum-parallelism\nworkloads.  Checkpointing and passive "
      "replication pay a comparable per-call\nstate-capture cost (the "
      "paper notes its scheme is 'similar to the concept of\npassive "
      "replication'), but checkpoint/restart needs no standby instances "
      "on\ncompute hosts: the redundancy lives in a storage service, at "
      "the price of a\nslower restart-and-restore recovery.\n");
  return 0;
}
