// Ablation A6: wide-area meta-computing (the paper's §5 future work (c):
// "extending the Winner load measurement and process placement features
// for wide-area networks to enable CORBA based distributed/parallel
// meta-computing over the WWW").
//
// Two sites connected by a WAN link (30 ms / 1 MB/s vs 0.5 ms / 10 MB/s on
// the local LANs).  Three placement policies:
//
//   local-only   the classic single-site Winner: only home hosts compete
//   flat         one global Winner, blind to the WAN: the remote site's
//                idle machines attract work regardless of link cost
//   hierarchical per-site managers federated by the MetaSystemManager,
//                remote hosts carrying a WAN placement penalty
//
// Two workloads show both sides of the trade-off:
//   (a) coarse-grained compute (the 100/7 optimization, seconds per call):
//       WAN latency amortizes, so using remote capacity wins whenever the
//       home site is short of machines — meta-computing pays off;
//   (b) a chatty data service (0.1 s calls shipping 100 KB each way):
//       crossing the WAN triples the per-call time, so the WAN-blind flat
//       policy loses as soon as mild local load makes remote machines
//       "look" better.
#include "bench_common.hpp"
#include "sim/work_meter.hpp"

namespace {

constexpr int kHomeHosts = 4;
constexpr int kRemoteHosts = 6;

/// `penalty` is the hierarchical policy's WAN cost in runnable-process
/// units.  It is workload-dependent by nature: coarse-grained compute
/// amortizes the WAN (small penalty), chatty data services do not (large
/// penalty) — which is itself one of this ablation's findings.
rt::RuntimeOptions wan_options(const std::string& policy,
                               const std::map<std::string, std::string>& domains,
                               double penalty) {
  rt::RuntimeOptions options;
  options.infra_speed = bench::kHostSpeed;
  options.winner_stale_after = 2.5;
  if (policy != "flat") {
    options.host_domains = domains;
    options.home_domain = "siegen";
    options.wan_remote_penalty = policy == "local-only" ? 1e9 : penalty;
  }
  return options;
}

void apply_flat_domains(sim::Cluster& cluster,
                        const std::map<std::string, std::string>& domains,
                        const std::string& policy) {
  if (policy != "flat") return;
  // The global Winner ignores sites, but messages still pay the WAN.
  for (const auto& [host, domain] : domains)
    cluster.set_host_domain(host, domain);
  cluster.set_host_domain(rt::names::kInfraHost, "siegen");
}

std::map<std::string, std::string> build_cluster(sim::Cluster& cluster) {
  std::map<std::string, std::string> domains;
  for (int i = 0; i < kHomeHosts; ++i) {
    const std::string host = "home" + std::to_string(i);
    cluster.add_host(host, bench::kHostSpeed);
    domains[host] = "siegen";
  }
  for (int i = 0; i < kRemoteHosts; ++i) {
    const std::string host = "remote" + std::to_string(i);
    cluster.add_host(host, bench::kHostSpeed);
    domains[host] = "faraway";
  }
  cluster.network().wan_latency_s = 0.03;
  cluster.network().wan_bandwidth_bytes_per_s = 1e6;
  return domains;
}

// --- workload (a): the coarse-grained 100/7 optimization --------------------
double run_compute(const std::string& policy) {
  sim::Cluster cluster;
  const auto domains = build_cluster(cluster);
  rt::SimRuntime runtime(cluster, wan_options(policy, domains, 0.5));
  apply_flat_domains(cluster, domains, policy);
  runtime.events().run_until(runtime.events().now() + 1.1);

  opt::SolverConfig config;
  config.dimension = 100;
  config.workers = 7;  // more workers than home machines
  config.worker_iterations = 4000;
  config.manager_iterations = 10;
  config.manager_host = "home0";
  config.manager_work_per_round = 500.0;
  opt::DecomposedSolver solver(runtime, config);
  solver.deploy();
  return solver.run().virtual_seconds;
}

// --- workload (b): a chatty data service ------------------------------------
class ChattyServant final : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Chatty:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "filter") {
      check_arity(op, args, 1);
      sim::WorkMeter::charge(1e4);  // 0.1 s of computation
      return args[0];               // ships the 100 KB payload back
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

double run_chatty(const std::string& policy) {
  sim::Cluster cluster;
  const auto domains = build_cluster(cluster);
  // Mild background load on every home machine: enough to make idle remote
  // machines "look" better to a WAN-blind ranking.
  for (int i = 0; i < kHomeHosts; ++i)
    cluster.set_background_load("home" + std::to_string(i), 1);
  rt::SimRuntime runtime(cluster, wan_options(policy, domains, 1.5));
  apply_flat_domains(cluster, domains, policy);
  runtime.registry()->register_type(
      "Chatty", [] { return std::make_shared<ChattyServant>(); });
  const naming::Name name = naming::Name::parse("Chatty");
  runtime.deploy_everywhere(name, "Chatty");
  runtime.events().run_until(runtime.events().now() + 1.1);

  const corba::ObjectRef service = runtime.resolve(name);
  const corba::Value payload(std::vector<double>(12500, 1.0));  // 100 KB
  const double t0 = runtime.events().now();
  for (int call = 0; call < 100; ++call) service.invoke("filter", {payload});
  return runtime.events().now() - t0;
}

}  // namespace

int main() {
  std::printf(
      "Ablation A6 — WAN meta-computing (§5 future work (c)).\n"
      "Home site: %d hosts; remote site: %d hosts; WAN 30 ms / 1 MB/s.\n"
      "(runtimes in virtual seconds)\n\n",
      kHomeHosts, kRemoteHosts);

  std::printf("(a) coarse-grained compute: 100-dim/7-worker optimization, "
              "7 workers on a\n    %d-machine home site\n\n", kHomeHosts);
  std::printf("%-14s%12s\n", "policy", "runtime");
  bench::print_rule(26);
  for (const std::string policy : {"local-only", "flat", "hierarchical"})
    std::printf("%-14s%12.1f\n", policy.c_str(), run_compute(policy));
  std::printf(
      "\n    Seconds-long calls amortize the WAN: spilling to the remote "
      "site (penalty\n    0.5 processes) beats doubling up workers on home "
      "machines; local-only\n    cannot.\n\n");

  std::printf("(b) chatty data service: 100 calls x 0.1 s compute with "
              "100 KB each way,\n    1 background process per home host\n\n");
  std::printf("%-14s%12s\n", "policy", "runtime");
  bench::print_rule(26);
  for (const std::string policy : {"local-only", "flat", "hierarchical"})
    std::printf("%-14s%12.1f\n", policy.c_str(), run_chatty(policy));
  std::printf(
      "\n    Here the WAN dominates: shipping 200 KB per call across a "
      "1 MB/s link\n    costs more than sharing a mildly loaded home "
      "machine.  The WAN-blind flat\n    policy picks the remote site and "
      "loses; the hierarchical penalty keeps the\n    service local, "
      "matching local-only.\n");
  return 0;
}
