// M1 — ORB micro benchmarks: CDR marshaling throughput, tagged-value
// encoding, IOR stringification, and end-to-end invocation latency over the
// in-process and TCP transports.  These are real wall-clock measurements
// (google-benchmark), unlike the virtual-time experiment harnesses.
#include <benchmark/benchmark.h>

#include "orb/dii.hpp"
#include "orb/orb.hpp"
#include "orb/tcp_transport.hpp"

namespace {

void BM_CdrEncodeDoubles(benchmark::State& state) {
  const std::vector<double> values(static_cast<std::size_t>(state.range(0)),
                                   3.14);
  for (auto _ : state) {
    corba::CdrOutputStream out;
    out.write_f64_seq(values);
    benchmark::DoNotOptimize(out.buffer().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CdrEncodeDoubles)->Arg(16)->Arg(256)->Arg(4096);

void BM_CdrDecodeDoubles(benchmark::State& state) {
  const std::vector<double> values(static_cast<std::size_t>(state.range(0)),
                                   3.14);
  corba::CdrOutputStream out;
  out.write_f64_seq(values);
  for (auto _ : state) {
    corba::CdrInputStream in(out.buffer());
    benchmark::DoNotOptimize(in.read_f64_seq());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CdrDecodeDoubles)->Arg(16)->Arg(256)->Arg(4096);

void BM_CdrSwappedDecode(benchmark::State& state) {
  // Byte-order conversion path (receiver with opposite endianness).
  const std::vector<double> values(256, 3.14);
  const corba::ByteOrder other =
      corba::native_byte_order() == corba::ByteOrder::little_endian
          ? corba::ByteOrder::big_endian
          : corba::ByteOrder::little_endian;
  corba::CdrOutputStream out(other);
  out.write_f64_seq(values);
  for (auto _ : state) {
    corba::CdrInputStream in(out.buffer(), other);
    benchmark::DoNotOptimize(in.read_f64_seq());
  }
}
BENCHMARK(BM_CdrSwappedDecode);

void BM_ValueEncodeDecode(benchmark::State& state) {
  corba::ValueSeq seq;
  seq.emplace_back(std::int64_t{7});
  seq.emplace_back("operation-payload");
  seq.emplace_back(std::vector<double>(32, 1.0));
  const corba::Value value{std::move(seq)};
  for (auto _ : state) {
    corba::CdrOutputStream out;
    value.encode(out);
    corba::CdrInputStream in(out.buffer());
    benchmark::DoNotOptimize(corba::Value::decode(in));
  }
}
BENCHMARK(BM_ValueEncodeDecode);

void BM_IorStringRoundTrip(benchmark::State& state) {
  corba::IOR ior;
  ior.type_id = "IDL:corbaft/opt/OptWorker:1.0";
  ior.protocol = std::string(corba::protocol::tcp);
  ior.host = "192.168.17.23";
  ior.port = 2809;
  ior.key = corba::ObjectKey::from_string("worker#a17.42");
  for (auto _ : state) {
    benchmark::DoNotOptimize(corba::IOR::from_string(ior.to_string()));
  }
}
BENCHMARK(BM_IorStringRoundTrip);

class EchoServant final : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") return args.at(0);
    throw corba::BAD_OPERATION(std::string(op));
  }
};

void BM_InprocInvoke(benchmark::State& state) {
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto server = corba::ORB::init({.endpoint_name = "s", .network = network});
  auto client = corba::ORB::init({.endpoint_name = "c", .network = network});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(
      static_cast<std::size_t>(state.range(0)), 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.invoke("echo", {payload}));
  }
}
BENCHMARK(BM_InprocInvoke)->Arg(1)->Arg(128)->Arg(2048);

void BM_TcpInvoke(benchmark::State& state) {
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  auto client = corba::ORB::init({.endpoint_name = "c", .enable_tcp = true});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(
      static_cast<std::size_t>(state.range(0)), 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.invoke("echo", {payload}));
  }
}
BENCHMARK(BM_TcpInvoke)->Arg(1)->Arg(128)->Arg(2048);

void BM_TcpDeferredBatch(benchmark::State& state) {
  // Eight deferred requests in flight at once (the manager/worker pattern).
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  auto client = corba::ORB::init({.endpoint_name = "c", .enable_tcp = true});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(64, 1.0));
  for (auto _ : state) {
    std::vector<corba::Request> requests;
    for (int i = 0; i < 8; ++i) {
      requests.emplace_back(ref, "echo");
      requests.back().add_argument(payload);
      requests.back().send_deferred();
    }
    for (corba::Request& request : requests) request.get_response();
  }
}
BENCHMARK(BM_TcpDeferredBatch);

}  // namespace

BENCHMARK_MAIN();
