// M1 — ORB micro benchmarks: CDR marshaling throughput, tagged-value
// encoding, IOR stringification, and end-to-end invocation latency over the
// in-process and TCP transports.  These are real wall-clock measurements
// (google-benchmark), unlike the virtual-time experiment harnesses.
//
// Beyond the google-benchmark timings, main() always runs the multiplexing
// sweep: concurrent clients × pipeline depth over the TCP transport in both
// multiplexed and serialized (per-call socket checkout) modes, emitting
// BENCH_multiplex.json for the perf trajectory.
// The session sweep (BENCH_session.json) compares the resumable-session
// reconnect-with-replay path against the batched-failure + reissue path a
// caller without sessions pays for the same connection loss, and records the
// retransmit-buffer footprint as a function of pipeline depth.
#include <benchmark/benchmark.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "orb/dii.hpp"
#include "orb/orb.hpp"
#include "orb/server_conn.hpp"
#include "orb/tcp_transport.hpp"

namespace {

void BM_CdrEncodeDoubles(benchmark::State& state) {
  const std::vector<double> values(static_cast<std::size_t>(state.range(0)),
                                   3.14);
  for (auto _ : state) {
    corba::CdrOutputStream out;
    out.write_f64_seq(values);
    benchmark::DoNotOptimize(out.buffer().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CdrEncodeDoubles)->Arg(16)->Arg(256)->Arg(4096);

void BM_CdrDecodeDoubles(benchmark::State& state) {
  const std::vector<double> values(static_cast<std::size_t>(state.range(0)),
                                   3.14);
  corba::CdrOutputStream out;
  out.write_f64_seq(values);
  for (auto _ : state) {
    corba::CdrInputStream in(out.buffer());
    benchmark::DoNotOptimize(in.read_f64_seq());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_CdrDecodeDoubles)->Arg(16)->Arg(256)->Arg(4096);

void BM_CdrSwappedDecode(benchmark::State& state) {
  // Byte-order conversion path (receiver with opposite endianness).
  const std::vector<double> values(256, 3.14);
  const corba::ByteOrder other =
      corba::native_byte_order() == corba::ByteOrder::little_endian
          ? corba::ByteOrder::big_endian
          : corba::ByteOrder::little_endian;
  corba::CdrOutputStream out(other);
  out.write_f64_seq(values);
  for (auto _ : state) {
    corba::CdrInputStream in(out.buffer(), other);
    benchmark::DoNotOptimize(in.read_f64_seq());
  }
}
BENCHMARK(BM_CdrSwappedDecode);

void BM_ValueEncodeDecode(benchmark::State& state) {
  corba::ValueSeq seq;
  seq.emplace_back(std::int64_t{7});
  seq.emplace_back("operation-payload");
  seq.emplace_back(std::vector<double>(32, 1.0));
  const corba::Value value{std::move(seq)};
  for (auto _ : state) {
    corba::CdrOutputStream out;
    value.encode(out);
    corba::CdrInputStream in(out.buffer());
    benchmark::DoNotOptimize(corba::Value::decode(in));
  }
}
BENCHMARK(BM_ValueEncodeDecode);

void BM_IorStringRoundTrip(benchmark::State& state) {
  corba::IOR ior;
  ior.type_id = "IDL:corbaft/opt/OptWorker:1.0";
  ior.protocol = std::string(corba::protocol::tcp);
  ior.host = "192.168.17.23";
  ior.port = 2809;
  ior.key = corba::ObjectKey::from_string("worker#a17.42");
  for (auto _ : state) {
    benchmark::DoNotOptimize(corba::IOR::from_string(ior.to_string()));
  }
}
BENCHMARK(BM_IorStringRoundTrip);

class EchoServant final : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Echo:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "echo") return args.at(0);
    if (op == "slow_echo") {
      // Holds the reply back long enough for a pipelined window to pile up
      // unacked in the session retransmit buffer (the depth sweep).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return args.at(0);
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

void BM_InprocInvoke(benchmark::State& state) {
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto server = corba::ORB::init({.endpoint_name = "s", .network = network});
  auto client = corba::ORB::init({.endpoint_name = "c", .network = network});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(
      static_cast<std::size_t>(state.range(0)), 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.invoke("echo", {payload}));
  }
}
BENCHMARK(BM_InprocInvoke)->Arg(1)->Arg(128)->Arg(2048);

void BM_TcpInvoke(benchmark::State& state) {
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  auto client = corba::ORB::init({.endpoint_name = "c", .enable_tcp = true});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(
      static_cast<std::size_t>(state.range(0)), 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.invoke("echo", {payload}));
  }
}
BENCHMARK(BM_TcpInvoke)->Arg(1)->Arg(128)->Arg(2048);

void BM_TcpDeferredBatch(benchmark::State& state) {
  // Eight deferred requests in flight at once (the manager/worker pattern).
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  auto client = corba::ORB::init({.endpoint_name = "c", .enable_tcp = true});
  const corba::ObjectRef ref =
      client->make_ref(server->activate(std::make_shared<EchoServant>()).ior());
  const corba::Value payload(std::vector<double>(64, 1.0));
  for (auto _ : state) {
    std::vector<corba::Request> requests;
    for (int i = 0; i < 8; ++i) {
      requests.emplace_back(ref, "echo");
      requests.back().add_argument(payload);
      requests.back().send_deferred();
    }
    for (corba::Request& request : requests) request.get_response();
  }
}
BENCHMARK(BM_TcpDeferredBatch);

// --- multiplexing sweep ------------------------------------------------------

struct SweepPoint {
  std::string mode;
  int clients = 0;
  int depth = 0;
  std::uint64_t calls = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
};

/// One (mode, clients, depth) cell: every client thread drives its OWN echo
/// servant (distinct object keys, so the server's FIFO-per-key guarantee
/// does not serialize the comparison) with `depth` requests in flight.
SweepPoint run_sweep_point(bool multiplex, int clients, int depth,
                           int calls_per_client) {
  using clock = std::chrono::steady_clock;
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  corba::OrbConfig client_config{.endpoint_name = "c", .enable_tcp = true};
  client_config.tcp_client.multiplex = multiplex;
  auto client = corba::ORB::init(client_config);

  std::vector<corba::ObjectRef> refs;
  for (int i = 0; i < clients; ++i)
    refs.push_back(client->make_ref(
        server->activate(std::make_shared<EchoServant>()).ior()));
  const corba::Value payload(std::vector<double>(16, 1.0));

  bench::LatencyRecorder latency("bench.multiplex_rpc");
  const auto t0 = clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const corba::ObjectRef& ref = refs[static_cast<std::size_t>(c)];
      if (depth <= 1) {
        // Synchronous path (what a stub call does).
        for (int i = 0; i < calls_per_client; ++i) {
          const auto sent = clock::now();
          ref.invoke("echo", {payload});
          latency.record(
              std::chrono::duration<double>(clock::now() - sent).count());
        }
        return;
      }
      // Pipelined path: windows of `depth` deferred requests.
      int remaining = calls_per_client;
      while (remaining > 0) {
        const int batch = std::min(depth, remaining);
        std::vector<corba::Request> requests;
        std::vector<clock::time_point> sent;
        requests.reserve(static_cast<std::size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          requests.emplace_back(ref, "echo");
          requests.back().add_argument(payload);
          sent.push_back(clock::now());
          requests.back().send_deferred();
        }
        for (int i = 0; i < batch; ++i) {
          requests[static_cast<std::size_t>(i)].get_response();
          latency.record(std::chrono::duration<double>(
                             clock::now() - sent[static_cast<std::size_t>(i)])
                             .count());
        }
        remaining -= batch;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(clock::now() - t0).count();

  SweepPoint point;
  point.mode = multiplex ? "multiplexed" : "serialized";
  point.clients = clients;
  point.depth = depth;
  point.calls = static_cast<std::uint64_t>(clients) *
                static_cast<std::uint64_t>(calls_per_client);
  point.wall_s = wall;
  point.throughput_rps = static_cast<double>(point.calls) / wall;
  point.p50_s = latency.quantile(0.5);
  point.p99_s = latency.quantile(0.99);
  point.mean_s = latency.mean();
  return point;
}

void run_multiplex_sweep() {
  const bool smoke = bench::smoke_mode();
  const int calls_per_client = smoke ? 150 : 2000;
  const std::vector<int> client_counts = smoke ? std::vector<int>{1, 2}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> depths = {1, 8};

  std::printf("\nM-mux — TCP transport: concurrent clients x pipeline depth\n");
  std::printf("%-12s %8s %6s %10s %12s %10s %10s\n", "mode", "clients",
              "depth", "calls", "rps", "p50_us", "p99_us");
  bench::print_rule(74);

  std::vector<SweepPoint> points;
  std::vector<bench::JsonRow> rows;
  for (const bool multiplex : {true, false}) {
    for (const int clients : client_counts) {
      for (const int depth : depths) {
        const SweepPoint p =
            run_sweep_point(multiplex, clients, depth, calls_per_client);
        std::printf("%-12s %8d %6d %10llu %12.0f %10.1f %10.1f\n",
                    p.mode.c_str(), p.clients, p.depth,
                    static_cast<unsigned long long>(p.calls),
                    p.throughput_rps, p.p50_s * 1e6, p.p99_s * 1e6);
        rows.push_back({bench::jstr("mode", p.mode),
                        bench::jint("clients", std::uint64_t(p.clients)),
                        bench::jint("depth", std::uint64_t(p.depth)),
                        bench::jint("calls", p.calls),
                        bench::jnum("wall_s", p.wall_s),
                        bench::jnum("throughput_rps", p.throughput_rps),
                        bench::jnum("p50_s", p.p50_s),
                        bench::jnum("p99_s", p.p99_s),
                        bench::jnum("mean_s", p.mean_s)});
        points.push_back(p);
      }
    }
  }

  // Flight-recorder overhead: the same single-client synchronous point with
  // the always-on recorder enabled (the default) vs force-disabled.  The
  // rpc_start/rpc_end record path is two relaxed atomic claims per call, so
  // the two p50s must land in the same latency bucket.
  for (const bool enabled : {true, false}) {
    obs::FlightRecorder::global().set_enabled(enabled);
    SweepPoint p = run_sweep_point(true, 1, 1, calls_per_client);
    p.mode = enabled ? "recorder_on" : "recorder_off";
    std::printf("%-12s %8d %6d %10llu %12.0f %10.1f %10.1f\n", p.mode.c_str(),
                p.clients, p.depth, static_cast<unsigned long long>(p.calls),
                p.throughput_rps, p.p50_s * 1e6, p.p99_s * 1e6);
    rows.push_back({bench::jstr("mode", p.mode),
                    bench::jint("clients", std::uint64_t(p.clients)),
                    bench::jint("depth", std::uint64_t(p.depth)),
                    bench::jint("calls", p.calls),
                    bench::jnum("wall_s", p.wall_s),
                    bench::jnum("throughput_rps", p.throughput_rps),
                    bench::jnum("p50_s", p.p50_s),
                    bench::jnum("p99_s", p.p99_s),
                    bench::jnum("mean_s", p.mean_s)});
    points.push_back(p);
  }
  obs::FlightRecorder::global().set_enabled(true);

  // Headline comparison: pipelined throughput at max concurrency, and the
  // single-client latency cost of the demux machinery.
  auto find = [&](const std::string& mode, int clients,
                  int depth) -> const SweepPoint* {
    for (const SweepPoint& p : points)
      if (p.mode == mode && p.clients == clients && p.depth == depth)
        return &p;
    return nullptr;
  };
  const int top = client_counts.back();
  const SweepPoint* mux = find("multiplexed", top, 8);
  const SweepPoint* ser = find("serialized", top, 8);
  const SweepPoint* mux1 = find("multiplexed", 1, 1);
  const SweepPoint* ser1 = find("serialized", 1, 1);
  if (mux && ser && mux1 && ser1) {
    std::printf("\nthroughput at %d clients, depth 8: %.0f vs %.0f rps "
                "(%.2fx)\n",
                top, mux->throughput_rps, ser->throughput_rps,
                mux->throughput_rps / ser->throughput_rps);
    std::printf("single-client p50: %.1f us (multiplexed) vs %.1f us "
                "(serialized)\n",
                mux1->p50_s * 1e6, ser1->p50_s * 1e6);
  }
  const SweepPoint* rec_on = find("recorder_on", 1, 1);
  const SweepPoint* rec_off = find("recorder_off", 1, 1);
  if (rec_on && rec_off)
    std::printf("flight recorder p50: %.1f us (on) vs %.1f us (off)\n",
                rec_on->p50_s * 1e6, rec_off->p50_s * 1e6);
  bench::write_bench_json("BENCH_multiplex.json", "micro_orb_multiplex", rows);
}

// --- session sweep -----------------------------------------------------------

/// Byte-level TCP relay on loopback: clients connect to port(), bytes are
/// pumped to the real server, and sever() cuts every live pair — a
/// deterministic "connection reset, server healthy" fault for measuring the
/// resume path on real sockets.
class BenchRelay {
 public:
  explicit BenchRelay(std::uint16_t target_port) : target_port_(target_port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 8);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~BenchRelay() {
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) acceptor_.join();
    sever();
    std::vector<std::thread> pumps;
    {
      std::lock_guard lock(mu_);
      pumps.swap(pumps_);
    }
    for (std::thread& pump : pumps) pump.join();
    std::lock_guard lock(mu_);
    for (const auto& [a, b] : pairs_) {
      ::close(a);
      ::close(b);
    }
  }

  std::uint16_t port() const noexcept { return port_; }

  void sever() {
    std::lock_guard lock(mu_);
    for (const auto& [a, b] : pairs_) {
      ::shutdown(a, SHUT_RDWR);
      ::shutdown(b, SHUT_RDWR);
    }
  }

 private:
  void accept_loop() {
    for (;;) {
      const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd < 0) {
        if (stopping_.load()) return;
        continue;
      }
      const int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(target_port_);
      if (::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(server_fd);
        ::close(client_fd);
        continue;
      }
      std::lock_guard lock(mu_);
      if (stopping_.load()) {
        ::close(server_fd);
        ::close(client_fd);
        return;
      }
      pairs_.push_back({client_fd, server_fd});
      pumps_.emplace_back([client_fd, server_fd] { pump(client_fd, server_fd); });
      pumps_.emplace_back([client_fd, server_fd] { pump(server_fd, client_fd); });
    }
  }

  static void pump(int from, int to) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n <= 0) break;
      ssize_t sent = 0;
      while (sent < n) {
        const ssize_t w = ::send(to, buf + sent, n - sent, MSG_NOSIGNAL);
        if (w <= 0) { sent = -1; break; }
        sent += w;
      }
      if (sent < 0) break;
    }
    ::shutdown(from, SHUT_RDWR);
    ::shutdown(to, SHUT_RDWR);
  }

  std::uint16_t port_ = 0;
  std::uint16_t target_port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<std::thread> pumps_;
};

corba::RequestMessage echo_request(const corba::IOR& ior, std::uint64_t id,
                                   const char* op,
                                   const corba::Value& payload) {
  corba::RequestMessage request;
  request.request_id = id;
  request.object_key = ior.key;
  request.operation = op;
  request.arguments = {payload};
  return request;
}

void run_session_sweep() {
  const bool smoke = bench::smoke_mode();
  const int trials = smoke ? 5 : 40;
  auto server = corba::ORB::init({.endpoint_name = "s", .enable_tcp = true});
  const corba::ObjectRef ref =
      server->activate(std::make_shared<EchoServant>());
  const corba::Value payload(std::vector<double>(16, 1.0));
  std::vector<bench::JsonRow> rows;

  // Resume vs recovery: the same mid-stream connection loss, absorbed by the
  // session layer (reconnect + replay, the call completes exactly-once) vs
  // surfaced to the caller (COMM_FAILURE, reconnect, reissue) — the latency
  // a proxy pays per reset with and without the session layer.
  std::printf("\nM-sess — connection loss: session resume vs batched "
              "failure + reissue\n");
  std::printf("%-12s %8s %10s %10s %10s\n", "mode", "trials", "p50_us",
              "p99_us", "mean_us");
  bench::print_rule(56);
  for (const bool sessions : {true, false}) {
    BenchRelay relay(ref.ior().port);
    corba::IOR ior = ref.ior();
    ior.port = relay.port();
    corba::TcpClientOptions options;
    options.enable_sessions = sessions;
    options.resume_backoff_s = 0.002;
    corba::TcpClientTransport transport(options);
    std::uint64_t id = 1;
    (void)transport.invoke(ior, echo_request(ior, id++, "echo", payload));

    bench::LatencyRecorder latency(sessions ? "bench.session_resume"
                                            : "bench.session_recovery");
    using clock = std::chrono::steady_clock;
    for (int trial = 0; trial < trials; ++trial) {
      relay.sever();
      const auto start = clock::now();
      if (sessions) {
        // One call, one reply: the transport resumes under the covers.
        (void)transport.invoke(ior, echo_request(ior, id++, "echo", payload));
      } else {
        // The caller sees the loss and must reissue (the FT-proxy pattern,
        // minus re-resolve — this is the floor of the recovery path).
        for (;;) {
          try {
            (void)transport.invoke(ior,
                                   echo_request(ior, id++, "echo", payload));
            break;
          } catch (const corba::COMM_FAILURE&) {
          }
        }
      }
      latency.record(
          std::chrono::duration<double>(clock::now() - start).count());
    }
    const std::string mode = sessions ? "resume" : "recovery";
    std::printf("%-12s %8d %10.1f %10.1f %10.1f\n", mode.c_str(), trials,
                latency.quantile(0.5) * 1e6, latency.quantile(0.99) * 1e6,
                latency.mean() * 1e6);
    rows.push_back({bench::jstr("mode", mode),
                    bench::jint("trials", std::uint64_t(trials)),
                    bench::jnum("p50_s", latency.quantile(0.5)),
                    bench::jnum("p99_s", latency.quantile(0.99)),
                    bench::jnum("mean_s", latency.mean())});
  }

  // Retransmit-buffer footprint: a pipelined window of `depth` unacked
  // calls held open against a slow servant — the memory the exactly-once
  // guarantee costs, straight from the transport.session gauge.
  std::printf("\nM-sess — retransmit buffer vs pipeline depth\n");
  std::printf("%8s %16s\n", "depth", "buffered_bytes");
  bench::print_rule(26);
  obs::Gauge& buffered =
      obs::MetricsRegistry::global().gauge(
          "transport.session.retransmit_buffer_bytes");
  for (const int depth : {1, 4, 16, 64}) {
    corba::TcpClientOptions options;
    options.enable_sessions = true;
    corba::TcpClientTransport transport(options);
    const corba::IOR ior = ref.ior();
    std::uint64_t id = 1;
    (void)transport.invoke(ior, echo_request(ior, id++, "echo", payload));
    const double before = buffered.value();
    std::vector<std::unique_ptr<corba::PendingReply>> window;
    for (int i = 0; i < depth; ++i)
      window.push_back(
          transport.send(ior, echo_request(ior, id++, "slow_echo", payload)));
    const double in_flight = buffered.value() - before;
    for (const auto& pending : window) (void)pending->get();
    std::printf("%8d %16.0f\n", depth, in_flight);
    rows.push_back({bench::jstr("mode", "retransmit_buffer"),
                    bench::jint("depth", std::uint64_t(depth)),
                    bench::jnum("buffered_bytes", in_flight)});
  }

  bench::write_bench_json("BENCH_session.json", "micro_orb_session", rows);
}

// --- connections sweep -------------------------------------------------------
//
// The reactor's claim: connection count is decoupled from thread count.  Each
// cell opens `connections` sockets against one endpoint (most idle, a small
// active set driving synchronous calls) in reactor and thread-per-connection
// mode, and records throughput, latency and the server's peak thread cost.

int process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0)
      return std::stoi(line.substr(sizeof("Threads:") - 1));
  }
  return -1;
}

struct ConnPoint {
  std::string mode;
  int connections = 0;
  std::uint64_t calls = 0;
  double throughput_rps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  int peak_threads = 0;  ///< process thread growth while the sockets are open
};

ConnPoint run_conn_point(bool reactor, int connections, int active,
                         int calls_per_active) {
  using clock = std::chrono::steady_clock;
  corba::OrbConfig config{.endpoint_name = "s", .enable_tcp = true};
  config.reactor = reactor;
  config.io_threads = 2;
  auto server = corba::ORB::init(config);
  const corba::IOR ior =
      server->activate(std::make_shared<EchoServant>()).ior();
  const int threads_before = process_threads();

  std::vector<corba::Socket> sockets;
  sockets.reserve(static_cast<std::size_t>(connections));
  for (int i = 0; i < connections; ++i)
    sockets.push_back(corba::Socket::connect("127.0.0.1", ior.port));
  // Let the acceptor catch up with the connect burst, then measure before
  // the harness spawns its own driver threads: the delta is purely what the
  // server paid to hold `connections` sockets open (≈connections in threaded
  // mode, 0 for the reactor).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int threads_with_conns = process_threads();

  bench::LatencyRecorder latency("bench.connections_rpc");
  corba::CdrOutputStream body;
  {
    corba::RequestMessage req;
    req.request_id = 1;
    req.object_key = ior.key;
    req.operation = "echo";
    req.arguments = {corba::Value(std::vector<double>(16, 1.0))};
    req.encode_body(body);
  }
  const auto t0 = clock::now();
  std::vector<std::thread> drivers;
  for (int c = 0; c < active; ++c) {
    drivers.emplace_back([&, c] {
      corba::Socket& socket = sockets[static_cast<std::size_t>(c)];
      corba::MessageHeader header;
      std::vector<std::byte> reply;
      for (int i = 0; i < calls_per_active; ++i) {
        const auto sent = clock::now();
        socket.send_frame(corba::MessageType::request, body);
        if (!socket.recv_frame(header, reply)) return;
        latency.record(
            std::chrono::duration<double>(clock::now() - sent).count());
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  const double wall = std::chrono::duration<double>(clock::now() - t0).count();

  ConnPoint point;
  point.mode = reactor ? "reactor" : "threaded";
  point.connections = connections;
  point.calls =
      static_cast<std::uint64_t>(active) * static_cast<std::uint64_t>(calls_per_active);
  point.throughput_rps = static_cast<double>(point.calls) / wall;
  point.p50_s = latency.quantile(0.5);
  point.p99_s = latency.quantile(0.99);
  point.peak_threads = threads_with_conns - threads_before;
  return point;
}

void run_connections_sweep() {
  const bool smoke = bench::smoke_mode();
  const std::vector<int> conn_counts =
      smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024, 4096};
  const int calls_per_active = smoke ? 100 : 1000;
  const int active = smoke ? 8 : 16;
  corba::raise_nofile_soft_limit(
      static_cast<std::size_t>(3 * conn_counts.back() + 256));

  std::printf("\nM-conn — server receive path: connections x mode\n");
  std::printf("%-10s %12s %10s %12s %10s %10s %13s\n", "mode", "connections",
              "calls", "rps", "p50_us", "p99_us", "server_threads");
  bench::print_rule(82);

  std::vector<ConnPoint> points;
  std::vector<bench::JsonRow> rows;
  for (const bool reactor : {true, false}) {
    for (const int connections : conn_counts) {
      // Thread-per-connection at thousands of sockets means thousands of
      // threads; cap the baseline and let the reactor column carry the tail.
      if (!reactor && connections > 1024) continue;
      const ConnPoint p =
          run_conn_point(reactor, connections, active, calls_per_active);
      std::printf("%-10s %12d %10llu %12.0f %10.1f %10.1f %13d\n",
                  p.mode.c_str(), p.connections,
                  static_cast<unsigned long long>(p.calls), p.throughput_rps,
                  p.p50_s * 1e6, p.p99_s * 1e6, p.peak_threads);
      rows.push_back({bench::jstr("mode", p.mode),
                      bench::jint("connections", std::uint64_t(p.connections)),
                      bench::jint("calls", p.calls),
                      bench::jnum("throughput_rps", p.throughput_rps),
                      bench::jnum("p50_s", p.p50_s),
                      bench::jnum("p99_s", p.p99_s),
                      bench::jint("peak_threads",
                                  std::uint64_t(std::max(p.peak_threads, 0)))});
      points.push_back(p);
    }
  }

  auto find = [&](const std::string& mode, int connections) -> const ConnPoint* {
    for (const ConnPoint& p : points)
      if (p.mode == mode && p.connections == connections) return &p;
    return nullptr;
  };
  const ConnPoint* reactor64 = find("reactor", 64);
  const ConnPoint* threaded64 = find("threaded", 64);
  if (reactor64 && threaded64)
    std::printf("\nthroughput at 64 connections: %.0f (reactor) vs %.0f "
                "(threaded) rps\n",
                reactor64->throughput_rps, threaded64->throughput_rps);
  const ConnPoint* tail = find("reactor", conn_counts.back());
  if (tail)
    std::printf("reactor at %d connections: %.0f rps on %d server threads\n",
                tail->connections, tail->throughput_rps, tail->peak_threads);
  bench::write_bench_json("BENCH_reactor.json", "micro_orb_connections", rows);
}

}  // namespace

int main(int argc, char** argv) {
  // Smoke runs skip the google-benchmark timings (they auto-calibrate and
  // take seconds); the multiplex sweep and its JSON run either way.
  if (!bench::smoke_mode()) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  run_multiplex_sweep();
  run_session_sweep();
  run_connections_sweep();
  return 0;
}
