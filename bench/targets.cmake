# Benchmark binaries.  Standalone experiment harnesses (one per paper table/
# figure plus ablations) print their results directly; micro benches use
# google-benchmark.  All binaries land in ${CMAKE_BINARY_DIR}/bench.

function(corbaft_add_bench name)
  cmake_parse_arguments(ARG "GBENCH" "" "LIBS" ${ARGN})
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARG_LIBS} corbaft_options)
  if(ARG_GBENCH)
    target_link_libraries(${name} PRIVATE benchmark::benchmark)
  endif()
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

corbaft_add_bench(fig3_load_distribution LIBS corbaft::opt)
corbaft_add_bench(table1_proxy_overhead LIBS corbaft::opt)
corbaft_add_bench(ablation_naming_strategies LIBS corbaft::opt)
corbaft_add_bench(ablation_checkpoint_frequency LIBS corbaft::opt)
corbaft_add_bench(ablation_recovery LIBS corbaft::opt)
corbaft_add_bench(ablation_migration LIBS corbaft::opt)
# micro_orb links opt (not just orb) because the multiplex sweep uses the
# shared bench scaffolding in bench_common.hpp.
corbaft_add_bench(micro_orb GBENCH LIBS corbaft::opt)
# micro_checkpoint links opt (not just ft) because the pipeline sweep uses
# the shared bench scaffolding in bench_common.hpp.
corbaft_add_bench(micro_checkpoint GBENCH LIBS corbaft::opt)
corbaft_add_bench(micro_sim GBENCH LIBS corbaft::sim)
# Sharded checkpoint store scaling sweep (TCP ORBs; no google-benchmark —
# it drives its own writer threads and wall clock).
corbaft_add_bench(micro_ckptstore LIBS corbaft::ft)
corbaft_add_bench(micro_events LIBS corbaft::opt)
corbaft_add_bench(ablation_replication LIBS corbaft::opt)
corbaft_add_bench(ablation_wan_metacomputing LIBS corbaft::opt)

# Smoke run of the JSON-emitting benches: reduced workloads, then a schema
# check of the emitted BENCH_*.json (tools/run_benches.sh).  Available both
# as a build target (`cmake --build build --target bench-smoke`) and as a
# ctest under the `bench` label; the smoke workload keeps it fast enough for
# the default test run.
set(_corbaft_bench_smoke_cmd
  ${CMAKE_CURRENT_LIST_DIR}/../tools/run_benches.sh
  $<TARGET_FILE:table1_proxy_overhead> $<TARGET_FILE:micro_checkpoint>
  $<TARGET_FILE:micro_orb> $<TARGET_FILE:micro_events>
  $<TARGET_FILE:micro_ckptstore>)
add_custom_target(bench-smoke
  COMMAND ${CMAKE_COMMAND} -E env CORBAFT_BENCH_SMOKE=1
          ${_corbaft_bench_smoke_cmd}
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench
  DEPENDS table1_proxy_overhead micro_checkpoint micro_orb micro_events
          micro_ckptstore
  VERBATIM)
add_test(NAME bench_smoke COMMAND ${_corbaft_bench_smoke_cmd})
# The `obs` label groups everything that exercises the observability layer:
# the obs unit tests plus this smoke run (which validates the embedded
# metrics snapshots).  `ctest -L obs` runs the whole group.
set_tests_properties(bench_smoke PROPERTIES
  LABELS "bench;obs"
  ENVIRONMENT "CORBAFT_BENCH_SMOKE=1"
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
