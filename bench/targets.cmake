# Benchmark binaries.  Standalone experiment harnesses (one per paper table/
# figure plus ablations) print their results directly; micro benches use
# google-benchmark.  All binaries land in ${CMAKE_BINARY_DIR}/bench.

function(corbaft_add_bench name)
  cmake_parse_arguments(ARG "GBENCH" "" "LIBS" ${ARGN})
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARG_LIBS} corbaft_options)
  if(ARG_GBENCH)
    target_link_libraries(${name} PRIVATE benchmark::benchmark)
  endif()
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

corbaft_add_bench(fig3_load_distribution LIBS corbaft::opt)
corbaft_add_bench(table1_proxy_overhead LIBS corbaft::opt)
corbaft_add_bench(ablation_naming_strategies LIBS corbaft::opt)
corbaft_add_bench(ablation_checkpoint_frequency LIBS corbaft::opt)
corbaft_add_bench(ablation_recovery LIBS corbaft::opt)
corbaft_add_bench(ablation_migration LIBS corbaft::opt)
corbaft_add_bench(micro_orb GBENCH LIBS corbaft::orb)
corbaft_add_bench(micro_checkpoint GBENCH LIBS corbaft::ft)
corbaft_add_bench(micro_sim GBENCH LIBS corbaft::sim)
corbaft_add_bench(ablation_replication LIBS corbaft::opt)
corbaft_add_bench(ablation_wan_metacomputing LIBS corbaft::opt)
