// Figure 3 reproduction: runtime of the decomposed Rosenbrock optimization
// as a function of the number of workstations carrying background load,
// comparing the plain naming service ("CORBA") against the Winner-informed
// load-distributing one ("CORBA/Winner"), for the paper's two scenarios:
//
//   * 30-dim / 3 workers + 2-dim manager on 6 workstations (lower curves)
//   * 100-dim / 7 workers + 6-dim manager on 10 workstations (upper curves)
//
// Expected shape (paper §4): the Winner curves stay flat while enough idle
// machines remain (the naming service routes around the loaded hosts); the
// plain curves rise steadily; with increasing background load the advantage
// diminishes because both services are forced onto loaded machines; best
// case ~40 % runtime reduction, and Winner is never worse than plain.
#include "bench_common.hpp"

namespace {

constexpr int kTrials = 5;

struct Series {
  std::string label;
  bench::Scenario scenario;
  naming::ResolveStrategy strategy;
  std::vector<double> runtimes;  // one per load level
};

}  // namespace

int main() {
  using namespace bench;

  const std::vector<int> load_levels = {0, 2, 4, 6, 8};

  std::vector<Series> series = {
      {"CORBA 100/7", scenario_100_7(), naming::ResolveStrategy::round_robin, {}},
      {"CORBA/Winner 100/7", scenario_100_7(), naming::ResolveStrategy::winner, {}},
      {"CORBA 30/3", scenario_30_3(), naming::ResolveStrategy::round_robin, {}},
      {"CORBA/Winner 30/3", scenario_30_3(), naming::ResolveStrategy::winner, {}},
  };

  std::printf(
      "Fig. 3 — Decomposed 30- and 100-dimensional Rosenbrock function with "
      "3 and 7\nworker problems under different load situations "
      "(runtime in virtual seconds,\nmean over %d background-load "
      "placements).\n\n",
      kTrials);

  for (Series& s : series) {
    for (int loaded : load_levels) {
      if (loaded > s.scenario.hosts) {
        s.runtimes.push_back(-1.0);
        continue;
      }
      s.runtimes.push_back(mean_runtime_over_placements(
          s.scenario, s.strategy, loaded, kTrials, /*seed_base=*/1000));
    }
  }

  std::printf("%-22s", "hosts with bg load:");
  for (int loaded : load_levels) std::printf("%10d", loaded);
  std::printf("\n");
  print_rule(22 + 10 * static_cast<int>(load_levels.size()));
  for (const Series& s : series) {
    std::printf("%-22s", s.label.c_str());
    for (double runtime : s.runtimes) {
      if (runtime < 0)
        std::printf("%10s", "-");
      else
        std::printf("%10.1f", runtime);
    }
    std::printf("\n");
  }

  // Headline statistics the paper quotes.
  auto reduction = [](double plain, double winner) {
    return 100.0 * (plain - winner) / plain;
  };
  double best_reduction = 0.0;
  double reduction_sum = 0.0;
  int reduction_count = 0;
  bool winner_never_worse = true;
  for (std::size_t pair = 0; pair < series.size(); pair += 2) {
    const Series& plain = series[pair];
    const Series& winner = series[pair + 1];
    for (std::size_t i = 0; i < plain.runtimes.size(); ++i) {
      if (plain.runtimes[i] < 0) continue;
      const double r = reduction(plain.runtimes[i], winner.runtimes[i]);
      best_reduction = std::max(best_reduction, r);
      reduction_sum += r;
      ++reduction_count;
      if (winner.runtimes[i] > plain.runtimes[i] * 1.02)
        winner_never_worse = false;
    }
  }
  std::printf(
      "\nbest-case runtime reduction by load distribution: %.0f%% "
      "(paper: ~40%%)\n",
      best_reduction);
  std::printf("average runtime reduction: %.0f%% (paper: ~15%%)\n",
              reduction_sum / reduction_count);
  std::printf("Winner never worse than plain naming service: %s (paper: "
              "\"at least the same results\")\n",
              winner_never_worse ? "yes" : "NO");
  return 0;
}
