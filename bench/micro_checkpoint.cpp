// M2 — checkpoint store micro benchmarks: store/load cost as a function of
// state size, in-memory vs file-backed backend, and the full remote
// checkpoint cycle (get_state + store over the ORB).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "ft/checkpoint.hpp"
#include "ft/checkpoint_store.hpp"
#include "orb/cdr.hpp"
#include "orb/orb.hpp"

namespace {

corba::Blob blob_of(std::size_t bytes) {
  return corba::Blob(bytes, std::byte{0x5a});
}

void BM_MemoryStore(benchmark::State& state) {
  ft::MemoryCheckpointStore store;
  const corba::Blob blob = blob_of(static_cast<std::size_t>(state.range(0)));
  std::uint64_t version = 0;
  for (auto _ : state) store.store("k", ++version, blob);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemoryStore)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MemoryLoad(benchmark::State& state) {
  ft::MemoryCheckpointStore store;
  store.store("k", 1, blob_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(store.load("k"));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemoryLoad)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FileStore(benchmark::State& state) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "corbaft_bench_ckpt";
  std::filesystem::remove_all(dir);
  ft::FileCheckpointStore store(dir);
  const corba::Blob blob = blob_of(static_cast<std::size_t>(state.range(0)));
  std::uint64_t version = 0;
  for (auto _ : state) store.store("k", ++version, blob);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FileStore)->Arg(256)->Arg(4096)->Arg(65536);

class BlobServant final : public corba::Servant,
                          public ft::CheckpointableServant {
 public:
  explicit BlobServant(std::size_t bytes) : state_(blob_of(bytes)) {}
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Blob:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override { return state_; }
  void set_state(const corba::Blob& state) override { state_ = state; }

 private:
  corba::Blob state_;
};

void BM_RemoteCheckpointCycle(benchmark::State& state) {
  // The paper's per-call overhead path: fetch the service state through the
  // ORB and store it in the (remote) checkpoint service.
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto worker_orb = corba::ORB::init({.endpoint_name = "w", .network = network});
  auto store_orb = corba::ORB::init({.endpoint_name = "s", .network = network});
  auto client_orb = corba::ORB::init({.endpoint_name = "c", .network = network});

  const corba::ObjectRef service = client_orb->make_ref(
      worker_orb
          ->activate(std::make_shared<BlobServant>(
              static_cast<std::size_t>(state.range(0))))
          .ior());
  ft::CheckpointStoreStub store(client_orb->make_ref(
      store_orb
          ->activate(std::make_shared<ft::CheckpointStoreServant>(
              std::make_shared<ft::MemoryCheckpointStore>()))
          .ior()));

  std::uint64_t version = 0;
  for (auto _ : state) {
    const corba::Blob blob = ft::get_state(service);
    store.store("svc", ++version, blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RemoteCheckpointCycle)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
