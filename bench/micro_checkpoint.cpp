// M2 — checkpoint store micro benchmarks: store/load cost as a function of
// state size, in-memory vs file-backed backend, and the full remote
// checkpoint cycle (get_state + store over the ORB).
//
// On top of the google-benchmark timings, a state-size x dirty-fraction
// sweep drives the checkpoint pipeline (full / delta-sync / delta-async)
// and records wall time and bytes shipped per submit into
// BENCH_checkpoint.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <filesystem>

#include "bench_common.hpp"
#include "ft/checkpoint.hpp"
#include "ft/checkpoint_pipeline.hpp"
#include "ft/checkpoint_store.hpp"
#include "orb/cdr.hpp"
#include "orb/orb.hpp"

namespace {

corba::Blob blob_of(std::size_t bytes) {
  return corba::Blob(bytes, std::byte{0x5a});
}

void BM_MemoryStore(benchmark::State& state) {
  ft::MemoryCheckpointStore store;
  const corba::Blob blob = blob_of(static_cast<std::size_t>(state.range(0)));
  std::uint64_t version = 0;
  for (auto _ : state) store.store("k", ++version, blob);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemoryStore)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MemoryLoad(benchmark::State& state) {
  ft::MemoryCheckpointStore store;
  store.store("k", 1, blob_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(store.load("k"));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemoryLoad)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FileStore(benchmark::State& state) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "corbaft_bench_ckpt";
  std::filesystem::remove_all(dir);
  ft::FileCheckpointStore store(dir);
  const corba::Blob blob = blob_of(static_cast<std::size_t>(state.range(0)));
  std::uint64_t version = 0;
  for (auto _ : state) store.store("k", ++version, blob);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FileStore)->Arg(256)->Arg(4096)->Arg(65536);

class BlobServant final : public corba::Servant,
                          public ft::CheckpointableServant {
 public:
  explicit BlobServant(std::size_t bytes) : state_(blob_of(bytes)) {}
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Blob:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (auto handled = try_dispatch_state(op, args)) return *handled;
    throw corba::BAD_OPERATION(std::string(op));
  }
  corba::Blob get_state() override { return state_; }
  void set_state(const corba::Blob& state) override { state_ = state; }

 private:
  corba::Blob state_;
};

void BM_RemoteCheckpointCycle(benchmark::State& state) {
  // The paper's per-call overhead path: fetch the service state through the
  // ORB and store it in the (remote) checkpoint service.
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto worker_orb = corba::ORB::init({.endpoint_name = "w", .network = network});
  auto store_orb = corba::ORB::init({.endpoint_name = "s", .network = network});
  auto client_orb = corba::ORB::init({.endpoint_name = "c", .network = network});

  const corba::ObjectRef service = client_orb->make_ref(
      worker_orb
          ->activate(std::make_shared<BlobServant>(
              static_cast<std::size_t>(state.range(0))))
          .ior());
  ft::CheckpointStoreStub store(client_orb->make_ref(
      store_orb
          ->activate(std::make_shared<ft::CheckpointStoreServant>(
              std::make_shared<ft::MemoryCheckpointStore>()))
          .ior()));

  std::uint64_t version = 0;
  for (auto _ : state) {
    const corba::Blob blob = ft::get_state(service);
    store.store("svc", ++version, blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RemoteCheckpointCycle)->Arg(256)->Arg(4096)->Arg(65536);

// --- state-size x dirty-fraction pipeline sweep -----------------------------

struct SweepPoint {
  double ns_per_submit = 0.0;
  std::uint64_t bytes_per_submit = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t coalesced = 0;
};

/// Pushes `reps` checkpoints of a `bytes`-sized state through a pipeline in
/// `mode`, dirtying a rotating `dirty` fraction of the delta chunks between
/// submits (wall time; the store backend is in-memory with no cost model, so
/// the measurement is pure diff + copy + storage cost).
SweepPoint run_sweep(ft::CheckpointMode mode, std::size_t bytes, double dirty,
                     int reps) {
  ft::CheckpointPipeline::Config config;
  config.store = std::make_shared<ft::MemoryCheckpointStore>();
  config.key = "sweep";
  config.mode = mode;
  ft::CheckpointPipeline pipeline(std::move(config));

  corba::Blob state = blob_of(bytes);
  const std::size_t chunks =
      (bytes + ft::kDefaultChunkSize - 1) / ft::kDefaultChunkSize;
  const std::size_t dirty_per_rep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(dirty * static_cast<double>(chunks))));

  std::uint64_t version = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t j = 0; j < dirty_per_rep; ++j) {
      const std::size_t chunk =
          (static_cast<std::size_t>(rep) * dirty_per_rep + j) % chunks;
      auto& byte = state[chunk * ft::kDefaultChunkSize];
      byte = std::byte{static_cast<unsigned char>(std::to_integer<int>(byte) + 1)};
    }
    pipeline.submit(++version, corba::Blob(state));
  }
  pipeline.flush();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  SweepPoint point;
  point.ns_per_submit =
      std::chrono::duration<double, std::nano>(elapsed).count() / reps;
  point.bytes_per_submit =
      pipeline.bytes_shipped() / static_cast<std::uint64_t>(reps);
  point.checkpoints = pipeline.stored();
  point.coalesced = pipeline.coalesced();
  return point;
}

void run_pipeline_sweep() {
  using namespace bench;
  const bool smoke = smoke_mode();
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64 * 1024}
            : std::vector<std::size_t>{16 * 1024, 64 * 1024, 256 * 1024};
  const std::vector<double> dirty_fractions =
      smoke ? std::vector<double>{0.10} : std::vector<double>{0.01, 0.10, 0.50};
  const int reps = smoke ? 32 : 256;

  const ft::CheckpointMode modes[] = {ft::CheckpointMode::full_sync,
                                      ft::CheckpointMode::delta_sync,
                                      ft::CheckpointMode::delta_async};

  std::printf(
      "\nCheckpoint pipeline sweep (wall time per submit, in-memory store):\n\n");
  std::printf("%10s  %8s  %12s  %14s  %14s\n", "State", "Dirty", "Mode",
              "ns/submit", "Bytes shipped");
  print_rule(66);

  std::vector<JsonRow> rows;
  for (std::size_t bytes : sizes) {
    for (double dirty : dirty_fractions) {
      for (ft::CheckpointMode mode : modes) {
        const SweepPoint point = run_sweep(mode, bytes, dirty, reps);
        const std::string mode_name(ft::to_string(mode));
        std::printf("%10zu  %8.2f  %12s  %14.0f  %14llu\n", bytes, dirty,
                    mode_name.c_str(), point.ns_per_submit,
                    static_cast<unsigned long long>(point.bytes_per_submit));
        rows.push_back({jstr("section", "pipeline_sweep"),
                        jint("state_bytes", bytes),
                        jnum("dirty_fraction", dirty),
                        jstr("mode", mode_name),
                        jnum("ns_per_submit", point.ns_per_submit),
                        jint("bytes_shipped_per_submit", point.bytes_per_submit),
                        jint("checkpoints", point.checkpoints),
                        jint("coalesced", point.coalesced)});
      }
    }
  }
  write_bench_json("BENCH_checkpoint.json", "micro_checkpoint", rows);
}

}  // namespace

int main(int argc, char** argv) {
  // Smoke runs skip the google-benchmark timings (they auto-calibrate and
  // take seconds); the pipeline sweep and its JSON run either way.
  if (!bench::smoke_mode()) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  run_pipeline_sweep();
  return 0;
}
