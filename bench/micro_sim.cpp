// M3 — simulator micro benchmarks: event-queue throughput, processor-
// sharing host dynamics, and end-to-end simulated invocations per (real)
// second — the figure that bounds how fast the experiment harness can run.
#include <benchmark/benchmark.h>

#include "orb/orb.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_transport.hpp"
#include "sim/work_meter.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < state.range(0); ++i)
      queue.schedule_at(static_cast<double>(i % 97), [] {});
    queue.run_until_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_ProcessorSharingChurn(benchmark::State& state) {
  // Tasks arriving into an already-busy host force settle + reschedule on
  // every submit — the hot path of the host model.
  for (auto _ : state) {
    sim::EventQueue queue;
    sim::Host host(queue, "h", 100.0);
    for (int i = 0; i < state.range(0); ++i)
      host.submit(10.0 + i % 7, [] {});
    queue.run_until_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProcessorSharingChurn)->Arg(64)->Arg(512);

class BurnServant final : public corba::Servant {
 public:
  std::string_view repo_id() const noexcept override {
    return "IDL:corbaft/bench/Burn:1.0";
  }
  corba::Value dispatch(std::string_view op,
                        const corba::ValueSeq& args) override {
    if (op == "burn") {
      sim::WorkMeter::charge(args.at(0).as_f64());
      return corba::Value();
    }
    throw corba::BAD_OPERATION(std::string(op));
  }
};

void BM_SimulatedInvocation(benchmark::State& state) {
  // Full virtual-time call: CDR round trip, host busy period, reply event.
  sim::Cluster cluster;
  cluster.add_host("h", 100.0);
  auto network = std::make_shared<corba::InProcessNetwork>();
  auto transport = std::make_shared<sim::SimTransport>(cluster, network);
  auto server = corba::ORB::init({.endpoint_name = "h",
                                  .network = network,
                                  .client_transport_override = transport});
  cluster.map_endpoint("h", "h");
  const corba::ObjectRef ref = server->activate(std::make_shared<BurnServant>());
  for (auto _ : state) {
    ref.invoke("burn", {corba::Value(1.0)});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatedInvocation);

}  // namespace

BENCHMARK_MAIN();
