// micro_events: fan-out cost of the push telemetry channel.
//
// Sweeps subscribers x publish volume x overflow policy on a deterministic
// manual executor (publish cost and queue policy are what's being measured;
// transport cost is micro_orb's business) and reports publish throughput,
// delivery totals and overflow accounting per cell.  Emits
// BENCH_events.json (schema-checked by tools/run_benches.sh).
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/event_channel.hpp"

namespace {

/// Run-to-completion executor: the channel's deferred drains execute when
/// drain() is called, like SimRuntime's event queue between publishes.
class ManualExecutor {
 public:
  obs::EventChannel::Defer defer() {
    return [this](double delay, std::function<void()> fn) {
      pending_.emplace(now_ + delay, std::move(fn));
    };
  }
  void drain() {
    while (!pending_.empty()) {
      auto it = pending_.begin();
      now_ = std::max(now_, it->first);
      std::function<void()> fn = std::move(it->second);
      pending_.erase(it);
      fn();
    }
  }

 private:
  double now_ = 0.0;
  std::multimap<double, std::function<void()>> pending_;
};

const char* policy_name(obs::OverflowPolicy policy) {
  return policy == obs::OverflowPolicy::drop_oldest ? "drop_oldest"
                                                    : "coalesce_by_key";
}

struct Cell {
  std::string mode;
  int subscribers = 0;
  std::uint64_t events = 0;
  double publish_mps = 0.0;  ///< publishes per second, millions
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t coalesced = 0;
  double wall_s = 0.0;
};

Cell run_cell(obs::OverflowPolicy policy, int subscribers,
              std::uint64_t events) {
  ManualExecutor exec;
  obs::EventChannel channel;
  channel.bind({.defer = exec.defer()});

  std::vector<std::uint64_t> counts(static_cast<std::size_t>(subscribers), 0);
  for (int s = 0; s < subscribers; ++s) {
    channel.subscribe({.queue_limit = 128, .policy = policy},
                      [&counts, s](std::span<const obs::Event> batch) {
                        counts[static_cast<std::size_t>(s)] += batch.size();
                      });
  }

  // 16-key alphabet: coalescing has real matches to find, drop-oldest pays
  // the same construction cost.
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; n < events; ++n) {
    channel.publish(obs::Topic::metrics_delta, "bench",
                    "key" + std::to_string(n % 16),
                    {obs::int_field("n", n)});
    // Drain every 4096 publishes: sustained operation, not one giant burst.
    if ((n & 0xfff) == 0xfff) exec.drain();
  }
  exec.drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Cell cell;
  cell.mode = policy_name(policy);
  cell.subscribers = subscribers;
  cell.events = events;
  cell.wall_s = wall;
  cell.publish_mps = wall > 0 ? static_cast<double>(events) / wall / 1e6 : 0.0;
  for (const auto& stat : channel.stats()) {
    cell.delivered += stat.delivered;
    cell.dropped += stat.dropped;
    cell.coalesced += stat.coalesced;
  }
  (void)counts;
  return cell;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const std::uint64_t events = smoke ? 20'000 : 200'000;
  const std::vector<int> fleets = smoke ? std::vector<int>{1, 16}
                                        : std::vector<int>{1, 16, 256, 1024};

  std::printf("micro_events: channel fan-out (%llu events per cell)\n",
              static_cast<unsigned long long>(events));
  std::printf("%-16s %11s %10s %12s %12s %12s %10s\n", "mode", "subscribers",
              "Mpub/s", "delivered", "dropped", "coalesced", "wall_s");
  bench::print_rule(88);

  std::vector<bench::JsonRow> rows;
  for (const obs::OverflowPolicy policy :
       {obs::OverflowPolicy::drop_oldest, obs::OverflowPolicy::coalesce_by_key}) {
    for (const int subscribers : fleets) {
      const Cell cell = run_cell(policy, subscribers, events);
      std::printf("%-16s %11d %10.2f %12llu %12llu %12llu %10.3f\n",
                  cell.mode.c_str(), cell.subscribers, cell.publish_mps,
                  static_cast<unsigned long long>(cell.delivered),
                  static_cast<unsigned long long>(cell.dropped),
                  static_cast<unsigned long long>(cell.coalesced), cell.wall_s);
      rows.push_back({bench::jstr("mode", cell.mode),
                      bench::jint("subscribers",
                                  static_cast<std::uint64_t>(cell.subscribers)),
                      bench::jint("events", cell.events),
                      bench::jnum("publish_mps", cell.publish_mps),
                      bench::jint("delivered", cell.delivered),
                      bench::jint("dropped", cell.dropped),
                      bench::jint("coalesced", cell.coalesced),
                      bench::jnum("wall_s", cell.wall_s)});
    }
  }
  bench::write_bench_json("BENCH_events.json", "micro_events", rows);
  return 0;
}
